//! Seeded, deterministic fault injection.
//!
//! A [`FaultPlan`] describes an *adversarial but legal* environment: the
//! perturbations POSIX and TL2 explicitly permit — spurious condition
//! variable wakeups, failed `try_lock`s, aborted transactions, and
//! bounded scheduler stalls. The study's fix-strategy data shows that
//! "correct" code must survive exactly these events, so the robustness
//! contract test model-checks every fixed kernel variant under several
//! plans while buggy variants may only manifest faster.
//!
//! Determinism is load-bearing: a fault decision is a **pure function**
//! of `(seed, kind, global step index, thread)` — no RNG state is stored
//! or advanced. The model checker clones the executor at branch points,
//! and stateless decisions guarantee that every clone sees exactly the
//! same fault stream, so identical seeds produce bit-identical
//! exploration reports.

/// The kinds of injectable faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A condition-variable wait returns without any signal (POSIX
    /// explicitly allows this); code without a predicate loop breaks.
    SpuriousWakeup,
    /// A `try_lock` on a free mutex fails anyway (as if a contender won
    /// and released between the check and the acquisition).
    TryLockFail,
    /// A transaction aborts at commit or read validation even though its
    /// read set is consistent (TL2 permits conservative aborts).
    TxAbort,
    /// A thread is descheduled for a bounded window even though it is
    /// runnable.
    Stall,
}

impl FaultKind {
    fn salt(self) -> u64 {
        match self {
            FaultKind::SpuriousWakeup => 0x5057_414B_4555_5031,
            FaultKind::TryLockFail => 0x5452_594C_4F43_4B31,
            FaultKind::TxAbort => 0x5458_4142_4F52_5431,
            FaultKind::Stall => 0x5354_414C_4C5F_5F31,
        }
    }
}

/// A deterministic schedule of legal environment faults.
///
/// Rates are densities along the step axis, not probabilities: whether a
/// fault fires at a given `(step, thread)` is fixed by the seed, so two
/// runs (or two explorer snapshots) always agree. The default rates are
/// moderate enough that retry loops in fixed code always escape — a
/// decision keyed on the monotone step counter can never repeat, so no
/// forced-failure livelock is possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed mixed into every decision.
    pub seed: u64,
    /// Percent (0–100) of wait entries that spuriously return.
    pub spurious_wakeup_pct: u8,
    /// Percent of would-succeed `try_lock`s forced to fail.
    pub trylock_fail_pct: u8,
    /// Percent of commit/validation points forced to abort.
    pub tx_abort_pct: u8,
    /// Percent of stall windows in which a thread is held back.
    pub stall_pct: u8,
    /// Stall window length in global steps (a stalled thread stays
    /// filtered from the schedulable set for at most this many steps).
    pub stall_window: u32,
}

impl FaultPlan {
    /// A plan with the default rates (every fault kind active).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            spurious_wakeup_pct: 25,
            trylock_fail_pct: 25,
            tx_abort_pct: 20,
            stall_pct: 25,
            stall_window: 3,
        }
    }

    /// The same plan with stalls disabled.
    ///
    /// Stalls bias *which* schedule a sampler takes; a systematic
    /// explorer already enumerates every schedule, so for it a stall can
    /// only remove interleavings — on a four-step kernel one unlucky
    /// stall window serializes the whole program and hides the bug. The
    /// [`Explorer`](crate::Explorer) therefore strips stalls from the
    /// plan it installs, keeping "chaos may only manifest bugs faster"
    /// true, while samplers ([`RandomWalker`](crate::RandomWalker), PCT,
    /// native stress) honour them as schedule noise.
    pub fn without_stalls(self) -> FaultPlan {
        FaultPlan {
            stall_pct: 0,
            ..self
        }
    }

    /// Whether `kind` fires for `thread` at global step index `step`.
    /// Pure: same inputs, same answer, forever.
    pub fn fires(&self, kind: FaultKind, step: usize, thread: usize) -> bool {
        let pct = match kind {
            FaultKind::SpuriousWakeup => self.spurious_wakeup_pct,
            FaultKind::TryLockFail => self.trylock_fail_pct,
            FaultKind::TxAbort => self.tx_abort_pct,
            FaultKind::Stall => self.stall_pct,
        };
        if pct == 0 {
            return false;
        }
        // Stall decisions are constant within a window so a stalled
        // thread stays back for a few consecutive steps (a bounded
        // descheduling, not single-step jitter).
        let key = match kind {
            FaultKind::Stall => (step as u64) / u64::from(self.stall_window.max(1)),
            _ => step as u64,
        };
        let mut h = splitmix64(self.seed ^ kind.salt());
        h = splitmix64(h ^ key);
        h = splitmix64(h ^ ((thread as u64) << 32 | 0x0F));
        (h % 100) < u64::from(pct)
    }
}

/// SplitMix64 finalizer: a cheap, well-avalanched 64-bit mixer.
///
/// Public because every seeded-deterministic decision in the tree —
/// fault plans here, the serve chaos proxy's network faults, client
/// retry jitter — derives from this one function, so "same seed, same
/// behavior" holds across layers.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::new(42);
        for step in 0..200 {
            for thread in 0..4 {
                for kind in [
                    FaultKind::SpuriousWakeup,
                    FaultKind::TryLockFail,
                    FaultKind::TxAbort,
                    FaultKind::Stall,
                ] {
                    assert_eq!(
                        plan.fires(kind, step, thread),
                        plan.fires(kind, step, thread)
                    );
                }
            }
        }
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan::new(7);
        let fired = (0..10_000)
            .filter(|&s| plan.fires(FaultKind::TryLockFail, s, 1))
            .count();
        // 25% nominal; allow generous slack, this is a hash not an RNG.
        assert!((1_500..3_500).contains(&fired), "fired {fired}/10000");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1);
        let b = FaultPlan::new(2);
        let diverges = (0..1_000)
            .any(|s| a.fires(FaultKind::TxAbort, s, 0) != b.fires(FaultKind::TxAbort, s, 0));
        assert!(diverges);
    }

    #[test]
    fn zero_rate_never_fires() {
        let plan = FaultPlan {
            spurious_wakeup_pct: 0,
            ..FaultPlan::new(3)
        };
        assert!((0..5_000).all(|s| !plan.fires(FaultKind::SpuriousWakeup, s, 0)));
    }

    #[test]
    fn stall_decisions_are_window_constant() {
        let plan = FaultPlan::new(11);
        let w = plan.stall_window as usize;
        for window in 0..100 {
            let base = plan.fires(FaultKind::Stall, window * w, 2);
            for off in 1..w {
                assert_eq!(plan.fires(FaultKind::Stall, window * w + off, 2), base);
            }
        }
    }
}
