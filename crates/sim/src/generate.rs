//! Seeded random program generation, for fuzz-style property testing of
//! the simulator, explorer and detectors.
//!
//! Generated programs are always *structurally valid* (balanced locks
//! and transactions, in-range object ids, terminating control flow) but
//! otherwise arbitrary: they may race, deadlock is impossible by
//! construction (each thread acquires at most one lock at a time and
//! always releases it), and any outcome except misuse is acceptable.
//! This makes them ideal for invariants like "replay is deterministic"
//! and "detectors never panic".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::expr::Expr;
use crate::program::{Program, ProgramBuilder};
use crate::stmt::{RmwOp, Stmt};

/// Configuration for [`generate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenConfig {
    /// Number of threads (1..=4 recommended; exploration cost grows
    /// factorially).
    pub threads: usize,
    /// Number of shared variables.
    pub vars: usize,
    /// Number of mutexes.
    pub mutexes: usize,
    /// Visible operations generated per thread.
    pub ops_per_thread: usize,
    /// Probability (percent) that a memory operation happens inside a
    /// lock region.
    pub locked_pct: u8,
    /// Probability (percent) that a memory operation happens inside a
    /// transaction.
    pub tx_pct: u8,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            threads: 3,
            vars: 3,
            mutexes: 2,
            ops_per_thread: 5,
            locked_pct: 30,
            tx_pct: 15,
        }
    }
}

/// Generates a random, structurally valid program from a seed.
/// Deterministic: equal `(config, seed)` yields equal programs.
pub fn generate(config: &GenConfig, seed: u64) -> Program {
    static THREAD_NAMES: [&str; 4] = ["g0", "g1", "g2", "g3"];
    static LOCALS: [&str; 4] = ["r0", "r1", "r2", "r3"];
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new(format!("generated-{seed}"));
    static VAR_NAMES: [&str; 8] = ["v0", "v1", "v2", "v3", "v4", "v5", "v6", "v7"];
    let vars: Vec<_> = (0..config.vars.min(8))
        .map(|i| b.var(VAR_NAMES[i], rng.gen_range(0..3)))
        .collect();
    let mutexes: Vec<_> = (0..config.mutexes).map(|_| b.mutex()).collect();

    for name in THREAD_NAMES.iter().take(config.threads.clamp(1, 4)) {
        let mut body = Vec::new();
        let mut ops = 0;
        while ops < config.ops_per_thread {
            let var = vars[rng.gen_range(0..vars.len())];
            let local = LOCALS[rng.gen_range(0..LOCALS.len())];
            let mem_op = |rng: &mut StdRng| match rng.gen_range(0..4) {
                0 => Stmt::read(var, local),
                1 => Stmt::write(var, Expr::local(local) + Expr::lit(1)),
                2 => Stmt::fetch_add(var, 1),
                _ => Stmt::Rmw {
                    var,
                    op: RmwOp::Exchange,
                    operand: Expr::lit(rng.gen_range(0..5)),
                    into: Some(local),
                },
            };
            let wrap = rng.gen_range(0..100);
            if wrap < u32::from(config.locked_pct) && !mutexes.is_empty() {
                let m = mutexes[rng.gen_range(0..mutexes.len())];
                body.push(Stmt::lock(m));
                let n = rng.gen_range(1..=2usize);
                for _ in 0..n {
                    body.push(mem_op(&mut rng));
                }
                body.push(Stmt::unlock(m));
                ops += n + 2;
            } else if wrap < u32::from(config.locked_pct) + u32::from(config.tx_pct) {
                body.push(Stmt::TxBegin);
                let n = rng.gen_range(1..=2usize);
                for _ in 0..n {
                    body.push(mem_op(&mut rng));
                }
                body.push(Stmt::TxCommit);
                ops += n + 2;
            } else if wrap >= 95 {
                // Occasionally a local-conditional branch over mem ops.
                body.push(Stmt::if_else(
                    Expr::local(local).ge(Expr::lit(1)),
                    vec![mem_op(&mut rng)],
                    vec![Stmt::Yield],
                ));
                ops += 1;
            } else {
                body.push(mem_op(&mut rng));
                ops += 1;
            }
        }
        b.thread(name, body);
    }
    b.build()
        .expect("generated programs are structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::explore::Explorer;

    #[test]
    fn generation_is_seed_deterministic() {
        let config = GenConfig::default();
        let a = generate(&config, 17);
        let b = generate(&config, 17);
        assert_eq!(a.n_threads(), b.n_threads());
        for (ta, tb) in a.threads().iter().zip(b.threads()) {
            assert_eq!(ta.body(), tb.body());
        }
        let c = generate(&config, 18);
        let same = a
            .threads()
            .iter()
            .zip(c.threads())
            .all(|(x, y)| x.body() == y.body());
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn generated_programs_run_to_completion() {
        let config = GenConfig::default();
        for seed in 0..30 {
            let program = generate(&config, seed);
            let mut exec = Executor::new(&program);
            let outcome = exec.run_sequential(10_000);
            assert!(
                outcome.is_ok(),
                "seed {seed}: sequential run must pass (no asserts), got {outcome}"
            );
        }
    }

    #[test]
    fn generated_programs_never_misuse() {
        // Balanced locks/transactions by construction: exploring any
        // generated program produces no Misuse outcomes.
        let config = GenConfig {
            threads: 2,
            ops_per_thread: 4,
            ..GenConfig::default()
        };
        for seed in 0..10 {
            let program = generate(&config, seed);
            let report = Explorer::new(&program)
                .limits(crate::explore::ExploreLimits {
                    max_schedules: 2_000,
                    dedup_states: true,
                    ..Default::default()
                })
                .run();
            assert_eq!(report.counts.misuse, 0, "seed {seed}");
            assert_eq!(
                report.counts.deadlock, 0,
                "seed {seed}: single-lock regions"
            );
        }
    }
}
