//! Exhaustive (optionally context-bounded) interleaving exploration.
//!
//! [`Explorer`] performs an iterative depth-first search over scheduling
//! choices, snapshotting the [`Executor`] at every branch point. Along
//! stretches where only one thread is enabled it advances without cloning.
//! This is the engine behind the study's "small-scope" manifestation
//! experiments: the finding that 92% of non-deadlock bugs deterministically
//! manifest once a specific order among at most four memory accesses is
//! enforced means exhaustive search at these tiny scopes is tractable.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use lfm_obs::{
    eta_ms, Event, KnuthEstimator, NoopSink, Phase, PhaseProfiler, ProgressTracker, Sink,
    Stopwatch, Value,
};

use crate::dpor::Dpor;
use crate::exec::{Executor, RecordMode, ReplayDeviation};
use crate::fault::FaultPlan;
use crate::frontier::{self, Advance, Mode};
use crate::ids::ThreadId;
use crate::outcome::Outcome;
use crate::program::Program;
use crate::schedule::Schedule;
use crate::trace::Trace;

/// How often (in completed schedules) an enabled [`Sink`] receives an
/// `explore`/`progress` event during long sweeps.
pub(crate) const PROGRESS_EVERY: u64 = 25_000;

/// How often (in completed schedules) a progress-tracking run reads the
/// wall clock to decide whether a `progress_est` event is due. The
/// counter gate keeps clock reads off the per-schedule fast path.
pub(crate) const PROGRESS_CHECK_EVERY: u64 = 64;

/// Resource bounds for an exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreLimits {
    /// Maximum visible operations per execution before classifying it
    /// [`Outcome::StepLimit`].
    pub max_steps: usize,
    /// Maximum number of complete schedules to run; exploration reports
    /// `truncated = true` when the bound is hit.
    pub max_schedules: u64,
    /// CHESS-style preemption bound: maximum number of *preemptive*
    /// context switches (switching away from a still-enabled thread).
    /// `None` explores all interleavings.
    pub max_preemptions: Option<u32>,
    /// Stop at the first failing outcome instead of exhausting the space.
    pub stop_on_first_failure: bool,
    /// Deduplicate branch states by [`Executor::state_key`]: branches
    /// whose state was already expanded are skipped. Collapses the
    /// retry-loop blowup of transactional programs; slightly approximate
    /// with preemption bounds (a state is only expanded with the first
    /// preemption budget it was reached at).
    pub dedup_states: bool,
    /// Sleep-set partial-order reduction (Godefroid): skip sibling
    /// choices whose operations commute with everything explored since —
    /// every Mazurkiewicz trace class is still visited once, so outcome
    /// *kinds* and reachable final states are preserved while the
    /// schedule count drops sharply. Intended for unbounded exploration;
    /// combining with a preemption bound may prune interleavings the
    /// bound alone would have kept. Silently disabled when a fault plan
    /// is installed: fault decisions are step-indexed, which breaks the
    /// commutativity argument the reduction relies on.
    pub sleep_sets: bool,
    /// Source-set dynamic partial-order reduction (Flanagan &
    /// Godefroid 2005; Abdulla et al. 2014): explore one schedule,
    /// detect races between dependent concurrent steps on the executed
    /// path, and add only the schedules that reverse them. Visits at
    /// least one representative of every Mazurkiewicz trace class, so
    /// outcome kinds and reachable final states match full enumeration
    /// while the schedule count drops by the degree of independence in
    /// the program. Composes with `sleep_sets` (backtrack candidates an
    /// ancestor sibling covers are skipped). Silently disabled when a
    /// fault plan is installed or a preemption bound is set — both
    /// break the equivalence-class argument — and silently disables
    /// `dedup_states`, which is unsound under DPOR (a state reached
    /// along a different prefix carries a different race log).
    pub dpor: bool,
    /// Invisible-step fusion (on by default): when a branch state's
    /// running thread has an *invisible* next op
    /// ([`crate::footprint::Footprint::is_invisible`] — touches no
    /// shared variable, no sync object, and cannot produce an
    /// outcome-relevant effect), execute it immediately instead of
    /// creating a branch point. Invisible ops are global both-movers,
    /// so every outcome reachable by delaying them is reached through
    /// an equivalent trace; sound under plain DFS, dedup, sleep sets,
    /// and DPOR. Silently disabled when a fault plan is installed:
    /// fault decisions are step-indexed, which breaks the commutation
    /// argument (the same contract sleep sets and DPOR have).
    pub fuse: bool,
    /// Wall-clock budget for the whole exploration; the search stops with
    /// [`Truncation::WallDeadline`] once it elapses. `None` (the default)
    /// runs unbounded.
    pub deadline: Option<Duration>,
}

impl Default for ExploreLimits {
    fn default() -> ExploreLimits {
        ExploreLimits {
            max_steps: 5_000,
            max_schedules: 250_000,
            max_preemptions: None,
            stop_on_first_failure: false,
            dedup_states: false,
            sleep_sets: false,
            dpor: false,
            fuse: true,
            deadline: None,
        }
    }
}

/// Histogram of terminal outcomes over an exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Executions that finished with every assertion holding.
    pub ok: u64,
    /// Executions that failed an assertion.
    pub assert_failed: u64,
    /// Executions that deadlocked.
    pub deadlock: u64,
    /// Executions cut off by the step budget.
    pub step_limit: u64,
    /// Executions cut off by the transaction retry budget.
    pub tx_retry_limit: u64,
    /// Executions that crashed on a synchronization misuse.
    pub misuse: u64,
}

impl OutcomeCounts {
    /// Total executions classified.
    pub fn total(&self) -> u64 {
        self.ok
            + self.assert_failed
            + self.deadlock
            + self.step_limit
            + self.tx_retry_limit
            + self.misuse
    }

    /// Executions that manifested a bug (assert / deadlock / misuse).
    pub fn failures(&self) -> u64 {
        self.assert_failed + self.deadlock + self.misuse
    }

    pub(crate) fn add(&mut self, outcome: &Outcome) {
        match outcome {
            Outcome::Ok => self.ok += 1,
            Outcome::AssertFailed { .. } => self.assert_failed += 1,
            Outcome::Deadlock { .. } => self.deadlock += 1,
            Outcome::StepLimit => self.step_limit += 1,
            Outcome::TxRetryLimit { .. } => self.tx_retry_limit += 1,
            Outcome::Misuse { .. } => self.misuse += 1,
        }
    }
}

impl fmt::Display for OutcomeCounts {
    /// One-line histogram, e.g.
    /// `ok=2 assert=1 deadlock=0 step-limit=0 tx-retry=0 misuse=0 total=3`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ok={} assert={} deadlock={} step-limit={} tx-retry={} misuse={} total={}",
            self.ok,
            self.assert_failed,
            self.deadlock,
            self.step_limit,
            self.tx_retry_limit,
            self.misuse,
            self.total()
        )
    }
}

/// Why an exploration stopped short of the full interleaving space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truncation {
    /// `max_schedules` was reached; whole subtrees remain unexplored.
    ScheduleBudget,
    /// At least one execution was cut by `max_steps`, so its suffix
    /// interleavings were never classified.
    StepBudget,
    /// The preemption bound pruned still-enabled scheduling choices.
    PreemptionBound,
    /// The wall-clock deadline elapsed mid-search.
    WallDeadline,
}

impl fmt::Display for Truncation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Truncation::ScheduleBudget => "schedule budget",
            Truncation::StepBudget => "step budget",
            Truncation::PreemptionBound => "preemption bound",
            Truncation::WallDeadline => "wall deadline",
        })
    }
}

/// Operational metrics of one exploration, alongside the semantic results
/// in [`ExploreReport`]. Deterministic except for `wall`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// States with more than one enabled thread that were expanded
    /// (pushed on the DFS stack).
    pub branch_points: u64,
    /// Executor snapshots taken (one clone per explored choice).
    pub snapshots: u64,
    /// Deepest DFS stack observed.
    pub max_depth: u64,
    /// Enabled choices skipped because the preemption budget was
    /// exhausted.
    pub preemption_limited: u64,
    /// Heap bytes the copy-on-write snapshot representation avoided
    /// copying, summed over all snapshots: for each one, the size a
    /// pre-COW deep clone would have copied minus what the `Arc`-sharing
    /// clone actually copies. A pure function of the states snapshotted,
    /// so the serial and parallel explorers report identical totals.
    pub snapshot_bytes_saved: u64,
    /// Invisible steps fused into their parent edge instead of opening
    /// a branch point (see [`ExploreLimits::fuse`]). Always 0 with
    /// fusion off or under chaos.
    pub fused_steps: u64,
    /// Branch-point children that were their frame's *final survivor*
    /// (every remaining sibling provably pruned by the sleep set or
    /// the preemption bound), so the parent's executor was moved into
    /// the child and no snapshot clone was taken. In legacy-snapshots
    /// emulation mode the deep clone still happens — the counter then
    /// records what the copy-on-write mode elides, keeping legacy and
    /// COW reports identical.
    pub snapshots_elided: u64,
    /// Wall-clock time of the whole exploration.
    pub wall: Duration,
}

/// Result of [`Explorer::run`].
#[derive(Debug, Clone)]
pub struct ExploreReport {
    /// Outcome histogram.
    pub counts: OutcomeCounts,
    /// Number of complete schedules executed.
    pub schedules_run: u64,
    /// Total visible steps across all executions.
    pub steps_total: u64,
    /// `true` when `max_schedules` cut the search short.
    pub truncated: bool,
    /// A witness for the first failure found, with its outcome.
    pub first_failure: Option<(Schedule, Outcome)>,
    /// A witness for the first clean execution found.
    pub first_ok: Option<Schedule>,
    /// Branches skipped by state deduplication.
    pub states_deduped: u64,
    /// Sibling choices skipped by the sleep-set reduction.
    pub sleep_pruned: u64,
    /// Branch children DPOR proved redundant without running them:
    /// enabled threads that never entered their branch point's
    /// backtrack set before it was exhausted. Always 0 outside DPOR
    /// mode.
    pub dpor_pruned: u64,
    /// Why the search was cut short, when it was: the schedule budget,
    /// the per-execution step budget, or the preemption bound. `None`
    /// means the explored space was exhausted.
    pub truncation: Option<Truncation>,
    /// Knuth-style estimate of the total number of schedules in the
    /// exploration tree (mean over enumerated leaves of the product of
    /// branching degrees along each root-to-leaf path). A pure function
    /// of the tree — identical across serial/parallel and
    /// observation-on/off runs; exact when the sweep completed
    /// un-truncated without pruning. 0.0 when no schedule ran.
    pub est_total_schedules: f64,
    /// Operational metrics (branch points, snapshots, depth, wall time).
    pub stats: ExploreStats,
}

impl ExploreReport {
    /// `true` when at least one interleaving manifested a bug.
    pub fn found_failure(&self) -> bool {
        self.first_failure.is_some()
    }

    /// Completed schedules per second of wall time (0.0 when the
    /// exploration was too fast to time).
    pub fn schedules_per_sec(&self) -> f64 {
        let secs = self.stats.wall.as_secs_f64();
        if secs > 0.0 {
            self.schedules_run as f64 / secs
        } else {
            0.0
        }
    }

    /// Visible steps executed per second of wall time (0.0 when the
    /// exploration was too fast to time) — the explorer's throughput
    /// currency, independent of how long individual schedules are.
    pub fn states_per_sec(&self) -> f64 {
        let secs = self.stats.wall.as_secs_f64();
        if secs > 0.0 {
            self.steps_total as f64 / secs
        } else {
            0.0
        }
    }

    /// `true` when the space was exhausted with no failure — i.e. the
    /// program is correct within the explored bounds.
    pub fn proved_ok(&self) -> bool {
        !self.truncated && self.counts.failures() == 0 && self.counts.step_limit == 0
    }
}

/// Depth-first interleaving explorer over a [`Program`].
#[derive(Debug)]
pub struct Explorer<'p> {
    program: &'p Program,
    limits: ExploreLimits,
    record: RecordMode,
    sink: Arc<dyn Sink>,
    fault: Option<FaultPlan>,
    legacy: bool,
    profile: Arc<PhaseProfiler>,
    progress_every: Option<Duration>,
}

impl<'p> Explorer<'p> {
    /// Creates an explorer with default limits and the no-op sink.
    pub fn new(program: &'p Program) -> Explorer<'p> {
        Explorer {
            program,
            limits: ExploreLimits::default(),
            record: RecordMode::Off,
            sink: Arc::new(NoopSink),
            fault: None,
            legacy: false,
            profile: Arc::new(PhaseProfiler::disabled()),
            progress_every: None,
        }
    }

    /// Streams `explore` scope events (start, periodic progress, final
    /// report) to `sink`. Observation only: exploration *results* are
    /// identical whatever the sink (enforced by the `obs_determinism`
    /// test).
    pub fn with_sink(mut self, sink: Arc<dyn Sink>) -> Explorer<'p> {
        self.sink = sink;
        self
    }

    /// Records every execution's events so `run_with_callback` observers
    /// can read [`Executor::events`] (e.g. for coverage measurement).
    /// Slows exploration; off by default.
    pub fn record_events(mut self) -> Explorer<'p> {
        self.record = RecordMode::Full;
        self
    }

    /// Replaces the resource bounds.
    pub fn limits(mut self, limits: ExploreLimits) -> Explorer<'p> {
        self.limits = limits;
        self
    }

    /// Sets a CHESS-style preemption bound.
    pub fn preemption_bound(mut self, bound: u32) -> Explorer<'p> {
        self.limits.max_preemptions = Some(bound);
        self
    }

    /// Stops at the first failure.
    pub fn stop_on_first_failure(mut self) -> Explorer<'p> {
        self.limits.stop_on_first_failure = true;
        self
    }

    /// Enables state deduplication (see [`ExploreLimits::dedup_states`]).
    pub fn dedup_states(mut self) -> Explorer<'p> {
        self.limits.dedup_states = true;
        self
    }

    /// Enables the sleep-set partial-order reduction
    /// (see [`ExploreLimits::sleep_sets`]).
    pub fn sleep_sets(mut self) -> Explorer<'p> {
        self.limits.sleep_sets = true;
        self
    }

    /// Enables source-set dynamic partial-order reduction
    /// (see [`ExploreLimits::dpor`]).
    pub fn dpor(mut self) -> Explorer<'p> {
        self.limits.dpor = true;
        self
    }

    /// Sets a wall-clock deadline for the exploration
    /// (see [`ExploreLimits::deadline`]).
    pub fn deadline(mut self, deadline: Duration) -> Explorer<'p> {
        self.limits.deadline = Some(deadline);
        self
    }

    /// Disables invisible-step fusion (see [`ExploreLimits::fuse`]):
    /// every state with ≥2 enabled threads becomes a branch point, as
    /// before fusion existed. The escape hatch behind `--no-fuse` and
    /// the baseline side of the `fuse_equivalence` differential suite.
    pub fn no_fuse(mut self) -> Explorer<'p> {
        self.limits.fuse = false;
        self
    }

    /// Emulates the pre-copy-on-write snapshot costs: every branch
    /// snapshot is a [`Executor::deep_clone`] (all shared components
    /// materialized, logs re-chunked) and every dedup probe recomputes
    /// the state key from scratch. Results are identical to the default
    /// mode — only slower. Exists as the honest baseline for the E-perf
    /// benchmark; not intended for regular use.
    pub fn legacy_snapshots(mut self) -> Explorer<'p> {
        self.legacy = true;
        self
    }

    /// Attributes hot-path wall time to phases (snapshot, step, hash,
    /// dedup) on `profiler`. Write-only observation: the profiler is
    /// never read during the run, so reports stay bit-identical with
    /// profiling on, off, or sampling at any rate (the determinism
    /// suite pins this). Pass [`PhaseProfiler::sampling`] to enable.
    pub fn profile(mut self, profiler: Arc<PhaseProfiler>) -> Explorer<'p> {
        self.profile = profiler;
        self
    }

    /// Emits periodic `explore`/`progress_est` events (frontier depth,
    /// estimated fraction explored, throughput trend, ETA) roughly
    /// every `every` of wall time. The wall clock is consulted only on
    /// a schedule-counter gate, and everything time-dependent lives in
    /// the events — never in the report.
    pub fn progress_every(mut self, every: Duration) -> Explorer<'p> {
        self.progress_every = Some(every);
        self
    }

    /// Explores under a deterministic [`FaultPlan`]: spurious wakeups,
    /// forced try-lock failures, forced transaction aborts, and bounded
    /// stalls are injected into every execution. Identical plans yield
    /// bit-identical reports. Disables the sleep-set reduction for this
    /// run (fault decisions are step-indexed, so sibling operations no
    /// longer commute).
    pub fn chaos(mut self, plan: FaultPlan) -> Explorer<'p> {
        self.fault = Some(plan);
        self
    }

    /// Runs the exploration.
    pub fn run(&self) -> ExploreReport {
        self.run_with_callback(|_, _| {})
    }

    /// Runs the exploration, invoking `on_terminal` with the executor and
    /// outcome of every terminal state (before it is discarded).
    pub fn run_with_callback(
        &self,
        mut on_terminal: impl FnMut(&Executor, &Outcome),
    ) -> ExploreReport {
        struct Branch {
            exec: Executor,
            enabled: Vec<ThreadId>,
            next: usize,
            preemptions: u32,
            /// Sleep set: threads whose next op is covered by an already
            /// explored sibling subtree.
            sleep: Vec<ThreadId>,
            /// [`Executor::snapshot_bytes_saved`] of `exec`, computed
            /// once at push: the value is identical for every child
            /// cloned from this prefix (the prefix is never mutated
            /// while it sits on the stack).
            saved: u64,
            /// Logical branch depth of this frame (root = 1). Kept
            /// explicitly because the physical stack can be shorter:
            /// an exhausted frame is popped when its last child moves
            /// the snapshot out.
            depth: u64,
            /// Product of branching degrees along the root-to-this-frame
            /// path (root = its own degree). Every terminal reached from
            /// this frame contributes this value as one Knuth tree-size
            /// sample.
            path_degree: f64,
        }

        // Resolve the effective reductions once; the DPOR driver is a
        // separate walk (backtrack sets instead of a sibling cursor)
        // over the same frontier primitives.
        let mode = Mode::resolve(&self.limits, self.fault.is_some());
        if mode.dpor {
            return self.run_dpor(mode, &mut on_terminal);
        }
        let stopwatch = Stopwatch::start();
        // Sleep sets assume sibling operations commute; step-indexed fault
        // decisions break that, so the reduction is off under chaos.
        let sleep_on = mode.sleep;
        let mut deadline_hit = false;
        let mut report = ExploreReport {
            counts: OutcomeCounts::default(),
            schedules_run: 0,
            steps_total: 0,
            truncated: false,
            first_failure: None,
            first_ok: None,
            states_deduped: 0,
            sleep_pruned: 0,
            dpor_pruned: 0,
            truncation: None,
            est_total_schedules: 0.0,
            stats: ExploreStats::default(),
        };
        let mut estimator = KnuthEstimator::new();
        let mut progress = self.progress_every.map(ProgressTracker::new);
        let mut seen_states = crate::fxhash::FxHashSet::<u64>::default();
        if self.sink.enabled() {
            let mut fields = vec![
                ("program", Value::Str(self.program.name())),
                ("threads", Value::U64(self.program.n_threads() as u64)),
                ("max_schedules", Value::U64(self.limits.max_schedules)),
                ("sleep_sets", Value::Bool(sleep_on)),
                ("dedup_states", Value::Bool(self.limits.dedup_states)),
                ("fuse", Value::Bool(mode.fuse)),
            ];
            if let Some(d) = self.limits.deadline {
                fields.push(("deadline_ms", Value::U64(d.as_millis() as u64)));
            }
            if let Some(plan) = &self.fault {
                fields.push(("chaos_seed", Value::U64(plan.seed)));
            }
            self.sink.emit(&Event {
                scope: "explore",
                name: "start",
                fields: &fields,
            });
        }

        let mut root = Executor::with_record(self.program, self.record);
        if let Some(plan) = self.fault {
            // Stall faults only bias samplers; for a systematic search
            // they would *remove* interleavings (see
            // [`FaultPlan::without_stalls`]), so strip them here.
            root.set_fault_plan(plan.without_stalls());
        }
        let root = root;
        let mut stack = Vec::new();
        if let Some(outcome) = root.outcome().cloned() {
            // Program terminates without any scheduling choice: the
            // tree is a single leaf with an empty degree product.
            estimator.record_leaf(1.0);
            self.classify(&mut report, &root, &outcome, &mut on_terminal);
            self.progress_tick(&report, &estimator, &mut progress, &stopwatch, 0);
            self.finish(&mut report, stopwatch, false, &estimator);
            return report;
        }
        if mode.dedup {
            let key = self.profile.time(Phase::Hash, || self.branch_key(&root));
            self.profile.time(Phase::Dedup, || seen_states.insert(key));
        }
        let enabled = root.enabled();
        report.stats.branch_points += 1;
        report.stats.max_depth = 1;
        let root_saved = root.snapshot_bytes_saved();
        let root_degree = enabled.len() as f64;
        stack.push(Branch {
            exec: root,
            enabled,
            next: 0,
            preemptions: 0,
            sleep: Vec::new(),
            saved: root_saved,
            depth: 1,
            path_degree: root_degree,
        });

        while let Some(top) = stack.last_mut() {
            match frontier::budget_stop(&self.limits, &stopwatch, report.schedules_run) {
                Some(frontier::Stop::Deadline) => {
                    deadline_hit = true;
                    report.truncated = true;
                    break;
                }
                Some(frontier::Stop::Budget) => {
                    report.truncated = true;
                    break;
                }
                None => {}
            }
            if top.next >= top.enabled.len() {
                stack.pop();
                continue;
            }
            let choice = top.enabled[top.next];
            top.next += 1;
            if sleep_on && top.sleep.contains(&choice) {
                report.sleep_pruned += 1;
                continue;
            }

            // Preemption accounting: switching away from a thread that is
            // still enabled counts against the bound.
            let mut preemptions = top.preemptions;
            if let Some(bound) = self.limits.max_preemptions {
                if let Some(last) = top.exec.last_scheduled() {
                    if last != choice && top.enabled.contains(&last) {
                        preemptions += 1;
                        if preemptions > bound {
                            report.stats.preemption_limited += 1;
                            continue;
                        }
                    }
                }
            }

            // Sleep propagation: a sleeping sibling stays asleep in the
            // child iff its pending op commutes with the chosen one.
            let mut child_sleep: Vec<ThreadId> = Vec::new();
            if sleep_on {
                let choice_fp = top.exec.next_footprint(choice);
                for &s in &top.sleep {
                    let keep = match (&choice_fp, top.exec.next_footprint(s)) {
                        (Some(a), Some(b)) => a.independent(&b),
                        _ => false,
                    };
                    if keep {
                        child_sleep.push(s);
                    }
                }
                // Siblings after this one must not redo this choice's
                // equivalence class.
                top.sleep.push(choice);
            }

            let saved = top.saved;
            let depth = top.depth;
            let path_degree = top.path_degree;
            // Lazy snapshot elision: scan the remaining siblings; when
            // every one is provably doomed — asleep now, or pruned by
            // the preemption bound, both verdicts pure functions of
            // this frame's frozen state (the sleep set only grows via
            // the push above, and pruned siblings never push) — this
            // child is the frame's *final survivor*. Consume the
            // doomed tail's accounting eagerly, in sibling order, and
            // move the parent's executor into the child instead of
            // cloning it. An empty tail is the classic last-sibling
            // move, now also counted as an elided snapshot.
            let mut final_survivor = true;
            let mut tail_sleep = 0u64;
            let mut tail_preempt = 0u64;
            for j in top.next..top.enabled.len() {
                let s = top.enabled[j];
                if sleep_on && top.sleep.contains(&s) {
                    tail_sleep += 1;
                } else if self.limits.max_preemptions.is_some_and(|bound| {
                    top.exec.last_scheduled().is_some_and(|last| {
                        last != s && top.enabled.contains(&last) && top.preemptions + 1 > bound
                    })
                }) {
                    tail_preempt += 1;
                } else {
                    final_survivor = false;
                    break;
                }
            }
            if final_survivor {
                report.sleep_pruned += tail_sleep;
                report.stats.preemption_limited += tail_preempt;
                report.stats.snapshots_elided += 1;
                top.next = top.enabled.len();
            }
            let snap_guard = self.profile.enter(Phase::Snapshot);
            let child = if self.legacy {
                // Legacy mode keeps the faithful clone-per-child of the
                // pre-COW implementation it emulates (the exhausted
                // frame pops naturally at the loop top); the doomed
                // tail was still consumed above, so legacy and COW
                // reports stay identical.
                top.exec.deep_clone()
            } else if final_survivor {
                // Safe because COW children share structure instead of
                // borrowing from the parent.
                stack.pop().expect("current frame is on the stack").exec
            } else {
                top.exec.clone()
            };
            drop(snap_guard);
            report.stats.snapshots += 1;
            report.stats.snapshot_bytes_saved += saved;
            // Run forward while there is no real choice to make, then
            // either classify the terminal state or push a new branch.
            let step_guard = self.profile.enter(Phase::Step);
            let next = frontier::advance(
                child,
                choice,
                self.limits.max_steps,
                sleep_on,
                &mut child_sleep,
                mode.fuse,
                &mut report.stats.fused_steps,
            );
            drop(step_guard);
            match next {
                Advance::Terminal(exec, outcome) => {
                    estimator.record_leaf(path_degree);
                    self.classify(&mut report, &exec, &outcome, &mut on_terminal);
                    self.progress_tick(
                        &report,
                        &estimator,
                        &mut progress,
                        &stopwatch,
                        stack.len() as u64,
                    );
                    if self.limits.stop_on_first_failure && report.first_failure.is_some() {
                        break;
                    }
                }
                Advance::Branch(exec, enabled) => {
                    if mode.dedup {
                        let key = self.profile.time(Phase::Hash, || self.branch_key(&exec));
                        let fresh = self.profile.time(Phase::Dedup, || seen_states.insert(key));
                        if !fresh {
                            report.states_deduped += 1;
                            continue;
                        }
                    }
                    report.stats.branch_points += 1;
                    let saved = exec.snapshot_bytes_saved();
                    let child_degree = path_degree * enabled.len() as f64;
                    stack.push(Branch {
                        exec,
                        enabled,
                        next: 0,
                        preemptions,
                        sleep: child_sleep,
                        saved,
                        depth: depth + 1,
                        path_degree: child_degree,
                    });
                    report.stats.max_depth = report.stats.max_depth.max(depth + 1);
                }
                Advance::Redundant => {
                    report.sleep_pruned += 1;
                }
            }
        }

        // A search that spent its whole schedule budget counts as
        // truncated even when the stack happened to drain exactly at the
        // budget — eagerly popped frames must not make an exact-budget
        // run look complete. (Stopping at the first failure keeps
        // precedence, as it always has.)
        if report.schedules_run >= self.limits.max_schedules
            && !(self.limits.stop_on_first_failure && report.first_failure.is_some())
        {
            report.truncated = true;
        }
        self.finish(&mut report, stopwatch, deadline_hit, &estimator);
        report
    }

    /// The DPOR walk: the same frontier primitives as the classic DFS,
    /// but siblings come from per-frame backtrack sets grown by race
    /// detection ([`crate::dpor`]) instead of a cursor over every
    /// enabled thread. Snapshots always clone — a frame's backtrack set
    /// can grow after its latest sibling started, so the classic walk's
    /// last-sibling snapshot move is unsound here.
    fn run_dpor(
        &self,
        mode: Mode,
        on_terminal: &mut impl FnMut(&Executor, &Outcome),
    ) -> ExploreReport {
        struct DporBranch {
            exec: Executor,
            /// Frame index in the [`Dpor`] engine (== stack position).
            frame: usize,
            /// [`Executor::snapshot_bytes_saved`] of `exec`, computed
            /// once at push (the prefix is never mutated on the stack).
            saved: u64,
            /// Logical branch depth of this frame (root = 1).
            depth: u64,
            /// Product of *full* branching degrees along the path, so
            /// the tree-size estimate keeps estimating the full space
            /// and the reduction stays visible against it.
            path_degree: f64,
        }

        let stopwatch = Stopwatch::start();
        let mut deadline_hit = false;
        let mut report = ExploreReport {
            counts: OutcomeCounts::default(),
            schedules_run: 0,
            steps_total: 0,
            truncated: false,
            first_failure: None,
            first_ok: None,
            states_deduped: 0,
            sleep_pruned: 0,
            dpor_pruned: 0,
            truncation: None,
            est_total_schedules: 0.0,
            stats: ExploreStats::default(),
        };
        let mut estimator = KnuthEstimator::new();
        let mut progress = self.progress_every.map(ProgressTracker::new);
        if self.sink.enabled() {
            let mut fields = vec![
                ("program", Value::Str(self.program.name())),
                ("threads", Value::U64(self.program.n_threads() as u64)),
                ("max_schedules", Value::U64(self.limits.max_schedules)),
                ("sleep_sets", Value::Bool(mode.sleep)),
                ("dedup_states", Value::Bool(mode.dedup)),
                ("dpor", Value::Bool(true)),
                ("fuse", Value::Bool(mode.fuse)),
            ];
            if let Some(d) = self.limits.deadline {
                fields.push(("deadline_ms", Value::U64(d.as_millis() as u64)));
            }
            self.sink.emit(&Event {
                scope: "explore",
                name: "start",
                fields: &fields,
            });
        }

        let root = Executor::with_record(self.program, self.record);
        if let Some(outcome) = root.outcome().cloned() {
            estimator.record_leaf(1.0);
            self.classify(&mut report, &root, &outcome, on_terminal);
            self.progress_tick(&report, &estimator, &mut progress, &stopwatch, 0);
            self.finish(&mut report, stopwatch, false, &estimator);
            return report;
        }
        let mut dpor = Dpor::new(self.program.n_threads());
        let enabled = root.enabled();
        let fps = enabled
            .iter()
            .map(|&t| {
                root.next_footprint(t)
                    .expect("an enabled thread has a next op")
            })
            .collect();
        report.stats.branch_points += 1;
        report.stats.max_depth = 1;
        let root_saved = root.snapshot_bytes_saved();
        let root_degree = enabled.len() as f64;
        let frame = dpor.push_frame(enabled, fps, Vec::new());
        let mut stack = vec![DporBranch {
            exec: root,
            frame,
            saved: root_saved,
            depth: 1,
            path_degree: root_degree,
        }];

        while let Some(top) = stack.last() {
            match frontier::budget_stop(&self.limits, &stopwatch, report.schedules_run) {
                Some(frontier::Stop::Deadline) => {
                    deadline_hit = true;
                    report.truncated = true;
                    break;
                }
                Some(frontier::Stop::Budget) => {
                    report.truncated = true;
                    break;
                }
                None => {}
            }
            let frame = top.frame;
            let (skipped, choice) = dpor.select(frame);
            report.sleep_pruned += skipped;
            let Some(choice) = choice else {
                report.dpor_pruned += dpor.pop_frame();
                stack.pop();
                continue;
            };
            if mode.sleep {
                // Siblings selected after this one must not redo this
                // choice's equivalence class.
                dpor.sleep_after(frame, choice);
            }
            let saved = top.saved;
            let depth = top.depth;
            let path_degree = top.path_degree;
            let snap_guard = self.profile.enter(Phase::Snapshot);
            let child = if self.legacy {
                top.exec.deep_clone()
            } else {
                top.exec.clone()
            };
            drop(snap_guard);
            report.stats.snapshots += 1;
            report.stats.snapshot_bytes_saved += saved;
            let choice_fp = dpor.fp_of(frame, choice).clone();
            let step_guard = self.profile.enter(Phase::Step);
            let mut forced = Vec::new();
            let next = frontier::advance_dpor(
                child,
                choice,
                self.limits.max_steps,
                mode.fuse,
                &mut forced,
                &mut report.stats.fused_steps,
            );
            drop(step_guard);
            // Commit the edge to the race log in execution order; races
            // it closes grow backtrack sets of the frames still below.
            dpor.commit_step(choice, choice_fp, Some(frame));
            for (t, fp) in &forced {
                dpor.commit_step(*t, fp.clone(), None);
            }
            match next {
                Advance::Terminal(exec, outcome) => {
                    // Ops the terminal cut off before they could run
                    // (blocked in a deadlock, or preempted by an abort)
                    // still race with the executed path — without this
                    // an op that always deadlocks first on the explored
                    // order would never grow a backtrack set.
                    for (t, fp) in frontier::pending_ops(&exec) {
                        dpor.pending_race(t, &fp);
                    }
                    estimator.record_leaf(path_degree);
                    self.classify(&mut report, &exec, &outcome, on_terminal);
                    self.progress_tick(
                        &report,
                        &estimator,
                        &mut progress,
                        &stopwatch,
                        stack.len() as u64,
                    );
                    if self.limits.stop_on_first_failure && report.first_failure.is_some() {
                        break;
                    }
                }
                Advance::Branch(exec, enabled) => {
                    if enabled.is_empty() {
                        // Unreachable in practice: a state with no
                        // enabled thread carries a terminal outcome.
                        continue;
                    }
                    let child_sleep = if mode.sleep {
                        dpor.child_sleep(frame, choice, &forced, &enabled)
                    } else {
                        Vec::new()
                    };
                    if enabled.iter().all(|t| child_sleep.contains(t)) {
                        // Every enabled thread is asleep: the whole
                        // subtree is covered by explored siblings.
                        report.sleep_pruned += 1;
                        continue;
                    }
                    let fps = enabled
                        .iter()
                        .map(|&t| {
                            exec.next_footprint(t)
                                .expect("an enabled thread has a next op")
                        })
                        .collect();
                    report.stats.branch_points += 1;
                    let saved = exec.snapshot_bytes_saved();
                    let child_degree = path_degree * enabled.len() as f64;
                    let fi = dpor.push_frame(enabled, fps, child_sleep);
                    stack.push(DporBranch {
                        exec,
                        frame: fi,
                        saved,
                        depth: depth + 1,
                        path_degree: child_degree,
                    });
                    report.stats.max_depth = report.stats.max_depth.max(depth + 1);
                }
                Advance::Redundant => unreachable!("the DPOR forward run never prunes"),
            }
        }

        if report.schedules_run >= self.limits.max_schedules
            && !(self.limits.stop_on_first_failure && report.first_failure.is_some())
        {
            report.truncated = true;
        }
        self.finish(&mut report, stopwatch, deadline_hit, &estimator);
        report
    }

    /// Dedup key for a branch state: the cached incremental key, or the
    /// preserved pre-incremental whole-state hash in legacy mode. The
    /// two keys have different values but make the same distinctions,
    /// so the dedup verdicts — and therefore the reports — coincide
    /// (the property suite enforces it).
    fn branch_key(&self, exec: &Executor) -> u64 {
        if self.legacy {
            exec.state_key_legacy()
        } else {
            exec.state_key()
        }
    }

    /// Emits a periodic `explore`/`progress_est` event when progress
    /// tracking is on and the configured interval has elapsed. Called
    /// after every classified schedule behind a counter gate, so the
    /// wall clock is read at most once per [`PROGRESS_CHECK_EVERY`]
    /// schedules.
    fn progress_tick(
        &self,
        report: &ExploreReport,
        estimator: &KnuthEstimator,
        progress: &mut Option<ProgressTracker>,
        stopwatch: &Stopwatch,
        frontier_depth: u64,
    ) {
        let Some(tracker) = progress.as_mut() else {
            return;
        };
        if !report.schedules_run.is_multiple_of(PROGRESS_CHECK_EVERY) {
            return;
        }
        let elapsed = stopwatch.elapsed();
        if !tracker.due(elapsed) {
            return;
        }
        let rate = tracker.sample(report.schedules_run, elapsed);
        if !self.sink.enabled() {
            return;
        }
        let est_total = estimator.estimate();
        let overall_secs = elapsed.as_secs_f64();
        let states_per_sec = if overall_secs > 0.0 {
            report.steps_total as f64 / overall_secs
        } else {
            0.0
        };
        let mut fields = vec![
            ("program", Value::Str(self.program.name())),
            ("schedules", Value::U64(report.schedules_run)),
            ("steps", Value::U64(report.steps_total)),
            ("failures", Value::U64(report.counts.failures())),
            ("frontier_depth", Value::U64(frontier_depth)),
            ("max_depth", Value::U64(report.stats.max_depth)),
            ("est_total", Value::F64(est_total)),
            ("fraction", Value::F64(estimator.fraction_done())),
            ("schedules_per_sec", Value::F64(rate)),
            ("states_per_sec", Value::F64(states_per_sec)),
        ];
        if let Some(ms) = eta_ms(est_total - report.schedules_run as f64, rate) {
            fields.push(("eta_ms", Value::U64(ms)));
        }
        self.sink.emit(&Event {
            scope: "explore",
            name: "progress_est",
            fields: &fields,
        });
    }

    /// Derives the truncation reason, stamps the wall time and tree-size
    /// estimate, and emits the final `explore`/`report` event.
    fn finish(
        &self,
        report: &mut ExploreReport,
        stopwatch: Stopwatch,
        deadline_hit: bool,
        estimator: &KnuthEstimator,
    ) {
        report.est_total_schedules = estimator.estimate();
        report.truncation = frontier::derive_truncation(
            deadline_hit,
            report.truncated,
            report.counts.step_limit,
            report.stats.preemption_limited,
        );
        report.stats.wall = stopwatch.elapsed();
        if self.sink.enabled() {
            let truncation = report
                .truncation
                .map(|t| t.to_string())
                .unwrap_or_else(|| "none".to_owned());
            let mut fields = vec![
                ("program", Value::Str(self.program.name())),
                ("schedules", Value::U64(report.schedules_run)),
                ("steps", Value::U64(report.steps_total)),
                ("ok", Value::U64(report.counts.ok)),
                ("assert_failed", Value::U64(report.counts.assert_failed)),
                ("deadlock", Value::U64(report.counts.deadlock)),
                ("step_limit", Value::U64(report.counts.step_limit)),
                ("tx_retry_limit", Value::U64(report.counts.tx_retry_limit)),
                ("misuse", Value::U64(report.counts.misuse)),
                ("branch_points", Value::U64(report.stats.branch_points)),
                ("snapshots", Value::U64(report.stats.snapshots)),
                ("max_depth", Value::U64(report.stats.max_depth)),
                ("sleep_pruned", Value::U64(report.sleep_pruned)),
                ("dpor_pruned", Value::U64(report.dpor_pruned)),
                ("states_deduped", Value::U64(report.states_deduped)),
                (
                    "preemption_limited",
                    Value::U64(report.stats.preemption_limited),
                ),
                ("truncation", Value::Str(&truncation)),
                ("schedules_per_sec", Value::F64(report.schedules_per_sec())),
                ("states_per_sec", Value::F64(report.states_per_sec())),
                (
                    "snapshot_bytes_saved",
                    Value::U64(report.stats.snapshot_bytes_saved),
                ),
                ("fused_steps", Value::U64(report.stats.fused_steps)),
                (
                    "snapshots_elided",
                    Value::U64(report.stats.snapshots_elided),
                ),
                (
                    "est_total_schedules",
                    Value::F64(report.est_total_schedules),
                ),
                ("wall_us", Value::U64(report.stats.wall.as_micros() as u64)),
            ];
            if let Some(d) = self.limits.deadline {
                fields.push(("deadline_ms", Value::U64(d.as_millis() as u64)));
            }
            if let Some(plan) = &self.fault {
                fields.push(("chaos_seed", Value::U64(plan.seed)));
            }
            self.sink.emit(&Event {
                scope: "explore",
                name: "report",
                fields: &fields,
            });
        }
    }

    fn classify(
        &self,
        report: &mut ExploreReport,
        exec: &Executor,
        outcome: &Outcome,
        on_terminal: &mut impl FnMut(&Executor, &Outcome),
    ) {
        report.schedules_run += 1;
        report.steps_total += exec.steps() as u64;
        report.counts.add(outcome);
        if self.sink.enabled() && report.schedules_run.is_multiple_of(PROGRESS_EVERY) {
            self.sink.emit(&Event {
                scope: "explore",
                name: "progress",
                fields: &[
                    ("program", Value::Str(self.program.name())),
                    ("schedules", Value::U64(report.schedules_run)),
                    ("steps", Value::U64(report.steps_total)),
                    ("failures", Value::U64(report.counts.failures())),
                ],
            });
        }
        if outcome.is_failure() && report.first_failure.is_none() {
            report.first_failure = Some((exec.schedule_taken(), outcome.clone()));
        }
        if outcome.is_ok() && report.first_ok.is_none() {
            report.first_ok = Some(exec.schedule_taken());
        }
        on_terminal(exec, outcome);
    }
}

/// Re-executes one schedule with full recording and returns its trace.
pub fn trace_of(program: &Program, schedule: &Schedule, max_steps: usize) -> (Trace, Outcome) {
    let (trace, outcome, _) = trace_of_checked(program, schedule, max_steps);
    (trace, outcome)
}

/// [`trace_of`] plus the [`ReplayDeviation`] account: a trace rebuilt
/// from a schedule that named out-of-range or not-enabled threads is
/// not evidence about the schedule's original program, and this
/// variant lets the caller tell.
pub fn trace_of_checked(
    program: &Program,
    schedule: &Schedule,
    max_steps: usize,
) -> (Trace, Outcome, ReplayDeviation) {
    let mut exec = Executor::with_record(program, RecordMode::Full);
    let (outcome, deviation) = exec.replay_checked(schedule, max_steps);
    (exec.into_trace(), outcome, deviation)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counts() -> OutcomeCounts {
        OutcomeCounts {
            ok: 5,
            assert_failed: 4,
            deadlock: 3,
            step_limit: 2,
            tx_retry_limit: 1,
            misuse: 6,
        }
    }

    #[test]
    fn total_is_consistent_with_every_field() {
        let c = sample_counts();
        assert_eq!(c.total(), 5 + 4 + 3 + 2 + 1 + 6);
        assert_eq!(c.failures(), 4 + 3 + 6);
        // `add` must keep the invariant for every outcome kind.
        let mut c = OutcomeCounts::default();
        for (i, outcome) in [
            Outcome::Ok,
            Outcome::StepLimit,
            Outcome::AssertFailed {
                thread: None,
                msg: "m",
            },
        ]
        .iter()
        .enumerate()
        {
            c.add(outcome);
            assert_eq!(c.total(), i as u64 + 1);
        }
    }

    #[test]
    fn display_is_a_one_line_histogram() {
        let text = sample_counts().to_string();
        assert_eq!(
            text,
            "ok=5 assert=4 deadlock=3 step-limit=2 tx-retry=1 misuse=6 total=21"
        );
        assert!(!text.contains('\n'));
    }

    #[test]
    fn display_total_matches_total_method() {
        let c = sample_counts();
        let rendered = c.to_string();
        let total: u64 = rendered
            .rsplit_once("total=")
            .and_then(|(_, t)| t.parse().ok())
            .expect("display ends with total=N");
        assert_eq!(total, c.total());
    }

    #[test]
    fn truncation_reasons_render() {
        assert_eq!(Truncation::ScheduleBudget.to_string(), "schedule budget");
        assert_eq!(Truncation::StepBudget.to_string(), "step budget");
        assert_eq!(Truncation::PreemptionBound.to_string(), "preemption bound");
        assert_eq!(Truncation::WallDeadline.to_string(), "wall deadline");
    }
}
