//! Minimal multiply-rotate hasher for the exploration hot path.
//!
//! Two maps sit inside the per-step inner loop: every `Read`/`Write`
//! statement probes a thread's locals table (keyed by short static
//! names), and every dedup probe inserts an already-avalanched `u64`
//! state key into the seen set. The standard library's default SipHash
//! is keyed and DoS-resistant, which none of these internal tables
//! need, and its per-probe setup cost dominates both operations. This
//! module provides the classic Fx multiply-rotate hash (one rotate, one
//! xor, one multiply per word), which is a good fit for short keys and
//! for keys that are already well mixed.
//!
//! Collision quality is irrelevant for correctness here: `HashMap` and
//! `HashSet` compare keys exactly, so a weaker hash can only cost
//! probe-sequence length, never dedup soundness.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from the Fx hash family (a 64-bit odd constant close to
/// 2^64 / phi, chosen to spread consecutive integers).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-word-at-a-time multiply-rotate hasher.
#[derive(Debug, Default, Clone)]
pub(crate) struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn word(&mut self, w: u64) {
        self.0 = (self.0.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold the length in so "ab" and "ab\0" stay distinct.
            self.word(u64::from_le_bytes(tail) ^ (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.word(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.word(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

pub(crate) type FxBuild = BuildHasherDefault<FxHasher>;
pub(crate) type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuild>;
pub(crate) type FxHashSet<T> = std::collections::HashSet<T, FxBuild>;

/// A thread's local-variable table, keyed by the static names baked
/// into kernel programs.
pub(crate) type Locals = FxHashMap<&'static str, i64>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash<T: std::hash::Hash>(v: T) -> u64 {
        FxBuild::default().hash_one(v)
    }

    #[test]
    fn distinguishes_strings_and_prefixes() {
        assert_ne!(hash("retries"), hash("observed"));
        assert_ne!(hash("ab"), hash("ab\0"));
        assert_ne!(hash(""), hash("\0"));
    }

    #[test]
    fn works_as_a_map_hasher() {
        let mut m: FxHashMap<&'static str, i64> = FxHashMap::default();
        m.insert("x", 1);
        m.insert("y", 2);
        m.insert("x", 3);
        assert_eq!(m.get("x"), Some(&3));
        assert_eq!(m.len(), 2);

        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
    }
}
