//! Operation footprints and the (in)dependence relation used by the
//! explorer's sleep-set partial-order reduction.
//!
//! Two visible operations are *independent* when they commute: executing
//! them in either order from any state yields the same state. We compute
//! a conservative over-approximation of dependence from the objects an
//! operation may touch: ops are dependent iff their footprints share an
//! object and at least one of the two touches it in write mode. All
//! synchronization operations are treated as writes on their object;
//! I/O operations share a single journal object (their order is
//! observable). Conservatism is sound: extra dependence only reduces
//! pruning, never correctness.

use crate::stmt::Stmt;

/// Kinds of objects a footprint can mention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ObjKind {
    Var,
    Mutex,
    Cond,
    Rw,
    Sem,
    Thread,
    /// The global I/O journal (all I/O is mutually ordered).
    Io,
}

/// One footprint entry: object + access mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Access {
    pub kind: ObjKind,
    pub index: u32,
    pub write: bool,
}

/// The set of objects a visible operation may touch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Footprint {
    accesses: Vec<Access>,
}

impl Footprint {
    fn push(&mut self, kind: ObjKind, index: usize, write: bool) {
        self.accesses.push(Access {
            kind,
            index: index as u32,
            write,
        });
    }

    /// Footprint of a visible statement. `in_tx` marks transactional
    /// context (buffered writes still conservatively count as writes).
    pub fn of_stmt(stmt: &Stmt, tx_touched: &[crate::ids::VarId]) -> Footprint {
        let mut fp = Footprint::default();
        match stmt {
            Stmt::Read { var, .. } => fp.push(ObjKind::Var, var.index(), false),
            Stmt::Write { var, .. } => fp.push(ObjKind::Var, var.index(), true),
            Stmt::Rmw { var, .. } | Stmt::Cas { var, .. } => {
                fp.push(ObjKind::Var, var.index(), true)
            }
            Stmt::Lock(m) | Stmt::Unlock(m) => fp.push(ObjKind::Mutex, m.index(), true),
            Stmt::TryLock { mutex, .. } => fp.push(ObjKind::Mutex, mutex.index(), true),
            Stmt::RwRead(rw) => fp.push(ObjKind::Rw, rw.index(), false),
            Stmt::RwWrite(rw) | Stmt::RwUnlock(rw) => fp.push(ObjKind::Rw, rw.index(), true),
            Stmt::Wait { cond, mutex } => {
                fp.push(ObjKind::Cond, cond.index(), true);
                fp.push(ObjKind::Mutex, mutex.index(), true);
            }
            Stmt::Signal(c) | Stmt::Broadcast(c) => fp.push(ObjKind::Cond, c.index(), true),
            Stmt::SemAcquire(s) | Stmt::SemRelease(s) => fp.push(ObjKind::Sem, s.index(), true),
            Stmt::Spawn(t) | Stmt::Join(t) => fp.push(ObjKind::Thread, t.index(), true),
            Stmt::Io { .. } => fp.push(ObjKind::Io, 0, true),
            Stmt::TxBegin | Stmt::TxRetry | Stmt::Yield | Stmt::Assert { .. } => {}
            Stmt::TxCommit => {
                // Commit validates the read set and publishes the write
                // set; conservatively a write on every touched variable.
                for var in tx_touched {
                    fp.push(ObjKind::Var, var.index(), true);
                }
            }
            Stmt::LocalSet { .. } | Stmt::If { .. } | Stmt::While { .. } => {
                unreachable!("local statements are never visible ops")
            }
        }
        fp
    }

    /// Footprint of a condvar-wakeup mutex re-acquisition.
    pub fn of_reacquire(mutex: crate::ids::MutexId) -> Footprint {
        let mut fp = Footprint::default();
        fp.push(ObjKind::Mutex, mutex.index(), true);
        fp
    }

    /// Footprint of an *attempted* (blocked) operation, derived from what
    /// a deadlocked thread is waiting on. The witness conflict accounting
    /// needs these: a deadlock's essence is acquisitions that never
    /// execute as steps.
    pub fn of_blocked(on: &crate::outcome::BlockedOn) -> Footprint {
        use crate::outcome::BlockedOn;
        let mut fp = Footprint::default();
        match on {
            BlockedOn::Mutex(m) | BlockedOn::CondReacquire(m) => {
                fp.push(ObjKind::Mutex, m.index(), true)
            }
            BlockedOn::Cond(c) => fp.push(ObjKind::Cond, c.index(), true),
            BlockedOn::RwRead(rw) => fp.push(ObjKind::Rw, rw.index(), false),
            BlockedOn::RwWrite(rw) => fp.push(ObjKind::Rw, rw.index(), true),
            BlockedOn::Semaphore(s) => fp.push(ObjKind::Sem, s.index(), true),
            BlockedOn::Join(t) => fp.push(ObjKind::Thread, t.index(), true),
        }
        fp
    }

    /// The individual accesses in this footprint.
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// `true` when the two footprints commute (no shared object with a
    /// write on either side).
    pub fn independent(&self, other: &Footprint) -> bool {
        for a in &self.accesses {
            for b in &other.accesses {
                if a.kind == b.kind && a.index == b.index && (a.write || b.write) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{MutexId, VarId};
    use crate::stmt::Stmt;

    fn fp(s: &Stmt) -> Footprint {
        Footprint::of_stmt(s, &[])
    }

    #[test]
    fn reads_commute_writes_do_not() {
        let v = VarId::from_index(0);
        let r = fp(&Stmt::read(v, "x"));
        let w = fp(&Stmt::write(v, 1));
        assert!(r.independent(&r));
        assert!(!r.independent(&w));
        assert!(!w.independent(&w));
    }

    #[test]
    fn disjoint_vars_commute() {
        let a = fp(&Stmt::write(VarId::from_index(0), 1));
        let b = fp(&Stmt::write(VarId::from_index(1), 1));
        assert!(a.independent(&b));
    }

    #[test]
    fn lock_ops_on_same_mutex_conflict() {
        let m = MutexId::from_index(0);
        let l = fp(&Stmt::lock(m));
        let u = fp(&Stmt::unlock(m));
        assert!(!l.independent(&u));
        let other = fp(&Stmt::lock(MutexId::from_index(1)));
        assert!(l.independent(&other));
    }

    #[test]
    fn io_is_globally_ordered() {
        let a = fp(&Stmt::io("a"));
        let b = fp(&Stmt::io("b"));
        assert!(!a.independent(&b));
    }

    #[test]
    fn yields_and_asserts_commute_with_everything() {
        let y = fp(&Stmt::Yield);
        let w = fp(&Stmt::write(VarId::from_index(0), 1));
        assert!(y.independent(&w));
        assert!(y.independent(&y));
    }

    #[test]
    fn commit_footprint_covers_touched_vars() {
        let touched = [VarId::from_index(0), VarId::from_index(2)];
        let commit = Footprint::of_stmt(&Stmt::TxCommit, &touched);
        let w0 = fp(&Stmt::write(VarId::from_index(0), 1));
        let w1 = fp(&Stmt::write(VarId::from_index(1), 1));
        assert!(!commit.independent(&w0));
        assert!(commit.independent(&w1));
    }
}
