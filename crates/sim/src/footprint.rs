//! Operation footprints and the (in)dependence relation used by the
//! explorer's sleep-set partial-order reduction.
//!
//! Two visible operations are *independent* when they commute: executing
//! them in either order from any state yields the same state. We compute
//! a conservative over-approximation of dependence from the objects an
//! operation may touch: ops are dependent iff their footprints share an
//! object and at least one of the two touches it in write mode. All
//! synchronization operations are treated as writes on their object;
//! I/O operations share a single journal object (their order is
//! observable). Conservatism is sound: extra dependence only reduces
//! pruning, never correctness.

use crate::stmt::Stmt;

/// Kinds of objects a footprint can mention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ObjKind {
    Var,
    Mutex,
    Cond,
    Rw,
    Sem,
    Thread,
    /// The global I/O journal (all I/O is mutually ordered).
    Io,
}

/// Blocking discipline of one access, for DPOR's co-enabledness
/// refinement. A release and a blocking acquire of the same object are
/// dependent but can never be *co-enabled* — the acquire is blocked
/// exactly while the release is runnable — so their ordering is forced
/// by the semantics and must not be treated as a reversible race (nor
/// allowed to hide the acquire↔acquire race behind it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Role {
    /// Never blocks (plain accesses, try-lock, signal): races normally.
    Plain,
    /// May block until the object is released (lock, rwlock, sem-acquire,
    /// a condvar wakeup's mutex re-acquisition).
    Acquire,
    /// Unblocks pending acquirers (unlock, rw-unlock, sem-release, the
    /// mutex half of a condvar wait).
    Release,
}

/// One footprint entry: object + access mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Access {
    pub kind: ObjKind,
    pub index: u32,
    pub write: bool,
    pub role: Role,
}

/// The set of objects a visible operation may touch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Footprint {
    accesses: Vec<Access>,
    /// `true` when the op can produce an outcome-relevant effect even
    /// though it touches no object: a failing assert aborts the run, a
    /// transactional boundary changes commit/retry behaviour. Such ops
    /// still commute with everything for the dependence relation, but
    /// the step-fusion optimization must not execute them eagerly.
    effect: bool,
}

impl Footprint {
    fn push(&mut self, kind: ObjKind, index: usize, write: bool) {
        self.push_role(kind, index, write, Role::Plain);
    }

    fn push_role(&mut self, kind: ObjKind, index: usize, write: bool, role: Role) {
        self.accesses.push(Access {
            kind,
            index: index as u32,
            write,
            role,
        });
    }

    /// Footprint of a visible statement. `in_tx` marks transactional
    /// context (buffered writes still conservatively count as writes).
    pub fn of_stmt(stmt: &Stmt, tx_touched: &[crate::ids::VarId]) -> Footprint {
        let mut fp = Footprint::default();
        match stmt {
            Stmt::Read { var, .. } => fp.push(ObjKind::Var, var.index(), false),
            Stmt::Write { var, .. } => fp.push(ObjKind::Var, var.index(), true),
            Stmt::Rmw { var, .. } | Stmt::Cas { var, .. } => {
                fp.push(ObjKind::Var, var.index(), true)
            }
            Stmt::Lock(m) => fp.push_role(ObjKind::Mutex, m.index(), true, Role::Acquire),
            Stmt::Unlock(m) => fp.push_role(ObjKind::Mutex, m.index(), true, Role::Release),
            // Try-lock never blocks: whether it sees the mutex held is an
            // observable outcome, so it races with lock/unlock normally.
            Stmt::TryLock { mutex, .. } => fp.push(ObjKind::Mutex, mutex.index(), true),
            Stmt::RwRead(rw) => fp.push_role(ObjKind::Rw, rw.index(), false, Role::Acquire),
            Stmt::RwWrite(rw) => fp.push_role(ObjKind::Rw, rw.index(), true, Role::Acquire),
            Stmt::RwUnlock(rw) => fp.push_role(ObjKind::Rw, rw.index(), true, Role::Release),
            Stmt::Wait { cond, mutex } => {
                // The wait statement itself never blocks (it atomically
                // releases the mutex and parks), so the cond access races
                // with signals normally — signal-before-wait is the lost
                // wakeup the ordering must be able to express.
                fp.push(ObjKind::Cond, cond.index(), true);
                fp.push_role(ObjKind::Mutex, mutex.index(), true, Role::Release);
            }
            Stmt::Signal(c) | Stmt::Broadcast(c) => fp.push(ObjKind::Cond, c.index(), true),
            Stmt::SemAcquire(s) => fp.push_role(ObjKind::Sem, s.index(), true, Role::Acquire),
            Stmt::SemRelease(s) => fp.push_role(ObjKind::Sem, s.index(), true, Role::Release),
            Stmt::Spawn(t) | Stmt::Join(t) => fp.push(ObjKind::Thread, t.index(), true),
            Stmt::Io { .. } => fp.push(ObjKind::Io, 0, true),
            // A yield touches nothing and decides nothing: globally
            // invisible (the one statement fusion can always swallow).
            Stmt::Yield => {}
            // Object-free but outcome-relevant: transactional boundaries
            // steer commit/retry control flow, and an assert may abort.
            // (`Executor::next_footprint` clears the flag for an assert
            // whose condition currently evaluates true — a verdict that
            // depends only on the owner's locals and so cannot change
            // under other threads' steps.)
            Stmt::TxBegin | Stmt::TxRetry | Stmt::Assert { .. } => fp.effect = true,
            Stmt::TxCommit => {
                // Commit validates the read set and publishes the write
                // set; conservatively a write on every touched variable.
                for var in tx_touched {
                    fp.push(ObjKind::Var, var.index(), true);
                }
            }
            Stmt::LocalSet { .. } | Stmt::If { .. } | Stmt::While { .. } => {
                unreachable!("local statements are never visible ops")
            }
        }
        fp
    }

    /// Footprint of a condvar-wakeup mutex re-acquisition.
    pub fn of_reacquire(mutex: crate::ids::MutexId) -> Footprint {
        let mut fp = Footprint::default();
        fp.push_role(ObjKind::Mutex, mutex.index(), true, Role::Acquire);
        fp
    }

    /// Footprint of an *attempted* (blocked) operation, derived from what
    /// a deadlocked thread is waiting on. The witness conflict accounting
    /// needs these: a deadlock's essence is acquisitions that never
    /// execute as steps.
    pub fn of_blocked(on: &crate::outcome::BlockedOn) -> Footprint {
        use crate::outcome::BlockedOn;
        let mut fp = Footprint::default();
        match on {
            BlockedOn::Mutex(m) | BlockedOn::CondReacquire(m) => {
                fp.push_role(ObjKind::Mutex, m.index(), true, Role::Acquire)
            }
            BlockedOn::Cond(c) => fp.push_role(ObjKind::Cond, c.index(), true, Role::Acquire),
            BlockedOn::RwRead(rw) => fp.push_role(ObjKind::Rw, rw.index(), false, Role::Acquire),
            BlockedOn::RwWrite(rw) => fp.push_role(ObjKind::Rw, rw.index(), true, Role::Acquire),
            BlockedOn::Semaphore(s) => fp.push_role(ObjKind::Sem, s.index(), true, Role::Acquire),
            BlockedOn::Join(t) => fp.push_role(ObjKind::Thread, t.index(), true, Role::Acquire),
        }
        fp
    }

    /// The individual accesses in this footprint.
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// `true` when the op is *invisible*: it touches no shared variable
    /// and no sync object, and cannot produce an outcome-relevant
    /// effect. An invisible op is a global both-mover — it commutes
    /// with every other thread's ops — so the explorer may execute it
    /// immediately after the step that exposed it without creating a
    /// branch point (step fusion), and the race scan may log it with
    /// this (empty) footprint without adding edges.
    pub fn is_invisible(&self) -> bool {
        self.accesses.is_empty() && !self.effect
    }

    /// Clears the outcome-relevance flag. Used by the executor when a
    /// dynamic check proves the op cannot abort (an assert whose
    /// condition — a function of the owner's locals only — currently
    /// holds), making it invisible after all.
    pub fn without_effect(mut self) -> Footprint {
        self.effect = false;
        self
    }

    /// `true` when the two footprints commute (no shared object with a
    /// write on either side).
    pub fn independent(&self, other: &Footprint) -> bool {
        for a in &self.accesses {
            for b in &other.accesses {
                if a.kind == b.kind && a.index == b.index && (a.write || b.write) {
                    return false;
                }
            }
        }
        true
    }

    /// `true` when `self` (the earlier step) hands an object off to
    /// `other`: `self` releases something `other` may block acquiring.
    /// Such a pair is dependent but never co-enabled — while the release
    /// is runnable the acquire is blocked — so its order is forced by
    /// the semantics: it contributes happens-before but is never a
    /// reversible race, and it must not hide the acquire↔acquire race
    /// sitting behind it (DPOR keeps scanning past it with an unmasked
    /// clock).
    pub fn hands_off_to(&self, other: &Footprint) -> bool {
        self.accesses.iter().any(|a| {
            a.role == Role::Release
                && other
                    .accesses
                    .iter()
                    .any(|b| b.role == Role::Acquire && b.kind == a.kind && b.index == a.index)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{CondId, MutexId, RwId, SemId, VarId};
    use crate::stmt::Stmt;

    fn fp(s: &Stmt) -> Footprint {
        Footprint::of_stmt(s, &[])
    }

    #[test]
    fn reads_commute_writes_do_not() {
        let v = VarId::from_index(0);
        let r = fp(&Stmt::read(v, "x"));
        let w = fp(&Stmt::write(v, 1));
        assert!(r.independent(&r));
        assert!(!r.independent(&w));
        assert!(!w.independent(&w));
    }

    #[test]
    fn disjoint_vars_commute() {
        let a = fp(&Stmt::write(VarId::from_index(0), 1));
        let b = fp(&Stmt::write(VarId::from_index(1), 1));
        assert!(a.independent(&b));
    }

    #[test]
    fn lock_ops_on_same_mutex_conflict() {
        let m = MutexId::from_index(0);
        let l = fp(&Stmt::lock(m));
        let u = fp(&Stmt::unlock(m));
        assert!(!l.independent(&u));
        let other = fp(&Stmt::lock(MutexId::from_index(1)));
        assert!(l.independent(&other));
    }

    #[test]
    fn io_is_globally_ordered() {
        let a = fp(&Stmt::io("a"));
        let b = fp(&Stmt::io("b"));
        assert!(!a.independent(&b));
    }

    #[test]
    fn yields_and_asserts_commute_with_everything() {
        let y = fp(&Stmt::Yield);
        let w = fp(&Stmt::write(VarId::from_index(0), 1));
        assert!(y.independent(&w));
        assert!(y.independent(&y));
    }

    #[test]
    fn only_yields_and_defused_asserts_are_invisible() {
        use crate::Expr;
        assert!(fp(&Stmt::Yield).is_invisible());
        // Every object-touching op is visible.
        for s in catalog() {
            if !matches!(s, Stmt::Yield) {
                assert!(!fp(&s).is_invisible(), "{s:?} must be visible");
            }
        }
        // Outcome-relevant object-free ops stay visible until a dynamic
        // check clears the effect flag.
        let assert_stmt = Stmt::assert(Expr::lit(1).eq(Expr::lit(1)), "holds");
        assert!(!fp(&assert_stmt).is_invisible());
        assert!(fp(&assert_stmt).without_effect().is_invisible());
        assert!(!fp(&Stmt::TxBegin).is_invisible());
        assert!(!fp(&Stmt::TxRetry).is_invisible());
        // Clearing the effect flag never hides real accesses.
        let w = fp(&Stmt::write(VarId::from_index(0), 1));
        assert!(!w.without_effect().is_invisible());
    }

    #[test]
    fn commit_footprint_covers_touched_vars() {
        let touched = [VarId::from_index(0), VarId::from_index(2)];
        let commit = Footprint::of_stmt(&Stmt::TxCommit, &touched);
        let w0 = fp(&Stmt::write(VarId::from_index(0), 1));
        let w1 = fp(&Stmt::write(VarId::from_index(1), 1));
        assert!(!commit.independent(&w0));
        assert!(commit.independent(&w1));
    }

    /// Every visible statement kind, over a shared pool of objects.
    fn catalog() -> Vec<Stmt> {
        let m = MutexId::from_index(0);
        let c = CondId::from_index(0);
        let rw = RwId::from_index(0);
        let s = SemId::from_index(0);
        let t = crate::ids::ThreadId::from_index(1);
        vec![
            Stmt::read(VarId::from_index(0), "x"),
            Stmt::write(VarId::from_index(0), 1),
            Stmt::write(VarId::from_index(1), 2),
            Stmt::Lock(m),
            Stmt::Unlock(m),
            Stmt::TryLock {
                mutex: m,
                into: "ok",
            },
            Stmt::RwRead(rw),
            Stmt::RwWrite(rw),
            Stmt::RwUnlock(rw),
            Stmt::Wait { cond: c, mutex: m },
            Stmt::Signal(c),
            Stmt::Broadcast(c),
            Stmt::SemAcquire(s),
            Stmt::SemRelease(s),
            Stmt::Spawn(t),
            Stmt::Join(t),
            Stmt::io("log"),
            Stmt::Yield,
        ]
    }

    #[test]
    fn dependence_is_symmetric_across_the_stmt_catalog() {
        // DPOR's race scan only ever asks one direction of the relation;
        // soundness needs the answer to be the same from either side.
        for a in catalog() {
            for b in catalog() {
                assert_eq!(
                    fp(&a).independent(&fp(&b)),
                    fp(&b).independent(&fp(&a)),
                    "independence must be symmetric for ({a:?}, {b:?})"
                );
            }
        }
    }

    #[test]
    fn hand_off_pairs_are_directional_and_blocking_only() {
        let m = MutexId::from_index(0);
        let lock = fp(&Stmt::Lock(m));
        let unlock = fp(&Stmt::Unlock(m));
        let try_lock = fp(&Stmt::TryLock {
            mutex: m,
            into: "ok",
        });
        assert!(unlock.hands_off_to(&lock));
        assert!(!lock.hands_off_to(&unlock), "acquire side never releases");
        assert!(
            !unlock.hands_off_to(&try_lock),
            "try-lock never blocks: held-vs-free is observable, a normal race"
        );
        let s = SemId::from_index(0);
        assert!(fp(&Stmt::SemRelease(s)).hands_off_to(&fp(&Stmt::SemAcquire(s))));
        let rw = RwId::from_index(0);
        assert!(fp(&Stmt::RwUnlock(rw)).hands_off_to(&fp(&Stmt::RwRead(rw))));
        assert!(fp(&Stmt::RwUnlock(rw)).hands_off_to(&fp(&Stmt::RwWrite(rw))));
        // A wait's mutex-release half hands off to a competing lock (and
        // to a wakeup's re-acquisition), but never to a signal: signals
        // don't block, so signal↔wait stays a reversible race — that is
        // the lost-wakeup ordering DPOR must keep exploring.
        let c = CondId::from_index(0);
        let wait = fp(&Stmt::Wait { cond: c, mutex: m });
        assert!(wait.hands_off_to(&lock));
        assert!(!wait.hands_off_to(&fp(&Stmt::Signal(c))));
        assert!(unlock.hands_off_to(&Footprint::of_reacquire(m)));
        assert!(!unlock.hands_off_to(&fp(&Stmt::Lock(MutexId::from_index(1)))));
    }

    #[test]
    fn independent_enabled_pairs_commute() {
        // Executor-level witness for the relation's contract: wherever two
        // enabled ops have independent footprints, stepping them in either
        // order reaches the same state. Walks the full state space of a
        // program mixing plain accesses with mutex traffic.
        use crate::{Executor, Expr, ProgramBuilder};

        let mut b = ProgramBuilder::new("commute");
        let x = b.var("x", 0);
        let y = b.var("y", 0);
        let m = b.mutex();
        b.thread(
            "a",
            vec![
                Stmt::Lock(m),
                Stmt::read(x, "t"),
                Stmt::write(x, Expr::local("t") + Expr::lit(1)),
                Stmt::Unlock(m),
            ],
        );
        b.thread(
            "b",
            vec![Stmt::write(y, 1), Stmt::read(y, "u"), Stmt::write(x, 5)],
        );
        b.thread(
            "c",
            vec![Stmt::read(y, "v"), Stmt::Lock(m), Stmt::Unlock(m)],
        );
        let program = b.build().expect("builds");

        let mut stack = vec![Executor::new(&program)];
        let mut seen = std::collections::BTreeSet::new();
        let mut pairs_checked = 0usize;
        while let Some(exec) = stack.pop() {
            if exec.outcome().is_some() || !seen.insert(exec.state_key()) {
                continue;
            }
            let enabled = exec.enabled();
            for (i, &p) in enabled.iter().enumerate() {
                for &q in &enabled[i + 1..] {
                    let (Some(fa), Some(fb)) = (exec.next_footprint(p), exec.next_footprint(q))
                    else {
                        continue;
                    };
                    if !fa.independent(&fb) {
                        continue;
                    }
                    let mut pq = exec.clone();
                    pq.step(p).expect("enabled");
                    pq.step(q)
                        .expect("independent step cannot disable its partner");
                    let mut qp = exec.clone();
                    qp.step(q).expect("enabled");
                    qp.step(p)
                        .expect("independent step cannot disable its partner");
                    assert_eq!(
                        pq.state_key(),
                        qp.state_key(),
                        "independent ops must commute"
                    );
                    pairs_checked += 1;
                }
            }
            for &t in &enabled {
                let mut child = exec.clone();
                child.step(t).expect("enabled");
                stack.push(child);
            }
        }
        assert!(
            pairs_checked > 50,
            "the walk must exercise independent pairs, saw {pairs_checked}"
        );
    }
}
