//! `PSeq`: a persistent append-only sequence with cheap clones.
//!
//! The executor's grow-only logs (the schedule taken, the recorded
//! event trace) used to be flat vectors, so every model-checker
//! snapshot copied the entire O(steps) history. Here the history lives
//! in chunked `Arc` storage: a clone copies only a small table of chunk
//! pointers, and a push mutates the last chunk in place while this
//! sequence is its sole owner — otherwise it opens a fresh chunk,
//! leaving the shared history untouched. Chunks frozen by a clone stay
//! immutable forever, so divergent futures of a branch point can never
//! observe each other's appends.

use std::sync::Arc;

/// Elements per chunk. Clones copy the chunk-pointer table (`len /
/// CHUNK` words), so the constant trades per-clone pointer count
/// against the capacity wasted when a shared chunk is abandoned early.
const CHUNK: usize = 64;

/// An append-only sequence whose clones share history through `Arc`d
/// chunks (copy-on-write at chunk granularity).
#[derive(Debug, Clone)]
pub(crate) struct PSeq<T> {
    chunks: Vec<Arc<Vec<T>>>,
    len: usize,
}

impl<T> Default for PSeq<T> {
    fn default() -> PSeq<T> {
        PSeq::new()
    }
}

impl<T> PSeq<T> {
    pub(crate) fn new() -> PSeq<T> {
        PSeq {
            chunks: Vec::new(),
            len: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// Heap bytes a clone of this sequence copies (the chunk-pointer
    /// table), as opposed to the `len * size_of::<T>()` a flat log
    /// would. Reported for the *canonical packed* layout (`len /
    /// CHUNK` rounded up) rather than the live table, so the figure is
    /// a deterministic function of length alone: the live table can
    /// run slightly longer when clones abandon partially-filled
    /// chunks, and that drift would otherwise leak layout history into
    /// the explorer's `snapshot_bytes_saved` accounting.
    pub(crate) fn clone_cost_bytes(&self) -> usize {
        self.len.div_ceil(CHUNK) * std::mem::size_of::<Arc<Vec<T>>>()
    }

    /// Appends an element: in place when the last chunk is uniquely
    /// owned and has room, otherwise into a fresh chunk. Never mutates
    /// a chunk any clone can still see.
    pub(crate) fn push(&mut self, value: T) {
        if let Some(last) = self.chunks.last_mut() {
            if let Some(chunk) = Arc::get_mut(last) {
                if chunk.len() < CHUNK {
                    chunk.push(value);
                    self.len += 1;
                    return;
                }
            }
        }
        let mut chunk = Vec::with_capacity(CHUNK);
        chunk.push(value);
        self.chunks.push(Arc::new(chunk));
        self.len += 1;
    }
}

impl<T: Clone> PSeq<T> {
    /// Materializes the whole sequence into a flat vector.
    pub(crate) fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        for chunk in &self.chunks {
            out.extend_from_slice(chunk);
        }
        out
    }

    /// Rebuilds the content into fresh, unshared chunks — every element
    /// is copied. Used by `Executor::deep_clone` to emulate the cost of
    /// a pre-COW flat-log snapshot.
    pub(crate) fn unshare(&mut self) {
        let flat = self.to_vec();
        self.chunks.clear();
        for window in flat.chunks(CHUNK) {
            let mut chunk = Vec::with_capacity(CHUNK);
            chunk.extend_from_slice(window);
            self.chunks.push(Arc::new(chunk));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_materialize_round_trip() {
        let mut s: PSeq<usize> = PSeq::new();
        assert!(s.is_empty());
        for i in 0..200 {
            s.push(i);
        }
        assert_eq!(s.len(), 200);
        assert_eq!(s.to_vec(), (0..200).collect::<Vec<_>>());
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), s.to_vec());
    }

    #[test]
    fn clones_never_observe_each_others_appends() {
        let mut a: PSeq<u32> = PSeq::new();
        for i in 0..70 {
            a.push(i);
        }
        let mut b = a.clone();
        a.push(1000);
        b.push(2000);
        b.push(2001);
        let va = a.to_vec();
        let vb = b.to_vec();
        assert_eq!(va.len(), 71);
        assert_eq!(vb.len(), 72);
        assert_eq!(va[..70], vb[..70]);
        assert_eq!(va[70], 1000);
        assert_eq!(vb[70..], [2000, 2001]);
    }

    #[test]
    fn clone_shares_chunks_until_written() {
        let mut a: PSeq<u8> = PSeq::new();
        for _ in 0..CHUNK {
            a.push(7);
        }
        let b = a.clone();
        // The full chunk is shared, so pushing must open a new chunk
        // rather than touch it.
        a.push(9);
        assert_eq!(b.len(), CHUNK);
        assert_eq!(a.len(), CHUNK + 1);
        assert!(b.to_vec().iter().all(|&x| x == 7));
    }

    #[test]
    fn unshare_preserves_content() {
        let mut a: PSeq<u16> = PSeq::new();
        for i in 0..150 {
            a.push(i);
        }
        let before = a.to_vec();
        let mut b = a.clone();
        b.unshare();
        b.push(999);
        assert_eq!(a.to_vec(), before);
        assert_eq!(b.to_vec()[..150], before[..]);
        assert!(b.clone_cost_bytes() >= a.clone_cost_bytes());
    }

    #[test]
    fn clone_cost_tracks_chunk_table_not_length() {
        let mut s: PSeq<u64> = PSeq::new();
        for _ in 0..(CHUNK * 4) {
            s.push(0);
        }
        // 4 chunks -> 4 pointers, regardless of the 256 elements.
        assert_eq!(
            s.clone_cost_bytes(),
            4 * std::mem::size_of::<Arc<Vec<u64>>>()
        );
    }
}
