//! Pure expressions over thread-local registers.
//!
//! Expressions never touch shared memory when evaluated inside a thread
//! body — shared reads are explicit [`crate::Stmt::Read`] statements so
//! that every memory access is a distinct scheduling point, exactly like a
//! load instruction in the original study's native programs. The single
//! exception is [`Expr::Shared`], which is only legal inside *final
//! assertions* (evaluated after all threads have terminated, where no race
//! is possible); [`crate::ProgramBuilder::build`] rejects thread bodies
//! containing it.

use std::fmt;
use std::ops;

use crate::ids::VarId;

/// A side-effect-free integer expression.
///
/// Values are `i64`. Booleans are encoded as `0` / `1` (any non-zero value
/// is truthy), matching the C programs the studied bugs came from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A literal constant.
    Lit(i64),
    /// The value of a thread-local register. Reading a register that was
    /// never written evaluates to `0`, like C static storage.
    Local(&'static str),
    /// The value of a shared variable. **Only legal in final assertions.**
    Shared(VarId),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Logical/arithmetic negation.
    Un(UnOp, Box<Expr>),
}

/// Binary operators available in [`Expr::Bin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Truncating division; division by zero evaluates to `0` (the studied
    /// kernels never rely on it, and a deterministic total semantics keeps
    /// exploration simple).
    Div,
    /// Remainder; remainder by zero evaluates to `0`.
    Rem,
    /// Equality, producing `0`/`1`.
    Eq,
    /// Inequality, producing `0`/`1`.
    Ne,
    /// Less-than, producing `0`/`1`.
    Lt,
    /// Less-or-equal, producing `0`/`1`.
    Le,
    /// Greater-than, producing `0`/`1`.
    Gt,
    /// Greater-or-equal, producing `0`/`1`.
    Ge,
    /// Logical AND over truthiness, producing `0`/`1`.
    And,
    /// Logical OR over truthiness, producing `0`/`1`.
    Or,
    /// Minimum of the operands.
    Min,
    /// Maximum of the operands.
    Max,
}

/// Unary operators available in [`Expr::Un`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT over truthiness, producing `0`/`1`.
    Not,
}

impl Expr {
    /// A literal constant.
    pub fn lit(value: i64) -> Expr {
        Expr::Lit(value)
    }

    /// The value of a thread-local register.
    pub fn local(name: &'static str) -> Expr {
        Expr::Local(name)
    }

    /// The value of a shared variable (final assertions only).
    pub fn shared(var: VarId) -> Expr {
        Expr::Shared(var)
    }

    fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// `self == rhs`, producing `0`/`1`.
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Eq, self, rhs)
    }

    /// `self != rhs`, producing `0`/`1`.
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Ne, self, rhs)
    }

    /// `self < rhs`, producing `0`/`1`.
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Lt, self, rhs)
    }

    /// `self <= rhs`, producing `0`/`1`.
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Le, self, rhs)
    }

    /// `self > rhs`, producing `0`/`1`.
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Gt, self, rhs)
    }

    /// `self >= rhs`, producing `0`/`1`.
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Ge, self, rhs)
    }

    /// Logical AND over truthiness.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::And, self, rhs)
    }

    /// Logical OR over truthiness.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Or, self, rhs)
    }

    /// Logical NOT over truthiness.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Un(UnOp::Not, Box::new(self))
    }

    /// Minimum of `self` and `rhs`.
    pub fn min(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Min, self, rhs)
    }

    /// Maximum of `self` and `rhs`.
    pub fn max(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Max, self, rhs)
    }

    /// Returns `true` if the expression mentions a shared variable.
    pub(crate) fn mentions_shared(&self) -> bool {
        match self {
            Expr::Lit(_) | Expr::Local(_) => false,
            Expr::Shared(_) => true,
            Expr::Bin(_, l, r) => l.mentions_shared() || r.mentions_shared(),
            Expr::Un(_, e) => e.mentions_shared(),
        }
    }

    /// Evaluates the expression.
    ///
    /// `locals` resolves register names, `shared` resolves shared
    /// variables (the executor passes a panicking resolver for thread-body
    /// evaluation, which is unreachable given builder validation).
    pub(crate) fn eval(
        &self,
        locals: &dyn Fn(&'static str) -> i64,
        shared: &dyn Fn(VarId) -> i64,
    ) -> i64 {
        match self {
            Expr::Lit(v) => *v,
            Expr::Local(name) => locals(name),
            Expr::Shared(var) => shared(*var),
            Expr::Un(op, e) => {
                let v = e.eval(locals, shared);
                match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => i64::from(v == 0),
                }
            }
            Expr::Bin(op, l, r) => {
                let a = l.eval(locals, shared);
                let b = r.eval(locals, shared);
                match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    BinOp::Rem => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_rem(b)
                        }
                    }
                    BinOp::Eq => i64::from(a == b),
                    BinOp::Ne => i64::from(a != b),
                    BinOp::Lt => i64::from(a < b),
                    BinOp::Le => i64::from(a <= b),
                    BinOp::Gt => i64::from(a > b),
                    BinOp::Ge => i64::from(a >= b),
                    BinOp::And => i64::from(a != 0 && b != 0),
                    BinOp::Or => i64::from(a != 0 || b != 0),
                    BinOp::Min => a.min(b),
                    BinOp::Max => a.max(b),
                }
            }
        }
    }
}

impl From<i64> for Expr {
    fn from(value: i64) -> Expr {
        Expr::Lit(value)
    }
}

impl ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, rhs)
    }
}

impl ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, rhs)
    }
}

impl ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, rhs)
    }
}

impl ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Div, self, rhs)
    }
}

impl ops::Rem for Expr {
    type Output = Expr;
    fn rem(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Rem, self, rhs)
    }
}

impl ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Un(UnOp::Neg, Box::new(self))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Local(name) => write!(f, "{name}"),
            Expr::Shared(var) => write!(f, "{var}"),
            Expr::Un(UnOp::Neg, e) => write!(f, "-({e})"),
            Expr::Un(UnOp::Not, e) => write!(f, "!({e})"),
            Expr::Bin(op, l, r) => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Rem => "%",
                    BinOp::Eq => "==",
                    BinOp::Ne => "!=",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::And => "&&",
                    BinOp::Or => "||",
                    BinOp::Min => "min",
                    BinOp::Max => "max",
                };
                write!(f, "({l} {sym} {r})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(e: &Expr) -> i64 {
        e.eval(&|_| 7, &|_| 100)
    }

    #[test]
    fn literals_and_locals() {
        assert_eq!(eval(&Expr::lit(5)), 5);
        assert_eq!(eval(&Expr::local("x")), 7);
        assert_eq!(eval(&Expr::shared(VarId(0))), 100);
    }

    #[test]
    fn arithmetic_wraps() {
        let e = Expr::lit(i64::MAX) + Expr::lit(1);
        assert_eq!(eval(&e), i64::MIN);
    }

    #[test]
    fn division_by_zero_is_total() {
        assert_eq!(eval(&(Expr::lit(3) / Expr::lit(0))), 0);
        assert_eq!(eval(&(Expr::lit(3) % Expr::lit(0))), 0);
    }

    #[test]
    fn comparisons_produce_bool_ints() {
        assert_eq!(eval(&Expr::lit(1).lt(Expr::lit(2))), 1);
        assert_eq!(eval(&Expr::lit(2).lt(Expr::lit(2))), 0);
        assert_eq!(eval(&Expr::lit(2).le(Expr::lit(2))), 1);
        assert_eq!(eval(&Expr::lit(2).ge(Expr::lit(3))), 0);
        assert_eq!(eval(&Expr::lit(4).gt(Expr::lit(3))), 1);
        assert_eq!(eval(&Expr::lit(4).ne(Expr::lit(3))), 1);
    }

    #[test]
    fn logic_is_truthiness_based() {
        assert_eq!(eval(&Expr::lit(5).and(Expr::lit(-3))), 1);
        assert_eq!(eval(&Expr::lit(5).and(Expr::lit(0))), 0);
        assert_eq!(eval(&Expr::lit(0).or(Expr::lit(0))), 0);
        assert_eq!(eval(&Expr::lit(0).or(Expr::lit(9))), 1);
        assert_eq!(eval(&Expr::lit(0).not()), 1);
        assert_eq!(eval(&Expr::lit(2).not()), 0);
    }

    #[test]
    fn min_max() {
        assert_eq!(eval(&Expr::lit(3).min(Expr::lit(-1))), -1);
        assert_eq!(eval(&Expr::lit(3).max(Expr::lit(-1))), 3);
    }

    #[test]
    fn mentions_shared_walks_the_tree() {
        assert!(!Expr::local("x").mentions_shared());
        assert!(Expr::shared(VarId(1)).mentions_shared());
        assert!((Expr::lit(1) + Expr::shared(VarId(0))).mentions_shared());
        assert!(Expr::shared(VarId(0)).not().mentions_shared());
    }

    #[test]
    fn display_is_readable() {
        let e = (Expr::local("a") + Expr::lit(1)).eq(Expr::lit(2));
        assert_eq!(e.to_string(), "((a + 1) == 2)");
    }

    #[test]
    fn from_i64_builds_literal() {
        let e: Expr = 9i64.into();
        assert_eq!(e, Expr::Lit(9));
    }
}
