//! # lfm-sim — deterministic interleaving simulator and model checker
//!
//! This crate is the execution substrate for the *Learning from Mistakes*
//! (ASPLOS 2008) concurrency-bug study reproduction. The original study
//! characterized bugs in native C/C++ applications whose manifestation
//! depends on thread interleavings on real hardware. Rust's ownership model
//! statically rules out writing most of those bugs directly, so instead of
//! native threads this crate models concurrent programs in a small
//! imperative script IR and executes them under a *deterministic,
//! fully-controllable scheduler*:
//!
//! - [`Program`] — a set of threads (scripts over shared variables,
//!   mutexes, rwlocks, condition variables and semaphores) plus final
//!   invariants, built with [`ProgramBuilder`].
//! - [`Executor`] — an interpreter that advances one *visible operation*
//!   (shared-memory access or synchronization) at a time, under an
//!   externally supplied schedule.
//! - [`Explorer`] — a DFS model checker that enumerates interleavings
//!   (optionally context-bounded, à la CHESS) and classifies every
//!   terminal outcome.
//! - [`ParExplorer`] — the same search sharded across N OS worker
//!   threads (work-stealing frontier, lock-striped seen-state set)
//!   with a deterministic merge: reports are bit-identical to
//!   [`Explorer`]'s for the same program and budget.
//! - [`RandomWalker`] / [`random::PctScheduler`] — seeded stress
//!   schedulers for probabilistic manifestation experiments.
//! - [`Trace`] — a vector-clock annotated event log consumed by the
//!   `lfm-detect` dynamic detectors.
//! - [`Witness`] / [`minimize()`] — portable `lfm-trace/v1` bug witnesses
//!   (schedule + event log + program fingerprint) with save/load,
//!   deterministic replay verification, Chrome trace export, and ddmin
//!   schedule minimization.
//! - Transactional statements ([`Stmt::TxBegin`] / [`Stmt::TxCommit`])
//!   giving word-based STM semantics inside the simulator, used by the
//!   `lfm-stm` transactional-memory applicability experiments.
//!
//! # Example
//!
//! A classic single-variable atomicity violation (two racing
//! read-modify-write increments) explored exhaustively:
//!
//! ```rust
//! use lfm_sim::{ProgramBuilder, Stmt, Expr, Explorer};
//!
//! # fn main() -> Result<(), lfm_sim::BuildError> {
//! let mut b = ProgramBuilder::new("racy-increment");
//! let counter = b.var("counter", 0);
//! for name in ["t1", "t2"] {
//!     b.thread(name, vec![
//!         Stmt::read(counter, "tmp"),
//!         Stmt::write(counter, Expr::local("tmp") + Expr::lit(1)),
//!     ]);
//! }
//! b.final_assert(Expr::shared(counter).eq(Expr::lit(2)), "both increments kept");
//! let program = b.build()?;
//!
//! let report = Explorer::new(&program).run();
//! assert!(report.schedules_run >= 2);
//! assert!(report.counts.assert_failed > 0); // the lost-update interleaving exists
//! assert!(report.counts.ok > 0);            // and so does the serial one
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dpor;
mod error;
mod exec;
mod expr;
mod footprint;
mod frontier;
mod fxhash;
mod ids;
mod outcome;
mod program;
mod pvec;
mod schedule;
mod state;
mod statehash;
mod stmt;
mod txn;

pub mod budget;
pub mod coverage;
pub mod explore;
pub mod explore_par;
pub mod fault;
pub mod generate;
pub mod minimize;
pub mod pretty;
pub mod random;
pub mod timeline;
pub mod trace;
pub mod witness;

pub use budget::{Budget, BudgetReport, BudgetedExplorer, Confidence, DegradeLevel};
pub use coverage::{PairCoverage, PairKey};
pub use error::{BuildError, ExecError};
pub use exec::{Executor, RecordMode, ReplayDeviation, StepResult};
pub use explore::{
    ExploreLimits, ExploreReport, ExploreStats, Explorer, OutcomeCounts, Truncation,
};
pub use explore_par::{ParExplorer, ParStats, WorkerStats};
pub use expr::Expr;
pub use fault::{splitmix64, FaultKind, FaultPlan};
pub use generate::{generate, GenConfig};
pub use ids::{CondId, MutexId, RwId, SemId, ThreadId, VarId};
pub use minimize::{minimize, MinimizeReport};
pub use outcome::{BlockedOn, Outcome};
pub use pretty::pseudocode;
pub use program::{Program, ProgramBuilder, ThreadDef};
pub use random::{RandomWalkReport, RandomWalker};
pub use schedule::Schedule;
pub use stmt::{RmwOp, Stmt};
pub use timeline::render_timeline;
pub use trace::{Event, EventKind, Trace, VectorClock};
pub use witness::{
    emit_chrome_trace, fingerprint, Witness, WitnessError, WitnessEvent, WitnessStats,
    WITNESS_SCHEMA,
};
