//! Incrementally maintained state fingerprint for the explorer's dedup.
//!
//! [`Executor::state_key`](crate::Executor::state_key) used to rehash
//! the entire execution state (including a sort-and-allocate of every
//! thread's locals) on every dedup probe. Instead, the executor now
//! keeps one FNV-1a hash per *component* — each shared variable, each
//! sync object, each thread — and folds them into a single key with
//! XOR. XOR is order-independent and self-inverse, so when a step
//! mutates a component the key is repaired by xoring out the stale
//! component hash and xoring in the fresh one; a dedup probe then reads
//! a cached `u64`.
//!
//! Every component hash is seeded with a kind tag and the component's
//! index and finished with a `splitmix64`-style avalanche, so distinct
//! components land in independent positions of the fold and structured
//! patterns (two counters swapping values, say) do not cancel.
//!
//! This module owns the bookkeeping (slots, dirty list, fold); the
//! executor owns the *content* hashing, which must keep making exactly
//! the distinctions the old whole-state hash made (see
//! `Executor::state_key_recomputed`, which the property suite compares
//! against the incremental key after arbitrary step sequences).

/// Streaming 64-bit FNV-1a hasher with a strong finisher.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub(crate) fn new() -> Fnv {
        Fnv(Self::OFFSET)
    }

    pub(crate) fn byte(mut self, b: u8) -> Fnv {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
        self
    }

    pub(crate) fn bytes(mut self, bs: &[u8]) -> Fnv {
        for &b in bs {
            self = self.byte(b);
        }
        self
    }

    /// One multiply round per word instead of eight byte rounds: the
    /// incremental fingerprint rehashes a component on every executor
    /// step, so this is hot-path cost. The word is avalanched first so
    /// a single round still diffuses it across the accumulator.
    pub(crate) fn u64(mut self, v: u64) -> Fnv {
        self.0 = (self.0 ^ mix(v)).wrapping_mul(Self::PRIME);
        self
    }

    pub(crate) fn i64(self, v: i64) -> Fnv {
        self.u64(v as u64)
    }

    pub(crate) fn usize(self, v: usize) -> Fnv {
        self.u64(v as u64)
    }

    /// Finishes with an avalanche mix so component hashes are safe to
    /// combine by XOR.
    pub(crate) fn finish(self) -> u64 {
        mix(self.0)
    }
}

/// `splitmix64` finalizer.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// One hashed component of the execution state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Comp {
    Var(usize),
    Mutex(usize),
    Cond(usize),
    Rw(usize),
    Sem(usize),
    Thread(usize),
}

/// Cached per-component hashes plus their XOR fold, with a dirty list
/// of components mutated since the fold was last repaired.
///
/// All slots live in one flat allocation (kind-segmented by offset):
/// the explorer clones this structure once per snapshot, so the clone
/// must be a single memcpy, not six vector clones.
#[derive(Debug, Clone, Default)]
pub(crate) struct StateHash {
    slots: Box<[u64]>,
    /// Start of each kind's segment in `slots`, in [`Comp`] kind order
    /// (vars start at 0).
    offsets: [u32; 5],
    key: u64,
    dirty: Vec<Comp>,
}

impl StateHash {
    /// Zeroed slots for a state with the given component counts; the
    /// executor fills them via [`StateHash::replace`] right after.
    pub(crate) fn with_sizes(
        vars: usize,
        mutexes: usize,
        conds: usize,
        rws: usize,
        sems: usize,
        threads: usize,
    ) -> StateHash {
        let mutexes_at = vars;
        let conds_at = mutexes_at + mutexes;
        let rws_at = conds_at + conds;
        let sems_at = rws_at + rws;
        let threads_at = sems_at + sems;
        StateHash {
            slots: vec![0; threads_at + threads].into_boxed_slice(),
            offsets: [
                mutexes_at as u32,
                conds_at as u32,
                rws_at as u32,
                sems_at as u32,
                threads_at as u32,
            ],
            key: 0,
            dirty: Vec::new(),
        }
    }

    fn slot(&mut self, c: Comp) -> &mut u64 {
        let at = match c {
            Comp::Var(i) => i,
            Comp::Mutex(i) => self.offsets[0] as usize + i,
            Comp::Cond(i) => self.offsets[1] as usize + i,
            Comp::Rw(i) => self.offsets[2] as usize + i,
            Comp::Sem(i) => self.offsets[3] as usize + i,
            Comp::Thread(i) => self.offsets[4] as usize + i,
        };
        &mut self.slots[at]
    }

    /// Marks a component as mutated. Idempotent within one repair
    /// cycle; the list stays tiny (a step touches a handful of
    /// components at most).
    pub(crate) fn touch(&mut self, c: Comp) {
        if !self.dirty.contains(&c) {
            self.dirty.push(c);
        }
    }

    /// Pops one component awaiting a rehash.
    pub(crate) fn pop_dirty(&mut self) -> Option<Comp> {
        self.dirty.pop()
    }

    /// Installs a fresh hash for `c`, repairing the fold: the stale
    /// hash xors out, the fresh one xors in.
    pub(crate) fn replace(&mut self, c: Comp, fresh: u64) {
        let slot = self.slot(c);
        let stale = *slot;
        *slot = fresh;
        self.key ^= stale ^ fresh;
    }

    /// `true` when no component awaits a rehash (the fold is valid).
    pub(crate) fn is_clean(&self) -> bool {
        self.dirty.is_empty()
    }

    /// The XOR fold over all component hashes.
    pub(crate) fn key(&self) -> u64 {
        debug_assert!(self.is_clean(), "state key read with dirty components");
        self.key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replace_repairs_the_fold() {
        let mut h = StateHash::with_sizes(2, 1, 0, 0, 0, 1);
        h.replace(Comp::Var(0), 10);
        h.replace(Comp::Var(1), 20);
        h.replace(Comp::Mutex(0), 40);
        h.replace(Comp::Thread(0), 80);
        assert_eq!(h.key(), 10 ^ 20 ^ 40 ^ 80);
        // Updating one component swaps exactly its contribution.
        h.replace(Comp::Var(1), 21);
        assert_eq!(h.key(), 10 ^ 21 ^ 40 ^ 80);
    }

    #[test]
    fn touch_is_idempotent_per_cycle() {
        let mut h = StateHash::with_sizes(1, 0, 0, 0, 0, 1);
        h.touch(Comp::Var(0));
        h.touch(Comp::Var(0));
        h.touch(Comp::Thread(0));
        assert!(!h.is_clean());
        assert!(h.pop_dirty().is_some());
        assert!(h.pop_dirty().is_some());
        assert!(h.pop_dirty().is_none());
        assert!(h.is_clean());
    }

    #[test]
    fn fnv_distinguishes_order_and_content() {
        let a = Fnv::new().u64(1).u64(2).finish();
        let b = Fnv::new().u64(2).u64(1).finish();
        let c = Fnv::new().u64(1).u64(2).finish();
        assert_ne!(a, b);
        assert_eq!(a, c);
        assert_ne!(
            Fnv::new().bytes(b"x").finish(),
            Fnv::new().bytes(b"y").finish()
        );
    }

    #[test]
    fn mix_avalanches_low_bits() {
        // Consecutive inputs must not produce correlated folds.
        let h1 = mix(1);
        let h2 = mix(2);
        assert_ne!(h1 ^ h2, 3, "mix must break additive structure");
        assert_ne!(h1, h2);
    }
}
