//! Execution traces: vector-clock annotated event logs.
//!
//! Traces are the interchange format between the simulator and the
//! `lfm-detect` dynamic detectors: a detector never re-executes a program,
//! it analyses the totally-ordered event log of one run together with the
//! partial order induced by the vector clocks.

use std::fmt;

use crate::ids::{CondId, MutexId, RwId, SemId, ThreadId, VarId};

/// A classic vector clock over the program's threads.
///
/// Component `i` counts the visible operations of thread `i` that
/// happened-before the clock's owner.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct VectorClock(Vec<u32>);

impl VectorClock {
    /// A zero clock for `n_threads` threads.
    pub fn new(n_threads: usize) -> VectorClock {
        VectorClock(vec![0; n_threads])
    }

    /// Increments the component of `thread`.
    pub fn tick(&mut self, thread: ThreadId) {
        self.0[thread.index()] += 1;
    }

    /// Joins (component-wise max) `other` into `self`.
    pub fn join(&mut self, other: &VectorClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// The component for `thread`.
    pub fn get(&self, thread: ThreadId) -> u32 {
        self.0[thread.index()]
    }

    /// `true` when `self` happened-before-or-equals `other`
    /// (component-wise ≤).
    pub fn le(&self, other: &VectorClock) -> bool {
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    /// `true` when the two clocks are concurrent (neither ≤ the other).
    pub fn concurrent_with(&self, other: &VectorClock) -> bool {
        !self.le(other) && !other.le(self)
    }

    /// Number of components (threads).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when the clock has no components.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, c) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "⟩")
    }
}

/// What happened at one visible operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// Thread became runnable (start of its first step).
    ThreadStart,
    /// Thread finished its script.
    ThreadExit,
    /// Shared read; `value` is what was observed.
    Read {
        /// Variable read.
        var: VarId,
        /// Observed value.
        value: i64,
    },
    /// Shared write; `value` is what was stored.
    Write {
        /// Variable written.
        var: VarId,
        /// Stored value.
        value: i64,
    },
    /// Atomic read-modify-write.
    Rmw {
        /// Variable updated.
        var: VarId,
        /// Value before.
        old: i64,
        /// Value after.
        new: i64,
    },
    /// Compare-and-swap attempt.
    Cas {
        /// Variable targeted.
        var: VarId,
        /// Whether the swap succeeded.
        success: bool,
        /// Value observed.
        observed: i64,
    },
    /// Mutex acquired.
    Lock(MutexId),
    /// Mutex released.
    Unlock(MutexId),
    /// Non-blocking acquisition attempt.
    TryLock {
        /// Mutex attempted.
        mutex: MutexId,
        /// Whether the lock was taken.
        success: bool,
    },
    /// Read-mode rwlock acquired.
    RwRead(RwId),
    /// Write-mode rwlock acquired.
    RwWrite(RwId),
    /// Rwlock released.
    RwUnlock(RwId),
    /// Entered a condition wait (mutex released).
    WaitBegin {
        /// Condition variable.
        cond: CondId,
        /// Mutex released while waiting.
        mutex: MutexId,
    },
    /// Returned from a condition wait (mutex re-acquired).
    WaitEnd {
        /// Condition variable.
        cond: CondId,
        /// Mutex re-acquired.
        mutex: MutexId,
    },
    /// Signalled one waiter.
    Signal(CondId),
    /// Woke all waiters.
    Broadcast(CondId),
    /// Semaphore decremented.
    SemAcquire(SemId),
    /// Semaphore incremented.
    SemRelease(SemId),
    /// Spawned a deferred thread.
    Spawn(ThreadId),
    /// Joined a finished thread.
    Join(ThreadId),
    /// I/O side effect.
    Io(&'static str),
    /// Transaction began.
    TxBegin,
    /// Transaction committed.
    TxCommit,
    /// Transaction aborted (validation failure) and will retry.
    TxAbort,
    /// In-thread assertion failed.
    AssertFail(&'static str),
    /// Explicit yield.
    Yield,
}

impl EventKind {
    /// The variable touched, for memory-access events.
    pub fn var(&self) -> Option<VarId> {
        match self {
            EventKind::Read { var, .. }
            | EventKind::Write { var, .. }
            | EventKind::Rmw { var, .. }
            | EventKind::Cas { var, .. } => Some(*var),
            _ => None,
        }
    }

    /// `true` for events that *write* shared memory (writes, RMWs and
    /// successful CAS).
    pub fn is_write_access(&self) -> bool {
        match self {
            EventKind::Write { .. } | EventKind::Rmw { .. } => true,
            EventKind::Cas { success, .. } => *success,
            _ => false,
        }
    }

    /// `true` for any shared-memory access event.
    pub fn is_access(&self) -> bool {
        self.var().is_some()
    }
}

/// One recorded visible operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number in this execution (total order).
    pub seq: usize,
    /// The thread that performed the operation.
    pub thread: ThreadId,
    /// The thread's vector clock *after* the operation.
    pub clock: VectorClock,
    /// What happened.
    pub kind: EventKind,
}

/// A complete recorded execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Name of the executed program.
    pub program: String,
    /// Number of threads in the program.
    pub n_threads: usize,
    /// Number of shared variables in the program.
    pub n_vars: usize,
    /// The event log, in execution order.
    pub events: Vec<Event>,
}

impl Trace {
    /// Iterates over shared-memory access events only.
    pub fn accesses(&self) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(|e| e.kind.is_access())
    }

    /// All events of one thread, in order.
    pub fn thread_events(&self, thread: ThreadId) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.thread == thread)
    }

    /// All access events touching one variable, in order.
    pub fn var_accesses(&self, var: VarId) -> impl Iterator<Item = &Event> {
        self.accesses().filter(move |e| e.kind.var() == Some(var))
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: usize) -> ThreadId {
        ThreadId::from_index(i)
    }

    #[test]
    fn vector_clock_ordering() {
        let mut a = VectorClock::new(2);
        let mut b = VectorClock::new(2);
        a.tick(t(0)); // a = <1,0>
        b.tick(t(1)); // b = <0,1>
        assert!(a.concurrent_with(&b));
        b.join(&a); // b = <1,1>
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert!(!a.concurrent_with(&b));
        assert_eq!(b.get(t(0)), 1);
        assert_eq!(b.get(t(1)), 1);
    }

    #[test]
    fn clock_display() {
        let mut a = VectorClock::new(3);
        a.tick(t(1));
        assert_eq!(a.to_string(), "⟨0,1,0⟩");
    }

    #[test]
    fn event_kind_classification() {
        let r = EventKind::Read {
            var: VarId::from_index(0),
            value: 1,
        };
        assert!(r.is_access());
        assert!(!r.is_write_access());
        let w = EventKind::Write {
            var: VarId::from_index(0),
            value: 2,
        };
        assert!(w.is_write_access());
        let cf = EventKind::Cas {
            var: VarId::from_index(0),
            success: false,
            observed: 3,
        };
        assert!(cf.is_access());
        assert!(!cf.is_write_access());
        assert!(!EventKind::Lock(MutexId::from_index(0)).is_access());
    }

    #[test]
    fn trace_filters() {
        let v0 = VarId::from_index(0);
        let v1 = VarId::from_index(1);
        let mk = |seq, thread: usize, kind| Event {
            seq,
            thread: t(thread),
            clock: VectorClock::new(2),
            kind,
        };
        let trace = Trace {
            program: "p".into(),
            n_threads: 2,
            n_vars: 2,
            events: vec![
                mk(0, 0, EventKind::Read { var: v0, value: 0 }),
                mk(1, 1, EventKind::Lock(MutexId::from_index(0))),
                mk(2, 1, EventKind::Write { var: v1, value: 5 }),
            ],
        };
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.accesses().count(), 2);
        assert_eq!(trace.thread_events(t(1)).count(), 2);
        assert_eq!(trace.var_accesses(v1).count(), 1);
    }
}
