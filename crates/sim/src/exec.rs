//! The executor: a deterministic interpreter advancing one visible
//! operation at a time under external scheduling control.

use std::sync::Arc;

use crate::error::ExecError;
use crate::expr::Expr;
use crate::fault::{FaultKind, FaultPlan};
use crate::footprint::Footprint;
use crate::fxhash::Locals;
use crate::ids::{CondId, MutexId, RwId, SemId, ThreadId, VarId};
use crate::outcome::{BlockedOn, Outcome};
use crate::program::{Instr, Program};
use crate::pvec::PSeq;
use crate::schedule::Schedule;
use crate::state::{CondState, MutexState, RwState, SemState};
use crate::statehash::{Comp, Fnv, StateHash};
use crate::stmt::{RmwOp, Stmt};
use crate::trace::{Event, EventKind, Trace, VectorClock};
use crate::txn::TxState;

/// Fuel for uninterrupted local computation between two visible
/// operations; exhausting it means a pure-local infinite loop.
const LOCAL_FUEL: u32 = 100_000;

/// Default bound on transaction aborts before the execution is classified
/// [`Outcome::TxRetryLimit`].
pub(crate) const TX_RETRY_LIMIT: u32 = 64;

/// Whether an [`Executor`] records a [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecordMode {
    /// No trace (fastest; the model checker's default).
    #[default]
    Off,
    /// Record every visible operation with vector clocks.
    Full,
}

/// Result of [`Executor::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepResult {
    /// The execution can continue; more threads are enabled.
    Running,
    /// The execution reached a terminal outcome.
    Done(Outcome),
}

/// How far a replayed schedule deviated from what the program could
/// actually do, as accounted by [`Executor::replay_checked`]. All
/// counters zero means the schedule was taken verbatim and completely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayDeviation {
    /// Entries naming a thread the program does not have. Always a
    /// schedule/program mismatch (wrong program version, corrupt file).
    pub out_of_range: u64,
    /// Entries naming a real thread that was not enabled when its turn
    /// came (skipped in favour of the next usable entry).
    pub not_enabled: u64,
    /// Steps taken after the schedule ran out, filled in with the
    /// lowest-id enabled thread.
    pub filled_in: u64,
}

impl ReplayDeviation {
    /// `true` when the schedule drove the whole execution verbatim.
    pub fn is_exact(&self) -> bool {
        *self == ReplayDeviation::default()
    }
}

#[derive(Debug, Clone, PartialEq)]
enum ThreadStatus {
    /// Declared with `thread_deferred` and not yet spawned.
    NotStarted,
    /// Has a next instruction (which may or may not be enabled).
    Ready,
    /// Parked on a condition variable.
    WaitingCond { cond: CondId, mutex: MutexId },
    /// Waiting to re-acquire the mutex after a wait: `signalled` is
    /// `false` for a spurious wakeup (no happens-before edge with any
    /// signaller exists).
    Reacquire { mutex: MutexId, signalled: bool },
    /// Script complete.
    Finished,
}

#[derive(Debug, Clone)]
struct ThreadState {
    status: ThreadStatus,
    pc: usize,
    locals: Locals,
    held: Vec<MutexId>,
    tx: Option<TxState>,
    tx_retries: u32,
    clock: VectorClock,
}

/// Feeds an `Option<ThreadId>` into a component hash without colliding
/// `None` with any real thread.
fn hash_opt_thread(f: Fnv, t: Option<ThreadId>) -> Fnv {
    match t {
        Some(t) => f.byte(1).usize(t.index()),
        None => f.byte(0),
    }
}

/// The sync-object tables and the I/O journal, grouped behind a single
/// `Arc`: they mutate rarely compared to shared variables and thread
/// states, and grouping them cuts four atomic reference bumps (and the
/// matching decrements on drop) from every snapshot clone. The price is
/// that unsharing any one table copies all five — they are small, and a
/// branch child rarely touches more than one before its next snapshot.
#[derive(Debug, Clone)]
struct ColdTables {
    mutexes: Vec<MutexState>,
    conds: Vec<CondState>,
    rws: Vec<RwState>,
    sems: Vec<SemState>,
    io_journal: Vec<(ThreadId, &'static str)>,
}

/// A deterministic interpreter for one execution of a [`Program`].
///
/// The executor is `Clone`; the model checker snapshots it at branch
/// points. Drive it with [`Executor::step`] (choosing among
/// [`Executor::enabled`] threads) or one of the `run_*` conveniences.
///
/// # Copy-on-write snapshots
///
/// A clone is O(pointers), not O(state): the program, the shared
/// variables, every sync-object table, and each thread's state sit
/// behind [`Arc`]s that the clone merely bumps, and the grow-only logs
/// (schedule taken, recorded events) live in persistent chunked
/// storage ([`PSeq`]). A mutation after a snapshot pays only for the
/// component it touches, via `Arc::make_mut` — divergent futures of a
/// branch point share everything they have not yet written.
#[derive(Debug, Clone)]
pub struct Executor {
    program: Arc<Program>,
    vars: Arc<Vec<i64>>,
    cold: Arc<ColdTables>,
    threads: Vec<Arc<ThreadState>>,
    steps: usize,
    outcome: Option<Outcome>,
    last_scheduled: Option<ThreadId>,
    taken: PSeq<ThreadId>,
    record: RecordMode,
    events: PSeq<Event>,
    fault: Option<FaultPlan>,
    hash: StateHash,
}

impl Executor {
    /// Creates an executor at the program's initial state.
    pub fn new(program: &Program) -> Executor {
        Executor::with_record(program, RecordMode::Off)
    }

    /// Creates an executor that records according to `record`.
    pub fn with_record(program: &Program, record: RecordMode) -> Executor {
        let n = program.n_threads();
        let threads: Vec<Arc<ThreadState>> = program
            .threads()
            .iter()
            .map(|t| {
                Arc::new(ThreadState {
                    status: if t.auto_start() {
                        ThreadStatus::Ready
                    } else {
                        ThreadStatus::NotStarted
                    },
                    pc: 0,
                    locals: Locals::default(),
                    held: Vec::new(),
                    tx: None,
                    tx_retries: 0,
                    clock: VectorClock::new(n),
                })
            })
            .collect();
        let mut exec = Executor {
            vars: Arc::new(program.var_init().to_vec()),
            cold: Arc::new(ColdTables {
                mutexes: (0..program.n_mutexes())
                    .map(|_| MutexState::new(n))
                    .collect(),
                conds: (0..program.n_conds()).map(|_| CondState::new(n)).collect(),
                rws: (0..program.n_rws()).map(|_| RwState::new(n)).collect(),
                sems: program
                    .sem_init()
                    .iter()
                    .map(|&c| SemState::new(n, c))
                    .collect(),
                io_journal: Vec::new(),
            }),
            program: Arc::new(program.clone()),
            threads,
            steps: 0,
            outcome: None,
            last_scheduled: None,
            taken: PSeq::new(),
            record,
            events: PSeq::new(),
            fault: None,
            hash: StateHash::default(),
        };
        // Record starts and fast-forward local prefixes so every pc points
        // at a visible op.
        for i in 0..exec.threads.len() {
            if exec.threads[i].status == ThreadStatus::Ready {
                let tid = ThreadId::from_index(i);
                let clock = exec.threads[i].clock.clone();
                exec.record_event_with(&clock, tid, EventKind::ThreadStart);
                exec.fast_forward(tid);
            }
        }
        exec.check_quiescence();
        exec.init_hash();
        exec
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Installs a deterministic fault plan. Decisions are a pure function
    /// of `(plan, step, thread)`, so clones of this executor (the model
    /// checker's snapshots) agree with it on every future fault.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Whether `kind` fires for `thread` at the current step.
    fn fault_fires(&self, kind: FaultKind, thread: ThreadId) -> bool {
        self.fault
            .as_ref()
            .is_some_and(|plan| plan.fires(kind, self.steps, thread.index()))
    }

    /// Number of visible steps executed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The terminal outcome, once reached.
    pub fn outcome(&self) -> Option<&Outcome> {
        self.outcome.as_ref()
    }

    /// `true` once a terminal outcome has been reached.
    pub fn is_done(&self) -> bool {
        self.outcome.is_some()
    }

    /// Current values of all shared variables.
    pub fn vars(&self) -> &[i64] {
        &self.vars
    }

    /// The I/O journal: `(thread, tag)` in execution order.
    pub fn io_journal(&self) -> &[(ThreadId, &'static str)] {
        &self.cold.io_journal
    }

    /// The schedule of choices taken so far, materialized from the
    /// persistent log. O(steps) — use [`Executor::last_scheduled`] when
    /// only the most recent choice matters.
    pub fn schedule_taken(&self) -> Schedule {
        Schedule::from(self.taken.to_vec())
    }

    /// The thread scheduled by the most recent [`Executor::step`], if
    /// any. O(1), unlike materializing [`Executor::schedule_taken`].
    pub fn last_scheduled(&self) -> Option<ThreadId> {
        self.last_scheduled
    }

    /// The events recorded so far, materialized from the persistent log
    /// ([`RecordMode::Full`] only; empty otherwise). Use
    /// [`Executor::into_trace`] for the [`Trace`] form.
    pub fn events(&self) -> Vec<Event> {
        self.events.to_vec()
    }

    /// Extracts the recorded trace ([`RecordMode::Full`] only; an empty
    /// trace otherwise).
    pub fn into_trace(self) -> Trace {
        Trace {
            program: self.program.name().to_string(),
            n_threads: self.program.n_threads(),
            n_vars: self.program.n_vars(),
            events: self.events.to_vec(),
        }
    }

    /// The footprint of the visible operation `thread` would perform
    /// next, for the explorer's independence analysis. `None` when the
    /// thread has no next operation (not started / finished).
    pub(crate) fn next_footprint(&self, thread: ThreadId) -> Option<Footprint> {
        let ts = &self.threads[thread.index()];
        match &ts.status {
            ThreadStatus::Reacquire { mutex, .. } => Some(Footprint::of_reacquire(*mutex)),
            ThreadStatus::WaitingCond { mutex, .. } => Some(Footprint::of_reacquire(*mutex)),
            ThreadStatus::Ready => self.peek_op(thread).map(|stmt| {
                let touched: Vec<VarId> = match &ts.tx {
                    Some(tx) => tx
                        .read_set
                        .iter()
                        .map(|(v, _)| *v)
                        .chain(tx.write_set.iter().map(|(v, _)| *v))
                        .collect(),
                    None => Vec::new(),
                };
                let fp = Footprint::of_stmt(stmt, &touched);
                // Dynamic refinement: an assert condition reads only the
                // owner's locals (the builder rejects `Expr::Shared` in
                // thread bodies), so its verdict cannot change until this
                // thread runs again. A currently-passing assert therefore
                // cannot abort and is invisible; a failing one stays
                // visible so the explorer still branches before the abort
                // cuts off sibling outcomes.
                if let Stmt::Assert { cond, .. } = stmt {
                    if Self::locals_eval(&ts.locals, cond) != 0 {
                        return fp.without_effect();
                    }
                }
                fp
            }),
            ThreadStatus::NotStarted | ThreadStatus::Finished => None,
        }
    }

    /// A hash of the semantically relevant execution state, used by the
    /// explorer's optional state deduplication. Two executors with equal
    /// keys have the same future behaviour *except* for transaction-retry
    /// exhaustion and preemption accounting (retry counters, vector
    /// clocks, and the schedule taken are deliberately excluded so that
    /// retry loops collapse).
    ///
    /// O(1): the key is an XOR fold of per-component FNV hashes that
    /// [`Executor::step`] repairs incrementally as it mutates state.
    /// [`Executor::state_key_recomputed`] is the from-scratch reference
    /// this cache must always agree with.
    pub fn state_key(&self) -> u64 {
        self.hash.key()
    }

    /// Recomputes [`Executor::state_key`] from scratch by hashing every
    /// component. O(state); exists as the correctness oracle for the
    /// incrementally maintained key (the property suite asserts both
    /// agree after arbitrary step sequences) and as the per-probe cost
    /// model of the pre-incremental implementation for benchmarks.
    pub fn state_key_recomputed(&self) -> u64 {
        let mut key = 0u64;
        for i in 0..self.vars.len() {
            key ^= self.component_hash(Comp::Var(i));
        }
        for i in 0..self.cold.mutexes.len() {
            key ^= self.component_hash(Comp::Mutex(i));
        }
        for i in 0..self.cold.conds.len() {
            key ^= self.component_hash(Comp::Cond(i));
        }
        for i in 0..self.cold.rws.len() {
            key ^= self.component_hash(Comp::Rw(i));
        }
        for i in 0..self.cold.sems.len() {
            key ^= self.component_hash(Comp::Sem(i));
        }
        for i in 0..self.threads.len() {
            key ^= self.component_hash(Comp::Thread(i));
        }
        key
    }

    /// The pre-incremental dedup key, preserved verbatim for the legacy
    /// benchmark baseline: one `DefaultHasher` (SipHash) pass over the
    /// whole state with a sort-and-collect of every thread's locals per
    /// probe. Makes the same distinctions as [`Executor::state_key`]
    /// (so dedup verdicts coincide and legacy-mode reports stay
    /// identical), but its values differ — it is a cost model, not an
    /// oracle. [`Executor::state_key_recomputed`] is the oracle.
    pub fn state_key_legacy(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.vars.hash(&mut h);
        for m in self.cold.mutexes.iter() {
            m.owner.hash(&mut h);
        }
        for c in self.cold.conds.iter() {
            c.waiters.hash(&mut h);
        }
        for rw in self.cold.rws.iter() {
            rw.writer.hash(&mut h);
            rw.readers.hash(&mut h);
        }
        for s in self.cold.sems.iter() {
            s.count.hash(&mut h);
        }
        for ts in self.threads.iter() {
            std::mem::discriminant(&ts.status).hash(&mut h);
            match &ts.status {
                ThreadStatus::WaitingCond { cond, mutex } => {
                    cond.hash(&mut h);
                    mutex.hash(&mut h);
                }
                ThreadStatus::Reacquire { mutex, signalled } => {
                    mutex.hash(&mut h);
                    signalled.hash(&mut h);
                }
                _ => {}
            }
            ts.pc.hash(&mut h);
            let mut locals: Vec<_> = ts.locals.iter().collect();
            locals.sort_unstable_by_key(|(k, _)| **k);
            locals.hash(&mut h);
            ts.held.hash(&mut h);
            if let Some(tx) = &ts.tx {
                tx.start_pc.hash(&mut h);
                tx.read_set.hash(&mut h);
                tx.write_set.hash(&mut h);
                tx.io_performed.hash(&mut h);
            }
        }
        h.finish()
    }

    /// Hashes one component's current content. Makes exactly the
    /// distinctions the pre-incremental whole-state hash made: vector
    /// clocks, retry counters, and the schedule taken stay excluded;
    /// waiter queues, reader lists, held sets, and transaction
    /// read/write sets stay order-sensitive; thread locals are folded
    /// order-independently (XOR over entry hashes) so the `HashMap`
    /// iteration order never leaks into the key.
    fn component_hash(&self, c: Comp) -> u64 {
        match c {
            Comp::Var(i) => Fnv::new().byte(1).usize(i).i64(self.vars[i]).finish(),
            Comp::Mutex(i) => {
                let f = Fnv::new().byte(2).usize(i);
                hash_opt_thread(f, self.cold.mutexes[i].owner).finish()
            }
            Comp::Cond(i) => {
                let cs = &self.cold.conds[i];
                let mut f = Fnv::new().byte(3).usize(i).usize(cs.waiters.len());
                for &w in &cs.waiters {
                    f = f.usize(w.index());
                }
                f.finish()
            }
            Comp::Rw(i) => {
                let rw = &self.cold.rws[i];
                let mut f = hash_opt_thread(Fnv::new().byte(4).usize(i), rw.writer);
                f = f.usize(rw.readers.len());
                for &r in &rw.readers {
                    f = f.usize(r.index());
                }
                f.finish()
            }
            Comp::Sem(i) => Fnv::new()
                .byte(5)
                .usize(i)
                .i64(self.cold.sems[i].count)
                .finish(),
            Comp::Thread(i) => {
                let ts = &self.threads[i];
                let mut f = Fnv::new().byte(6).usize(i);
                f = match &ts.status {
                    ThreadStatus::NotStarted => f.byte(0),
                    ThreadStatus::Ready => f.byte(1),
                    ThreadStatus::WaitingCond { cond, mutex } => {
                        f.byte(2).usize(cond.index()).usize(mutex.index())
                    }
                    ThreadStatus::Reacquire { mutex, signalled } => {
                        f.byte(3).usize(mutex.index()).byte(u8::from(*signalled))
                    }
                    ThreadStatus::Finished => f.byte(4),
                };
                f = f.usize(ts.pc);
                let mut locals_fold = 0u64;
                for (name, value) in &ts.locals {
                    locals_fold ^= Fnv::new()
                        .bytes(name.as_bytes())
                        .byte(0xff)
                        .i64(*value)
                        .finish();
                }
                f = f.usize(ts.locals.len()).u64(locals_fold);
                f = f.usize(ts.held.len());
                for m in &ts.held {
                    f = f.usize(m.index());
                }
                match &ts.tx {
                    None => f = f.byte(0),
                    Some(tx) => {
                        f = f.byte(1).usize(tx.start_pc);
                        f = f.usize(tx.read_set.len());
                        for (v, val) in &tx.read_set {
                            f = f.usize(v.index()).i64(*val);
                        }
                        f = f.usize(tx.write_set.len());
                        for (v, val) in &tx.write_set {
                            f = f.usize(v.index()).i64(*val);
                        }
                        f = f.byte(u8::from(tx.io_performed));
                    }
                }
                f.finish()
            }
        }
    }

    /// Computes every component hash from scratch and installs the
    /// fold. Called once at construction; steps repair incrementally
    /// from there.
    fn init_hash(&mut self) {
        self.hash = StateHash::with_sizes(
            self.vars.len(),
            self.cold.mutexes.len(),
            self.cold.conds.len(),
            self.cold.rws.len(),
            self.cold.sems.len(),
            self.threads.len(),
        );
        for i in 0..self.vars.len() {
            let h = self.component_hash(Comp::Var(i));
            self.hash.replace(Comp::Var(i), h);
        }
        for i in 0..self.cold.mutexes.len() {
            let h = self.component_hash(Comp::Mutex(i));
            self.hash.replace(Comp::Mutex(i), h);
        }
        for i in 0..self.cold.conds.len() {
            let h = self.component_hash(Comp::Cond(i));
            self.hash.replace(Comp::Cond(i), h);
        }
        for i in 0..self.cold.rws.len() {
            let h = self.component_hash(Comp::Rw(i));
            self.hash.replace(Comp::Rw(i), h);
        }
        for i in 0..self.cold.sems.len() {
            let h = self.component_hash(Comp::Sem(i));
            self.hash.replace(Comp::Sem(i), h);
        }
        for i in 0..self.threads.len() {
            let h = self.component_hash(Comp::Thread(i));
            self.hash.replace(Comp::Thread(i), h);
        }
    }

    /// Rehashes every component the current step marked dirty,
    /// repairing the XOR fold. Called at the end of [`Executor::step`];
    /// cost is proportional to the components touched, not the state.
    fn flush_hash(&mut self) {
        while let Some(c) = self.hash.pop_dirty() {
            let fresh = self.component_hash(c);
            self.hash.replace(c, fresh);
        }
    }

    // ---- copy-on-write accessors ---------------------------------------

    /// Mutable view of one thread's state; lazily unshares it from any
    /// snapshot and marks its hash component dirty.
    fn thread_mut(&mut self, t: ThreadId) -> &mut ThreadState {
        self.hash.touch(Comp::Thread(t.index()));
        Arc::make_mut(&mut self.threads[t.index()])
    }

    fn mutex_mut(&mut self, m: MutexId) -> &mut MutexState {
        self.hash.touch(Comp::Mutex(m.index()));
        &mut Arc::make_mut(&mut self.cold).mutexes[m.index()]
    }

    fn cond_mut(&mut self, c: CondId) -> &mut CondState {
        self.hash.touch(Comp::Cond(c.index()));
        &mut Arc::make_mut(&mut self.cold).conds[c.index()]
    }

    fn rw_mut(&mut self, rw: RwId) -> &mut RwState {
        self.hash.touch(Comp::Rw(rw.index()));
        &mut Arc::make_mut(&mut self.cold).rws[rw.index()]
    }

    fn sem_mut(&mut self, s: SemId) -> &mut SemState {
        self.hash.touch(Comp::Sem(s.index()));
        &mut Arc::make_mut(&mut self.cold).sems[s.index()]
    }

    fn set_var(&mut self, var: VarId, value: i64) {
        self.hash.touch(Comp::Var(var.index()));
        Arc::make_mut(&mut self.vars)[var.index()] = value;
    }

    // ---- snapshot cost model -------------------------------------------

    /// A fully materialized clone: every shared component is copied and
    /// the logs are re-chunked, so nothing aliases `self`. This is the
    /// benchmark baseline emulating the pre-COW snapshot cost; results
    /// are identical to [`Clone::clone`], only slower.
    pub fn deep_clone(&self) -> Executor {
        let mut c = self.clone();
        c.program = Arc::new((*self.program).clone());
        Arc::make_mut(&mut c.vars);
        Arc::make_mut(&mut c.cold);
        for t in &mut c.threads {
            Arc::make_mut(t);
        }
        c.taken.unshare();
        c.events.unshare();
        c
    }

    /// Estimated heap bytes a pre-COW deep snapshot of this state would
    /// copy: variable values, sync-object tables (waiter queues and
    /// clocks included), per-thread state (locals, held sets, clocks,
    /// transaction logs), the program, and the full grow-only logs. A
    /// deterministic size model, not an allocator measurement.
    pub fn snapshot_deep_bytes(&self) -> u64 {
        use std::mem::size_of;
        let n = self.threads.len();
        let clock_bytes = n * size_of::<u32>();
        let mut bytes = size_of::<Executor>();
        bytes += self.vars.len() * size_of::<i64>();
        for m in self.cold.mutexes.iter() {
            bytes +=
                size_of::<MutexState>() + m.waiters.len() * size_of::<ThreadId>() + clock_bytes;
        }
        for c in self.cold.conds.iter() {
            bytes += size_of::<CondState>() + c.waiters.len() * size_of::<ThreadId>() + clock_bytes;
        }
        for rw in self.cold.rws.iter() {
            bytes += size_of::<RwState>() + rw.readers.len() * size_of::<ThreadId>() + clock_bytes;
        }
        bytes += self.cold.sems.len() * (size_of::<SemState>() + clock_bytes);
        for ts in &self.threads {
            bytes += size_of::<ThreadState>() + clock_bytes;
            bytes += ts.locals.len() * size_of::<(&'static str, i64)>();
            bytes += ts.held.len() * size_of::<MutexId>();
            if let Some(tx) = &ts.tx {
                bytes += (tx.read_set.len() + tx.write_set.len()) * size_of::<(VarId, i64)>();
                bytes += tx.locals_snapshot.len() * size_of::<(&'static str, i64)>();
            }
        }
        for t in self.program.threads() {
            bytes += t.code().len() * size_of::<Instr>();
        }
        bytes += self.taken.len() * size_of::<ThreadId>();
        for e in self.events.iter() {
            bytes += size_of::<Event>() + e.clock.len() * size_of::<u32>();
        }
        bytes += self.cold.io_journal.len() * size_of::<(ThreadId, &'static str)>();
        bytes as u64
    }

    /// Bytes a copy-on-write clone of this state actually copies: the
    /// executor struct, the per-thread `Arc` table, and the logs'
    /// chunk-pointer tables. Same deterministic size model as
    /// [`Executor::snapshot_deep_bytes`].
    pub fn snapshot_shallow_bytes(&self) -> u64 {
        use std::mem::size_of;
        let bytes = size_of::<Executor>()
            + self.threads.len() * size_of::<Arc<ThreadState>>()
            + self.taken.clone_cost_bytes()
            + self.events.clone_cost_bytes();
        bytes as u64
    }

    /// Bytes a snapshot of this state avoids copying thanks to the
    /// copy-on-write representation
    /// ([`snapshot_deep_bytes`](Executor::snapshot_deep_bytes) minus
    /// [`snapshot_shallow_bytes`](Executor::snapshot_shallow_bytes)).
    /// A pure function of the logical state — the serial and parallel
    /// explorers accumulate identical totals.
    pub fn snapshot_bytes_saved(&self) -> u64 {
        self.snapshot_deep_bytes()
            .saturating_sub(self.snapshot_shallow_bytes())
    }

    /// Threads that can take a step right now.
    ///
    /// With a fault plan installed, threads in a stall window are filtered
    /// out (a bounded descheduling). The filter never empties the set —
    /// if every enabled thread is stalled, or only one thread is enabled,
    /// the unfiltered set is returned, so deadlock detection and
    /// quiescence (which use [`Executor::is_enabled`]) are unaffected.
    pub fn enabled(&self) -> Vec<ThreadId> {
        let all: Vec<ThreadId> = (0..self.threads.len())
            .map(ThreadId::from_index)
            .filter(|&t| self.is_enabled(t))
            .collect();
        if all.len() > 1 {
            if let Some(plan) = &self.fault {
                let unstalled: Vec<ThreadId> = all
                    .iter()
                    .copied()
                    .filter(|t| !plan.fires(FaultKind::Stall, self.steps, t.index()))
                    .collect();
                if !unstalled.is_empty() {
                    return unstalled;
                }
            }
        }
        all
    }

    /// `true` when `thread` can take a step.
    pub fn is_enabled(&self, thread: ThreadId) -> bool {
        if self.outcome.is_some() {
            return false;
        }
        let ts = &self.threads[thread.index()];
        match &ts.status {
            ThreadStatus::NotStarted
            | ThreadStatus::Finished
            | ThreadStatus::WaitingCond { .. } => false,
            ThreadStatus::Reacquire { mutex, .. } => {
                self.cold.mutexes[mutex.index()].owner.is_none()
            }
            ThreadStatus::Ready => match self.peek_op(thread) {
                None => false,
                Some(stmt) => self.op_enabled(thread, stmt),
            },
        }
    }

    /// The visible operation `thread` will perform next, if any.
    fn peek_op(&self, thread: ThreadId) -> Option<&Stmt> {
        let ts = &self.threads[thread.index()];
        let code = self.program.threads()[thread.index()].code();
        match code.get(ts.pc) {
            Some(Instr::Op(stmt)) => Some(stmt),
            _ => None,
        }
    }

    fn op_enabled(&self, thread: ThreadId, stmt: &Stmt) -> bool {
        match stmt {
            Stmt::Lock(m) => self.cold.mutexes[m.index()].owner.is_none(),
            Stmt::RwRead(rw) => self.cold.rws[rw.index()].can_read(thread),
            Stmt::RwWrite(rw) => self.cold.rws[rw.index()].can_write(thread),
            Stmt::SemAcquire(s) => self.cold.sems[s.index()].count > 0,
            Stmt::Join(t) => self.threads[t.index()].status == ThreadStatus::Finished,
            _ => true,
        }
    }

    /// Executes one visible operation of `thread`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::ThreadNotEnabled`] if `thread` cannot take a
    /// step (including after the execution has already terminated).
    pub fn step(&mut self, thread: ThreadId) -> Result<StepResult, ExecError> {
        if !self.is_enabled(thread) {
            return Err(ExecError::ThreadNotEnabled { thread });
        }
        self.steps += 1;
        self.taken.push(thread);
        self.last_scheduled = Some(thread);
        self.thread_mut(thread).clock.tick(thread);

        if let ThreadStatus::Reacquire { mutex, signalled } =
            self.threads[thread.index()].status.clone()
        {
            self.finish_wait(thread, mutex, signalled);
        } else {
            // Borrow the statement through a program handle instead of
            // cloning it: `Stmt` owns `Expr` trees, and a deep clone per
            // step shows up in the explorer's hot-path profile.
            let program = Arc::clone(&self.program);
            let code = program.threads()[thread.index()].code();
            let stmt = match code.get(self.threads[thread.index()].pc) {
                Some(Instr::Op(stmt)) => stmt,
                _ => unreachable!("enabled Ready thread has a visible op"),
            };
            self.exec_op(thread, stmt);
        }

        if self.outcome.is_none() {
            if self.threads[thread.index()].status == ThreadStatus::Ready {
                self.fast_forward(thread);
            }
            self.check_quiescence();
        }
        self.flush_hash();
        Ok(match &self.outcome {
            Some(o) => StepResult::Done(o.clone()),
            None => StepResult::Running,
        })
    }

    /// Runs to termination, choosing each step with `picker` (called with
    /// the non-empty enabled set). Stops with [`Outcome::StepLimit`] after
    /// `max_steps` visible operations.
    pub fn run_with(
        &mut self,
        max_steps: usize,
        mut picker: impl FnMut(&[ThreadId]) -> ThreadId,
    ) -> Outcome {
        while self.outcome.is_none() {
            if self.steps >= max_steps {
                self.outcome = Some(Outcome::StepLimit);
                break;
            }
            let enabled = self.enabled();
            debug_assert!(!enabled.is_empty(), "quiescence should have fired");
            let choice = picker(&enabled);
            self.step(choice)
                .expect("picker must choose an enabled thread");
        }
        self.outcome.clone().expect("loop sets outcome")
    }

    /// Replays a recorded schedule, then continues deterministically
    /// (always the lowest-id enabled thread). Choices that are not enabled
    /// at replay time are skipped in favour of the lowest-id enabled
    /// thread, so a schedule from a different program version degrades
    /// gracefully instead of panicking. Use [`Executor::replay_checked`]
    /// when the caller needs to know whether that grace was needed.
    pub fn replay(&mut self, schedule: &Schedule, max_steps: usize) -> Outcome {
        self.replay_checked(schedule, max_steps).0
    }

    /// [`Executor::replay`] plus an account of every place the schedule
    /// and the program disagreed. All replay paths — trace
    /// reconstruction, witness verification, ddmin candidate validation
    /// — run through this one helper, so an out-of-range or
    /// not-enabled choice degrades identically everywhere instead of
    /// silently diverging between them.
    pub fn replay_checked(
        &mut self,
        schedule: &Schedule,
        max_steps: usize,
    ) -> (Outcome, ReplayDeviation) {
        let n_threads = self.program.threads().len();
        let mut it = schedule.iter();
        let mut deviation = ReplayDeviation::default();
        let outcome = self.run_with(max_steps, |enabled| {
            for choice in it.by_ref() {
                if choice.index() >= n_threads {
                    deviation.out_of_range += 1;
                } else if enabled.contains(&choice) {
                    return choice;
                } else {
                    deviation.not_enabled += 1;
                }
            }
            deviation.filled_in += 1;
            enabled[0]
        });
        (outcome, deviation)
    }

    /// Runs to termination always choosing the lowest-id enabled thread —
    /// the canonical "serial" execution used as a sanity baseline.
    pub fn run_sequential(&mut self, max_steps: usize) -> Outcome {
        self.run_with(max_steps, |enabled| enabled[0])
    }

    // ---- internals -----------------------------------------------------

    fn locals_eval(locals: &Locals, e: &Expr) -> i64 {
        e.eval(&|name| locals.get(name).copied().unwrap_or(0), &|_| {
            unreachable!("builder validation forbids Expr::Shared in thread bodies")
        })
    }

    fn eval(&self, thread: ThreadId, e: &Expr) -> i64 {
        Self::locals_eval(&self.threads[thread.index()].locals, e)
    }

    /// Advances past purely-local instructions until the pc rests on a
    /// visible op or the script ends (then the thread finishes).
    fn fast_forward(&mut self, thread: ThreadId) {
        let program = Arc::clone(&self.program);
        let code = program.threads()[thread.index()].code();
        let mut fuel = LOCAL_FUEL;
        loop {
            let ts = self.thread_mut(thread);
            match code.get(ts.pc) {
                None => {
                    ts.status = ThreadStatus::Finished;
                    let clock = ts.clock.clone();
                    self.record_event_with(&clock, thread, EventKind::ThreadExit);
                    return;
                }
                Some(Instr::Op(_)) => return,
                Some(Instr::LocalSet { name, value }) => {
                    let v = Self::locals_eval(&ts.locals, value);
                    ts.locals.insert(name, v);
                    ts.pc += 1;
                }
                Some(Instr::Jump(t)) => ts.pc = *t,
                Some(Instr::JumpIfZero(cond, t)) => {
                    let v = Self::locals_eval(&ts.locals, cond);
                    if v == 0 {
                        ts.pc = *t;
                    } else {
                        ts.pc += 1;
                    }
                }
            }
            fuel -= 1;
            if fuel == 0 {
                self.outcome = Some(Outcome::Misuse {
                    thread,
                    error: ExecError::LocalFuelExhausted,
                });
                return;
            }
        }
    }

    fn misuse(&mut self, thread: ThreadId, error: ExecError) {
        self.outcome = Some(Outcome::Misuse { thread, error });
    }

    fn record_event(&mut self, thread: ThreadId, kind: EventKind) {
        // Check the mode before touching the clock: cloning a
        // `VectorClock` allocates, and the explorer runs with recording
        // off on every state except witness reconstruction.
        if self.record != RecordMode::Full {
            return;
        }
        let clock = self.threads[thread.index()].clock.clone();
        self.record_event_with(&clock, thread, kind);
    }

    fn record_event_with(&mut self, clock: &VectorClock, thread: ThreadId, kind: EventKind) {
        if self.record == RecordMode::Full {
            self.events.push(Event {
                seq: self.events.len(),
                thread,
                clock: clock.clone(),
                kind,
            });
        }
    }

    fn advance(&mut self, thread: ThreadId) {
        self.thread_mut(thread).pc += 1;
    }

    /// Aborts the thread's transaction when its read set no longer
    /// matches the globals (opacity: a transaction must never expose an
    /// inconsistent snapshot to the program, TL2-style per-read
    /// validation). Returns `true` when an abort happened — the caller
    /// must not execute its operation.
    fn tx_abort_if_invalid(&mut self, thread: ThreadId) -> bool {
        let valid = match &self.threads[thread.index()].tx {
            Some(tx) => tx.validate(&self.vars) && !self.fault_fires(FaultKind::TxAbort, thread),
            None => return false,
        };
        if valid {
            return false;
        }
        self.record_event(thread, EventKind::TxAbort);
        let ts = self.thread_mut(thread);
        let tx = ts.tx.take().expect("validated above");
        ts.locals = tx.locals_snapshot;
        ts.pc = tx.start_pc;
        ts.tx_retries += 1;
        if ts.tx_retries > TX_RETRY_LIMIT {
            self.outcome = Some(Outcome::TxRetryLimit { thread });
        }
        true
    }

    /// Transaction-aware shared read.
    fn shared_read(&mut self, thread: ThreadId, var: VarId) -> i64 {
        let global = self.vars[var.index()];
        if self.threads[thread.index()].tx.is_some() {
            let tx = self.thread_mut(thread).tx.as_mut().expect("checked above");
            tx.read(var, global)
        } else {
            global
        }
    }

    /// Transaction-aware shared write.
    fn shared_write(&mut self, thread: ThreadId, var: VarId, value: i64) -> bool {
        if self.threads[thread.index()].tx.is_some() {
            let tx = self.thread_mut(thread).tx.as_mut().expect("checked above");
            tx.write(var, value);
            false // buffered; event recorded at commit
        } else {
            self.set_var(var, value);
            true
        }
    }

    fn finish_wait(&mut self, thread: ThreadId, mutex: MutexId, signalled: bool) {
        // Re-acquire the mutex and resume past the Wait statement.
        let cond = match self.peek_op(thread) {
            Some(Stmt::Wait { cond, .. }) => *cond,
            _ => unreachable!("Reacquire pc rests on the Wait stmt"),
        };
        let mclock = self.cold.mutexes[mutex.index()].clock.clone();
        let cclock = self.cold.conds[cond.index()].clock.clone();
        {
            let ts = self.thread_mut(thread);
            ts.clock.join(&mclock);
            if signalled {
                // A spurious wakeup synchronizes with no signaller: only a
                // real signal joins the condition variable's clock.
                ts.clock.join(&cclock);
            }
            ts.held.push(mutex);
            ts.status = ThreadStatus::Ready;
        }
        self.mutex_mut(mutex).owner = Some(thread);
        self.record_event(thread, EventKind::WaitEnd { cond, mutex });
        self.advance(thread);
    }

    fn exec_op(&mut self, thread: ThreadId, stmt: &Stmt) {
        match stmt {
            Stmt::Read { var, into } => {
                if self.tx_abort_if_invalid(thread) {
                    return;
                }
                let value = self.shared_read(thread, *var);
                self.thread_mut(thread).locals.insert(into, value);
                self.record_event(thread, EventKind::Read { var: *var, value });
                self.advance(thread);
            }
            Stmt::Write { var, value } => {
                let v = self.eval(thread, value);
                if self.shared_write(thread, *var, v) {
                    self.record_event(
                        thread,
                        EventKind::Write {
                            var: *var,
                            value: v,
                        },
                    );
                }
                self.advance(thread);
            }
            Stmt::Rmw {
                var,
                op,
                operand,
                into,
            } => {
                if self.tx_abort_if_invalid(thread) {
                    return;
                }
                let operand = self.eval(thread, operand);
                let old = self.shared_read(thread, *var);
                let new = match op {
                    RmwOp::FetchAdd => old.wrapping_add(operand),
                    RmwOp::FetchSub => old.wrapping_sub(operand),
                    RmwOp::Exchange => operand,
                    RmwOp::FetchMax => old.max(operand),
                    RmwOp::FetchMin => old.min(operand),
                };
                let direct = self.shared_write(thread, *var, new);
                if let Some(into) = into {
                    self.thread_mut(thread).locals.insert(into, old);
                }
                if direct {
                    self.record_event(
                        thread,
                        EventKind::Rmw {
                            var: *var,
                            old,
                            new,
                        },
                    );
                } else {
                    self.record_event(
                        thread,
                        EventKind::Read {
                            var: *var,
                            value: old,
                        },
                    );
                }
                self.advance(thread);
            }
            Stmt::Cas {
                var,
                expected,
                new,
                into,
                observed_into,
            } => {
                if self.tx_abort_if_invalid(thread) {
                    return;
                }
                let expected = self.eval(thread, expected);
                let new = self.eval(thread, new);
                let observed = self.shared_read(thread, *var);
                let success = observed == expected;
                if success {
                    self.shared_write(thread, *var, new);
                }
                let ts = self.thread_mut(thread);
                ts.locals.insert(into, i64::from(success));
                if let Some(oi) = observed_into {
                    ts.locals.insert(oi, observed);
                }
                self.record_event(
                    thread,
                    EventKind::Cas {
                        var: *var,
                        success,
                        observed,
                    },
                );
                self.advance(thread);
            }
            Stmt::Lock(m) => {
                debug_assert!(self.cold.mutexes[m.index()].owner.is_none());
                let mclock = self.cold.mutexes[m.index()].clock.clone();
                let ts = self.thread_mut(thread);
                ts.clock.join(&mclock);
                ts.held.push(*m);
                self.mutex_mut(*m).owner = Some(thread);
                self.record_event(thread, EventKind::Lock(*m));
                self.advance(thread);
            }
            Stmt::Unlock(m) => {
                if self.cold.mutexes[m.index()].owner != Some(thread) {
                    self.misuse(thread, ExecError::UnlockNotHeld { mutex: *m });
                    return;
                }
                self.mutex_mut(*m).owner = None;
                let clock = self.threads[thread.index()].clock.clone();
                self.mutex_mut(*m).clock = clock;
                self.thread_mut(thread).held.retain(|h| h != m);
                self.record_event(thread, EventKind::Unlock(*m));
                self.advance(thread);
            }
            Stmt::TryLock { mutex, into } => {
                // A forced failure models a contender winning and releasing
                // the lock between the check and the acquisition — legal
                // for any try-lock.
                let success = self.cold.mutexes[mutex.index()].owner.is_none()
                    && !self.fault_fires(FaultKind::TryLockFail, thread);
                if success {
                    let mclock = self.cold.mutexes[mutex.index()].clock.clone();
                    let ts = self.thread_mut(thread);
                    ts.clock.join(&mclock);
                    ts.held.push(*mutex);
                    self.mutex_mut(*mutex).owner = Some(thread);
                }
                self.thread_mut(thread)
                    .locals
                    .insert(into, i64::from(success));
                self.record_event(
                    thread,
                    EventKind::TryLock {
                        mutex: *mutex,
                        success,
                    },
                );
                self.advance(thread);
            }
            Stmt::RwRead(rw) => {
                debug_assert!(self.cold.rws[rw.index()].can_read(thread));
                let rclock = self.cold.rws[rw.index()].clock.clone();
                self.thread_mut(thread).clock.join(&rclock);
                self.rw_mut(*rw).readers.push(thread);
                self.record_event(thread, EventKind::RwRead(*rw));
                self.advance(thread);
            }
            Stmt::RwWrite(rw) => {
                debug_assert!(self.cold.rws[rw.index()].can_write(thread));
                let rclock = self.cold.rws[rw.index()].clock.clone();
                self.thread_mut(thread).clock.join(&rclock);
                self.rw_mut(*rw).writer = Some(thread);
                self.record_event(thread, EventKind::RwWrite(*rw));
                self.advance(thread);
            }
            Stmt::RwUnlock(rw) => {
                let state = &self.cold.rws[rw.index()];
                if state.writer == Some(thread) {
                    self.rw_mut(*rw).writer = None;
                } else if let Some(pos) = state.readers.iter().position(|&r| r == thread) {
                    self.rw_mut(*rw).readers.remove(pos);
                } else {
                    self.misuse(thread, ExecError::RwUnlockNotHeld { rw: *rw });
                    return;
                }
                let clock = self.threads[thread.index()].clock.clone();
                self.rw_mut(*rw).clock.join(&clock);
                self.record_event(thread, EventKind::RwUnlock(*rw));
                self.advance(thread);
            }
            Stmt::Wait { cond, mutex } => {
                if self.cold.mutexes[mutex.index()].owner != Some(thread) {
                    self.misuse(thread, ExecError::WaitWithoutMutex { mutex: *mutex });
                    return;
                }
                if self.fault_fires(FaultKind::SpuriousWakeup, thread) {
                    // Spurious wakeup: the wait returns without a signal.
                    // Release the mutex and go straight to re-acquisition
                    // without ever joining the waiters queue, so no signal
                    // is consumed and no happens-before edge is created.
                    self.mutex_mut(*mutex).owner = None;
                    let clock = self.threads[thread.index()].clock.clone();
                    self.mutex_mut(*mutex).clock = clock;
                    {
                        let ts = self.thread_mut(thread);
                        ts.held.retain(|h| h != mutex);
                        ts.status = ThreadStatus::Reacquire {
                            mutex: *mutex,
                            signalled: false,
                        };
                    }
                    self.record_event(
                        thread,
                        EventKind::WaitBegin {
                            cond: *cond,
                            mutex: *mutex,
                        },
                    );
                    // pc stays on the Wait; finish_wait advances it.
                    return;
                }
                self.mutex_mut(*mutex).owner = None;
                let clock = self.threads[thread.index()].clock.clone();
                self.mutex_mut(*mutex).clock = clock;
                {
                    let ts = self.thread_mut(thread);
                    ts.held.retain(|h| h != mutex);
                    ts.status = ThreadStatus::WaitingCond {
                        cond: *cond,
                        mutex: *mutex,
                    };
                }
                self.cond_mut(*cond).waiters.push_back(thread);
                self.record_event(
                    thread,
                    EventKind::WaitBegin {
                        cond: *cond,
                        mutex: *mutex,
                    },
                );
                // pc stays on the Wait; WaitEnd advances it.
            }
            Stmt::Signal(c) => {
                let clock = self.threads[thread.index()].clock.clone();
                self.cond_mut(*c).clock.join(&clock);
                let woken = self.cond_mut(*c).waiters.pop_front();
                if let Some(w) = woken {
                    let mutex = match &self.threads[w.index()].status {
                        ThreadStatus::WaitingCond { mutex, .. } => *mutex,
                        other => unreachable!("cond waiter in status {other:?}"),
                    };
                    self.thread_mut(w).status = ThreadStatus::Reacquire {
                        mutex,
                        signalled: true,
                    };
                }
                self.record_event(thread, EventKind::Signal(*c));
                self.advance(thread);
            }
            Stmt::Broadcast(c) => {
                let clock = self.threads[thread.index()].clock.clone();
                self.cond_mut(*c).clock.join(&clock);
                while let Some(w) = self.cond_mut(*c).waiters.pop_front() {
                    let mutex = match &self.threads[w.index()].status {
                        ThreadStatus::WaitingCond { mutex, .. } => *mutex,
                        other => unreachable!("cond waiter in status {other:?}"),
                    };
                    self.thread_mut(w).status = ThreadStatus::Reacquire {
                        mutex,
                        signalled: true,
                    };
                }
                self.record_event(thread, EventKind::Broadcast(*c));
                self.advance(thread);
            }
            Stmt::SemAcquire(s) => {
                debug_assert!(self.cold.sems[s.index()].count > 0);
                self.sem_mut(*s).count -= 1;
                let sclock = self.cold.sems[s.index()].clock.clone();
                self.thread_mut(thread).clock.join(&sclock);
                self.record_event(thread, EventKind::SemAcquire(*s));
                self.advance(thread);
            }
            Stmt::SemRelease(s) => {
                self.sem_mut(*s).count += 1;
                let clock = self.threads[thread.index()].clock.clone();
                self.sem_mut(*s).clock.join(&clock);
                self.record_event(thread, EventKind::SemRelease(*s));
                self.advance(thread);
            }
            Stmt::Spawn(t) => {
                if self.threads[t.index()].status != ThreadStatus::NotStarted {
                    self.misuse(thread, ExecError::DoubleSpawn { target: *t });
                    return;
                }
                let parent_clock = self.threads[thread.index()].clock.clone();
                {
                    let child = self.thread_mut(*t);
                    child.status = ThreadStatus::Ready;
                    child.clock.join(&parent_clock);
                }
                self.record_event(thread, EventKind::Spawn(*t));
                let child_clock = self.threads[t.index()].clock.clone();
                self.record_event_with(&child_clock, *t, EventKind::ThreadStart);
                self.advance(thread);
                self.fast_forward(*t);
            }
            Stmt::Join(t) => {
                debug_assert_eq!(self.threads[t.index()].status, ThreadStatus::Finished);
                let target_clock = self.threads[t.index()].clock.clone();
                self.thread_mut(thread).clock.join(&target_clock);
                self.record_event(thread, EventKind::Join(*t));
                self.advance(thread);
            }
            Stmt::LocalSet { .. } | Stmt::If { .. } | Stmt::While { .. } => {
                unreachable!("local statements are compiled away")
            }
            Stmt::Assert { cond, msg } => {
                let v = self.eval(thread, cond);
                if v == 0 {
                    self.record_event(thread, EventKind::AssertFail(msg));
                    self.outcome = Some(Outcome::AssertFailed {
                        thread: Some(thread),
                        msg,
                    });
                    return;
                }
                self.advance(thread);
            }
            Stmt::Io { tag } => {
                Arc::make_mut(&mut self.cold).io_journal.push((thread, tag));
                if self.threads[thread.index()].tx.is_some() {
                    let tx = self.thread_mut(thread).tx.as_mut().expect("checked above");
                    tx.io_performed = true;
                }
                self.record_event(thread, EventKind::Io(tag));
                self.advance(thread);
            }
            Stmt::TxBegin => {
                let ts = self.thread_mut(thread);
                let tx = TxState::new(ts.pc, &ts.locals);
                ts.tx = Some(tx);
                self.record_event(thread, EventKind::TxBegin);
                self.advance(thread);
            }
            Stmt::TxRetry => {
                self.record_event(thread, EventKind::TxAbort);
                let ts = self.thread_mut(thread);
                let tx = ts
                    .tx
                    .take()
                    .expect("TxRetry only occurs inside a transaction");
                ts.locals = tx.locals_snapshot.clone();
                ts.pc = tx.start_pc;
                ts.tx_retries += 1;
                if ts.tx_retries > TX_RETRY_LIMIT {
                    self.outcome = Some(Outcome::TxRetryLimit { thread });
                }
            }
            Stmt::TxCommit => {
                // TL2 permits conservative aborts: a forced abort at commit
                // is indistinguishable from a lost version-lock race.
                let forced = self.fault_fires(FaultKind::TxAbort, thread);
                let tx = self
                    .thread_mut(thread)
                    .tx
                    .take()
                    .expect("build validation pairs TxCommit with TxBegin");
                if !forced && tx.validate(&self.vars) {
                    for (var, value) in &tx.write_set {
                        self.set_var(*var, *value);
                        self.record_event(
                            thread,
                            EventKind::Write {
                                var: *var,
                                value: *value,
                            },
                        );
                    }
                    self.thread_mut(thread).tx_retries = 0;
                    self.record_event(thread, EventKind::TxCommit);
                    self.advance(thread);
                } else {
                    self.record_event(thread, EventKind::TxAbort);
                    let ts = self.thread_mut(thread);
                    ts.locals = tx.locals_snapshot.clone();
                    ts.pc = tx.start_pc;
                    ts.tx = None;
                    ts.tx_retries += 1;
                    if ts.tx_retries > TX_RETRY_LIMIT {
                        self.outcome = Some(Outcome::TxRetryLimit { thread });
                    }
                }
            }
            Stmt::Yield => {
                self.record_event(thread, EventKind::Yield);
                self.advance(thread);
            }
        }
    }

    /// Checks whether the execution has quiesced: either finished cleanly
    /// (evaluate final assertions) or deadlocked.
    fn check_quiescence(&mut self) {
        if self.outcome.is_some() {
            return;
        }
        if (0..self.threads.len()).any(|i| self.is_enabled(ThreadId::from_index(i))) {
            return;
        }
        let mut blocked = Vec::new();
        for (i, ts) in self.threads.iter().enumerate() {
            let tid = ThreadId::from_index(i);
            match &ts.status {
                ThreadStatus::Finished | ThreadStatus::NotStarted => {}
                ThreadStatus::WaitingCond { cond, .. } => {
                    blocked.push((tid, BlockedOn::Cond(*cond)));
                }
                ThreadStatus::Reacquire { mutex, .. } => {
                    blocked.push((tid, BlockedOn::CondReacquire(*mutex)));
                }
                ThreadStatus::Ready => {
                    let on = match self.peek_op(tid) {
                        Some(Stmt::Lock(m)) => BlockedOn::Mutex(*m),
                        Some(Stmt::RwRead(rw)) => BlockedOn::RwRead(*rw),
                        Some(Stmt::RwWrite(rw)) => BlockedOn::RwWrite(*rw),
                        Some(Stmt::SemAcquire(s)) => BlockedOn::Semaphore(*s),
                        Some(Stmt::Join(t)) => BlockedOn::Join(*t),
                        other => unreachable!("Ready-but-disabled thread at {other:?}"),
                    };
                    blocked.push((tid, on));
                }
            }
        }
        if blocked.is_empty() {
            self.outcome = Some(self.finalize());
        } else {
            self.outcome = Some(Outcome::Deadlock { blocked });
        }
    }

    fn finalize(&self) -> Outcome {
        for (cond, msg) in self.program.final_asserts() {
            let v = cond.eval(&|_| 0, &|var| self.vars[var.index()]);
            if v == 0 {
                return Outcome::AssertFailed { thread: None, msg };
            }
        }
        Outcome::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn t(i: usize) -> ThreadId {
        ThreadId::from_index(i)
    }

    fn racy_counter() -> Program {
        let mut b = ProgramBuilder::new("racy");
        let v = b.var("counter", 0);
        for name in ["a", "b"] {
            b.thread(
                name,
                vec![
                    Stmt::read(v, "tmp"),
                    Stmt::write(v, Expr::local("tmp") + Expr::lit(1)),
                ],
            );
        }
        b.final_assert(Expr::shared(v).eq(Expr::lit(2)), "no lost update");
        b.build().unwrap()
    }

    #[test]
    fn sequential_run_is_correct() {
        let p = racy_counter();
        let mut e = Executor::new(&p);
        assert_eq!(e.run_sequential(100), Outcome::Ok);
        assert_eq!(e.vars(), &[2]);
        assert_eq!(e.steps(), 4);
    }

    #[test]
    fn interleaved_run_loses_update() {
        let p = racy_counter();
        let mut e = Executor::new(&p);
        // a reads, b reads, a writes, b writes -> lost update.
        let sched: Schedule = vec![t(0), t(1), t(0), t(1)].into();
        let out = e.replay(&sched, 100);
        assert!(matches!(out, Outcome::AssertFailed { thread: None, .. }));
        assert_eq!(e.vars(), &[1]);
    }

    #[test]
    fn exact_replay_reports_no_deviation() {
        let p = racy_counter();
        let mut e = Executor::new(&p);
        let sched: Schedule = vec![t(0), t(1), t(0), t(1)].into();
        let (out, dev) = e.replay_checked(&sched, 100);
        assert!(matches!(out, Outcome::AssertFailed { .. }));
        assert!(dev.is_exact(), "verbatim schedule must be exact: {dev:?}");
        assert_eq!(e.schedule_taken(), sched);
    }

    #[test]
    fn out_of_range_choices_are_counted_not_followed() {
        let p = racy_counter(); // two threads: index 99 cannot exist
        let mut e = Executor::new(&p);
        let sched: Schedule = vec![t(99), t(0), t(99), t(1), t(0), t(1)].into();
        let (out, dev) = e.replay_checked(&sched, 100);
        // The real entries drive the same lost-update interleaving.
        assert!(matches!(out, Outcome::AssertFailed { .. }));
        assert_eq!(dev.out_of_range, 2);
        assert_eq!(dev.not_enabled, 0);
        assert_eq!(dev.filled_in, 0);
        assert!(!dev.is_exact());
        // And the replay wrapper degrades by the exact same rule.
        let mut e2 = Executor::new(&p);
        assert_eq!(e2.replay(&sched, 100), out);
        assert_eq!(e2.schedule_taken(), e.schedule_taken());
    }

    #[test]
    fn finished_thread_choices_count_as_not_enabled() {
        let p = racy_counter();
        let mut e = Executor::new(&p);
        // t(0) finishes after two ops; the third t(0) entry is skipped
        // in favour of the next usable entry.
        let sched: Schedule = vec![t(0), t(0), t(0), t(1), t(1)].into();
        let (out, dev) = e.replay_checked(&sched, 100);
        assert_eq!(out, Outcome::Ok);
        assert_eq!(dev.not_enabled, 1);
        assert_eq!(dev.out_of_range, 0);
        assert_eq!(dev.filled_in, 0);
    }

    #[test]
    fn exhausted_schedule_counts_filled_in_steps() {
        let p = racy_counter();
        let mut e = Executor::new(&p);
        let sched: Schedule = vec![t(1)].into();
        let (out, dev) = e.replay_checked(&sched, 100);
        // t(1) reads, then lowest-id fill-in runs t(0) to completion
        // before t(1)'s write lands — the classic lost update.
        assert!(matches!(out, Outcome::AssertFailed { .. }));
        assert_eq!(dev.filled_in, 3);
        assert_eq!(dev.out_of_range, 0);
        assert_eq!(dev.not_enabled, 0);
    }

    #[test]
    fn step_rejects_disabled_thread() {
        let p = racy_counter();
        let mut e = Executor::new(&p);
        e.run_sequential(100);
        assert!(e.is_done());
        assert_eq!(
            e.step(t(0)).unwrap_err(),
            ExecError::ThreadNotEnabled { thread: t(0) }
        );
    }

    #[test]
    fn mutex_provides_mutual_exclusion() {
        let mut b = ProgramBuilder::new("locked");
        let v = b.var("counter", 0);
        let m = b.mutex();
        for name in ["a", "b"] {
            b.thread(
                name,
                vec![
                    Stmt::lock(m),
                    Stmt::read(v, "tmp"),
                    Stmt::write(v, Expr::local("tmp") + Expr::lit(1)),
                    Stmt::unlock(m),
                ],
            );
        }
        b.final_assert(Expr::shared(v).eq(Expr::lit(2)), "no lost update");
        let p = b.build().unwrap();
        // Adversarial: always prefer the *other* thread after each step.
        let mut e = Executor::new(&p);
        let out = e.run_with(100, |enabled| *enabled.last().unwrap());
        assert_eq!(out, Outcome::Ok);
        assert_eq!(e.vars(), &[2]);
    }

    #[test]
    fn abba_deadlocks_under_the_right_schedule() {
        let mut b = ProgramBuilder::new("abba");
        let m1 = b.mutex();
        let m2 = b.mutex();
        b.thread(
            "a",
            vec![
                Stmt::lock(m1),
                Stmt::lock(m2),
                Stmt::unlock(m2),
                Stmt::unlock(m1),
            ],
        );
        b.thread(
            "b",
            vec![
                Stmt::lock(m2),
                Stmt::lock(m1),
                Stmt::unlock(m1),
                Stmt::unlock(m2),
            ],
        );
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        let out = e.replay(&vec![t(0), t(1)].into(), 100);
        match out {
            Outcome::Deadlock { blocked } => {
                assert_eq!(blocked.len(), 2);
                assert_eq!(blocked[0], (t(0), BlockedOn::Mutex(m2)));
                assert_eq!(blocked[1], (t(1), BlockedOn::Mutex(m1)));
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn self_relock_deadlocks_with_one_thread() {
        let mut b = ProgramBuilder::new("self");
        let m = b.mutex();
        b.thread("a", vec![Stmt::lock(m), Stmt::lock(m)]);
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        let out = e.run_sequential(100);
        assert!(matches!(out, Outcome::Deadlock { ref blocked } if blocked.len() == 1));
    }

    #[test]
    fn unlock_not_held_is_misuse() {
        let mut b = ProgramBuilder::new("bad");
        let m = b.mutex();
        b.thread("a", vec![Stmt::unlock(m)]);
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        let out = e.run_sequential(100);
        assert!(matches!(
            out,
            Outcome::Misuse {
                error: ExecError::UnlockNotHeld { .. },
                ..
            }
        ));
    }

    #[test]
    fn condvar_signal_wakes_waiter() {
        let mut b = ProgramBuilder::new("cv");
        let ready = b.var("ready", 0);
        let m = b.mutex();
        let c = b.cond();
        b.thread(
            "consumer",
            vec![
                Stmt::lock(m),
                Stmt::read(ready, "r"),
                Stmt::while_loop(
                    Expr::local("r").eq(Expr::lit(0)),
                    vec![Stmt::Wait { cond: c, mutex: m }, Stmt::read(ready, "r")],
                ),
                Stmt::unlock(m),
                Stmt::assert(Expr::local("r").eq(Expr::lit(1)), "saw ready"),
            ],
        );
        b.thread(
            "producer",
            vec![
                Stmt::lock(m),
                Stmt::write(ready, 1),
                Stmt::Signal(c),
                Stmt::unlock(m),
            ],
        );
        let p = b.build().unwrap();
        // Consumer first: must wait, then get signalled.
        let mut e = Executor::new(&p);
        let out = e.replay(&vec![t(0), t(0), t(0)].into(), 200);
        assert_eq!(out, Outcome::Ok);
        // Producer first: consumer sees ready==1 and never waits.
        let mut e = Executor::new(&p);
        let out = e.replay(&vec![t(1), t(1), t(1), t(1)].into(), 200);
        assert_eq!(out, Outcome::Ok);
    }

    #[test]
    fn missed_signal_deadlocks() {
        // Signal before wait is lost; waiter then blocks forever.
        let mut b = ProgramBuilder::new("missed");
        let m = b.mutex();
        let c = b.cond();
        b.thread(
            "waiter",
            vec![
                Stmt::lock(m),
                Stmt::Wait { cond: c, mutex: m },
                Stmt::unlock(m),
            ],
        );
        b.thread("signaller", vec![Stmt::Signal(c)]);
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        // Signaller runs first -> signal lost -> waiter deadlocks.
        let out = e.replay(&vec![t(1), t(0), t(0)].into(), 100);
        assert!(matches!(
            out,
            Outcome::Deadlock { ref blocked } if blocked == &vec![(t(0), BlockedOn::Cond(c))]
        ));
    }

    #[test]
    fn semaphore_blocks_and_wakes() {
        let mut b = ProgramBuilder::new("sem");
        let s = b.semaphore(0);
        let v = b.var("x", 0);
        b.thread(
            "acq",
            vec![
                Stmt::SemAcquire(s),
                Stmt::read(v, "x"),
                Stmt::assert(Expr::local("x").eq(Expr::lit(1)), "after release"),
            ],
        );
        b.thread("rel", vec![Stmt::write(v, 1), Stmt::SemRelease(s)]);
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        let out = e.run_with(100, |enabled| enabled[0]);
        assert_eq!(out, Outcome::Ok);
    }

    #[test]
    fn spawn_and_join() {
        let mut b = ProgramBuilder::new("spawn");
        let v = b.var("x", 0);
        let child = b.thread_deferred("child", vec![Stmt::write(v, 7)]);
        b.thread(
            "parent",
            vec![
                Stmt::Spawn(child),
                Stmt::Join(child),
                Stmt::read(v, "x"),
                Stmt::assert(Expr::local("x").eq(Expr::lit(7)), "join ordered"),
            ],
        );
        let p = b.build().unwrap();
        for _ in 0..3 {
            let mut e = Executor::new(&p);
            let out = e.run_with(100, |enabled| *enabled.last().unwrap());
            assert_eq!(out, Outcome::Ok);
        }
    }

    #[test]
    fn join_on_never_spawned_thread_deadlocks() {
        let mut b = ProgramBuilder::new("orphan-join");
        let v = b.var("x", 0);
        let child = b.thread_deferred("child", vec![Stmt::write(v, 1)]);
        b.thread("parent", vec![Stmt::Join(child)]);
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        let out = e.run_sequential(100);
        assert!(matches!(
            out,
            Outcome::Deadlock { ref blocked } if blocked == &vec![(t(1), BlockedOn::Join(child))]
        ));
    }

    #[test]
    fn unspawned_thread_without_joiner_is_ok() {
        let mut b = ProgramBuilder::new("orphan");
        let v = b.var("x", 0);
        let _child = b.thread_deferred("child", vec![Stmt::write(v, 1)]);
        b.thread("parent", vec![Stmt::write(v, 2)]);
        b.final_assert(Expr::shared(v).eq(Expr::lit(2)), "only parent ran");
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        assert_eq!(e.run_sequential(100), Outcome::Ok);
    }

    #[test]
    fn rwlock_allows_concurrent_readers_blocks_writer() {
        let mut b = ProgramBuilder::new("rw");
        let rw = b.rwlock();
        let v = b.var("x", 0);
        b.thread(
            "r1",
            vec![Stmt::RwRead(rw), Stmt::read(v, "a"), Stmt::RwUnlock(rw)],
        );
        b.thread(
            "r2",
            vec![Stmt::RwRead(rw), Stmt::read(v, "a"), Stmt::RwUnlock(rw)],
        );
        b.thread(
            "w",
            vec![Stmt::RwWrite(rw), Stmt::write(v, 1), Stmt::RwUnlock(rw)],
        );
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        // Both readers enter; writer must not be enabled.
        e.step(t(0)).unwrap();
        e.step(t(1)).unwrap();
        assert!(!e.is_enabled(t(2)));
        // Finish readers; writer proceeds.
        let out = e.run_with(100, |en| en[0]);
        assert_eq!(out, Outcome::Ok);
    }

    #[test]
    fn rwlock_upgrade_self_deadlocks() {
        let mut b = ProgramBuilder::new("upgrade");
        let rw = b.rwlock();
        b.thread(
            "a",
            vec![Stmt::RwRead(rw), Stmt::RwWrite(rw), Stmt::RwUnlock(rw)],
        );
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        assert!(matches!(e.run_sequential(100), Outcome::Deadlock { .. }));
    }

    #[test]
    fn transaction_commits_serially() {
        let mut b = ProgramBuilder::new("tx");
        let v = b.var("x", 0);
        for name in ["a", "b"] {
            b.thread(
                name,
                vec![
                    Stmt::TxBegin,
                    Stmt::read(v, "tmp"),
                    Stmt::write(v, Expr::local("tmp") + Expr::lit(1)),
                    Stmt::TxCommit,
                ],
            );
        }
        b.final_assert(Expr::shared(v).eq(Expr::lit(2)), "tx increments serialize");
        let p = b.build().unwrap();
        // Even a fully interleaved schedule serializes: one tx aborts and retries.
        let mut e = Executor::new(&p);
        let out = e.run_with(200, |enabled| *enabled.last().unwrap());
        assert_eq!(out, Outcome::Ok);
        assert_eq!(e.vars(), &[2]);
    }

    #[test]
    fn transaction_abort_restores_locals() {
        let mut b = ProgramBuilder::new("tx-abort");
        let v = b.var("x", 0);
        let marker = b.var("m", 0);
        b.thread(
            "tx",
            vec![
                Stmt::local("acc", 100),
                Stmt::TxBegin,
                Stmt::read(v, "tmp"),
                Stmt::local("acc", Expr::local("acc") + Expr::lit(1)),
                Stmt::write(v, Expr::local("tmp") + Expr::lit(1)),
                Stmt::TxCommit,
                Stmt::assert(
                    Expr::local("acc").eq(Expr::lit(101)),
                    "acc incremented exactly once",
                ),
            ],
        );
        b.thread("other", vec![Stmt::write(v, 50), Stmt::write(marker, 1)]);
        let p = b.build().unwrap();
        // Interleave so the tx reads, the other thread writes, then commit
        // fails and retries.
        let mut e = Executor::new(&p);
        let sched: Schedule = vec![t(0), t(0), t(1), t(1), t(0)].into();
        let out = e.replay(&sched, 200);
        assert_eq!(out, Outcome::Ok);
        assert_eq!(e.vars()[0], 51);
    }

    #[test]
    fn io_journal_records_order() {
        let mut b = ProgramBuilder::new("io");
        b.thread("a", vec![Stmt::io("write-log-a")]);
        b.thread("b", vec![Stmt::io("write-log-b")]);
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        e.replay(&vec![t(1), t(0)].into(), 100);
        assert_eq!(
            e.io_journal(),
            &[(t(1), "write-log-b"), (t(0), "write-log-a")]
        );
    }

    #[test]
    fn trace_records_events_with_clocks() {
        let p = racy_counter();
        let mut e = Executor::with_record(&p, RecordMode::Full);
        e.run_sequential(100);
        let trace = e.into_trace();
        assert_eq!(trace.n_threads, 2);
        // 2 ThreadStart + 4 accesses + 2 ThreadExit
        assert_eq!(trace.len(), 8);
        assert_eq!(trace.accesses().count(), 4);
        let evs: Vec<_> = trace.accesses().collect();
        // Same-thread accesses are HB-ordered…
        assert!(evs[0].clock.le(&evs[1].clock));
        // …but cross-thread accesses without synchronization are
        // concurrent even under a sequential schedule.
        assert!(evs[0].clock.concurrent_with(&evs[3].clock));
    }

    #[test]
    fn concurrent_accesses_have_concurrent_clocks() {
        let p = racy_counter();
        let mut e = Executor::with_record(&p, RecordMode::Full);
        // Interleave reads: a-read, b-read are concurrent.
        e.replay(&vec![t(0), t(1), t(0), t(1)].into(), 100);
        let trace = e.into_trace();
        let reads: Vec<_> = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Read { .. }))
            .collect();
        assert_eq!(reads.len(), 2);
        assert!(reads[0].clock.concurrent_with(&reads[1].clock));
    }

    #[test]
    fn lock_induces_happens_before() {
        let mut b = ProgramBuilder::new("hb");
        let v = b.var("x", 0);
        let m = b.mutex();
        for name in ["a", "b"] {
            b.thread(
                name,
                vec![
                    Stmt::lock(m),
                    Stmt::read(v, "tmp"),
                    Stmt::write(v, Expr::local("tmp") + Expr::lit(1)),
                    Stmt::unlock(m),
                ],
            );
        }
        let p = b.build().unwrap();
        let mut e = Executor::with_record(&p, RecordMode::Full);
        e.run_sequential(100);
        let trace = e.into_trace();
        let accesses: Vec<_> = trace.accesses().collect();
        assert_eq!(accesses.len(), 4);
        for w in accesses.windows(2) {
            assert!(
                w[0].clock.le(&w[1].clock),
                "lock-ordered accesses must be HB-ordered"
            );
        }
    }

    #[test]
    fn step_limit_reported() {
        let mut b = ProgramBuilder::new("spin");
        let v = b.var("flag", 0);
        b.thread(
            "spinner",
            vec![
                Stmt::read(v, "f"),
                Stmt::while_loop(Expr::local("f").eq(Expr::lit(0)), vec![Stmt::read(v, "f")]),
            ],
        );
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        assert_eq!(e.run_sequential(50), Outcome::StepLimit);
    }

    #[test]
    fn schedule_taken_is_replayable() {
        let p = racy_counter();
        let mut e1 = Executor::new(&p);
        e1.run_with(100, |enabled| *enabled.last().unwrap());
        let sched = e1.schedule_taken().clone();
        let mut e2 = Executor::new(&p);
        let out2 = e2.replay(&sched, 100);
        assert_eq!(Some(&out2), e1.outcome());
        assert_eq!(e1.vars(), e2.vars());
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn t(i: usize) -> ThreadId {
        ThreadId::from_index(i)
    }

    #[test]
    fn fetch_max_and_min_semantics() {
        let mut b = ProgramBuilder::new("minmax");
        let v = b.var("x", 5);
        b.thread(
            "t",
            vec![
                Stmt::Rmw {
                    var: v,
                    op: RmwOp::FetchMax,
                    operand: Expr::lit(9),
                    into: Some("old1"),
                },
                Stmt::Rmw {
                    var: v,
                    op: RmwOp::FetchMin,
                    operand: Expr::lit(2),
                    into: Some("old2"),
                },
                Stmt::assert(Expr::local("old1").eq(Expr::lit(5)), "max returned old"),
                Stmt::assert(Expr::local("old2").eq(Expr::lit(9)), "min returned old"),
            ],
        );
        b.final_assert(Expr::shared(v).eq(Expr::lit(2)), "min applied last");
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        assert_eq!(e.run_sequential(100), Outcome::Ok);
    }

    #[test]
    fn cas_failure_reports_observed_value() {
        let mut b = ProgramBuilder::new("cas-observe");
        let v = b.var("x", 7);
        b.thread(
            "t",
            vec![
                Stmt::Cas {
                    var: v,
                    expected: Expr::lit(3),
                    new: Expr::lit(9),
                    into: "ok",
                    observed_into: Some("seen"),
                },
                Stmt::assert(Expr::local("ok").eq(Expr::lit(0)), "cas failed"),
                Stmt::assert(Expr::local("seen").eq(Expr::lit(7)), "observed current"),
            ],
        );
        b.final_assert(Expr::shared(v).eq(Expr::lit(7)), "value untouched");
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        assert_eq!(e.run_sequential(100), Outcome::Ok);
    }

    #[test]
    fn broadcast_wakes_all_waiters() {
        let mut b = ProgramBuilder::new("broadcast");
        let ready = b.var("ready", 0);
        let done = b.var("done", 0);
        let m = b.mutex();
        let c = b.cond();
        for name in ["w1", "w2"] {
            b.thread(
                name,
                vec![
                    Stmt::lock(m),
                    Stmt::read(ready, "r"),
                    Stmt::while_loop(
                        Expr::local("r").eq(Expr::lit(0)),
                        vec![Stmt::Wait { cond: c, mutex: m }, Stmt::read(ready, "r")],
                    ),
                    Stmt::unlock(m),
                    Stmt::fetch_add(done, 1),
                ],
            );
        }
        b.thread(
            "broadcaster",
            vec![
                Stmt::lock(m),
                Stmt::write(ready, 1),
                Stmt::Broadcast(c),
                Stmt::unlock(m),
            ],
        );
        b.final_assert(Expr::shared(done).eq(Expr::lit(2)), "both waiters woke");
        let p = b.build().unwrap();
        // Force both waiters to actually park before the broadcast.
        let mut e = Executor::new(&p);
        let out = e.replay(&vec![t(0), t(0), t(1), t(1), t(2)].into(), 500);
        assert_eq!(out, Outcome::Ok);
    }

    #[test]
    fn trylock_failure_leaves_mutex_and_locals_consistent() {
        let mut b = ProgramBuilder::new("trylock");
        let m = b.mutex();
        let v = b.var("who", 0);
        b.thread(
            "holder",
            vec![
                Stmt::lock(m),
                Stmt::write(v, 1),
                Stmt::Yield,
                Stmt::unlock(m),
            ],
        );
        b.thread(
            "taker",
            vec![
                Stmt::TryLock {
                    mutex: m,
                    into: "got",
                },
                Stmt::if_then(
                    Expr::local("got").ne(Expr::lit(0)),
                    vec![Stmt::write(v, 2), Stmt::unlock(m)],
                ),
            ],
        );
        let p = b.build().unwrap();
        // holder locks; taker try_lock fails; holder finishes.
        let mut e = Executor::new(&p);
        let out = e.replay(&vec![t(0), t(1), t(0), t(0), t(0)].into(), 100);
        assert_eq!(out, Outcome::Ok);
        assert_eq!(e.vars(), &[1]);
    }

    #[test]
    fn wait_without_mutex_is_misuse() {
        let mut b = ProgramBuilder::new("bad-wait");
        let m = b.mutex();
        let c = b.cond();
        b.thread("t", vec![Stmt::Wait { cond: c, mutex: m }]);
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        let out = e.run_sequential(100);
        assert!(matches!(
            out,
            Outcome::Misuse {
                error: ExecError::WaitWithoutMutex { .. },
                ..
            }
        ));
    }

    #[test]
    fn rw_unlock_not_held_is_misuse() {
        let mut b = ProgramBuilder::new("bad-rw");
        let rw = b.rwlock();
        b.thread("t", vec![Stmt::RwUnlock(rw)]);
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        assert!(matches!(
            e.run_sequential(100),
            Outcome::Misuse {
                error: ExecError::RwUnlockNotHeld { .. },
                ..
            }
        ));
    }

    #[test]
    fn double_spawn_is_misuse() {
        let mut b = ProgramBuilder::new("double-spawn");
        let v = b.var("x", 0);
        let child = b.thread_deferred("child", vec![Stmt::write(v, 1)]);
        b.thread("parent", vec![Stmt::Spawn(child), Stmt::Spawn(child)]);
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        // Run the parent only: spawn, then spawn again.
        let out = e.replay(&vec![t(1), t(1)].into(), 100);
        assert!(matches!(
            out,
            Outcome::Misuse {
                error: ExecError::DoubleSpawn { .. },
                ..
            }
        ));
    }

    #[test]
    fn local_infinite_loop_exhausts_fuel() {
        let mut b = ProgramBuilder::new("spin-local");
        let v = b.var("x", 0);
        b.thread(
            "t",
            vec![
                Stmt::read(v, "stop"),
                // Pure-local infinite loop: no visible op inside.
                Stmt::while_loop(
                    Expr::lit(1),
                    vec![Stmt::local("i", Expr::local("i") + Expr::lit(1))],
                ),
            ],
        );
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        let out = e.run_sequential(100);
        assert!(matches!(
            out,
            Outcome::Misuse {
                error: ExecError::LocalFuelExhausted,
                ..
            }
        ));
    }

    #[test]
    fn tx_retry_limit_is_reported() {
        let mut b = ProgramBuilder::new("retry-forever");
        let v = b.var("never", 0);
        b.thread(
            "t",
            vec![
                Stmt::TxBegin,
                Stmt::read(v, "n"),
                Stmt::if_then(Expr::local("n").eq(Expr::lit(0)), vec![Stmt::TxRetry]),
                Stmt::TxCommit,
            ],
        );
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        let out = e.run_sequential(10_000);
        assert!(matches!(out, Outcome::TxRetryLimit { .. }), "{out}");
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn t(i: usize) -> ThreadId {
        ThreadId::from_index(i)
    }

    fn racy_counter() -> Program {
        let mut b = ProgramBuilder::new("racy");
        let v = b.var("counter", 0);
        for name in ["a", "b"] {
            b.thread(
                name,
                vec![
                    Stmt::read(v, "tmp"),
                    Stmt::write(v, Expr::local("tmp") + Expr::lit(1)),
                ],
            );
        }
        b.final_assert(Expr::shared(v).eq(Expr::lit(2)), "no lost update");
        b.build().unwrap()
    }

    /// A plan firing only `kind`, always.
    fn only(kind: FaultKind) -> FaultPlan {
        let mut plan = FaultPlan {
            seed: 0,
            spurious_wakeup_pct: 0,
            trylock_fail_pct: 0,
            tx_abort_pct: 0,
            stall_pct: 0,
            stall_window: 1,
        };
        match kind {
            FaultKind::SpuriousWakeup => plan.spurious_wakeup_pct = 100,
            FaultKind::TryLockFail => plan.trylock_fail_pct = 100,
            FaultKind::TxAbort => plan.tx_abort_pct = 100,
            FaultKind::Stall => plan.stall_pct = 100,
        }
        plan
    }

    fn wait_program(predicate_loop: bool) -> Program {
        let mut b = ProgramBuilder::new(if predicate_loop { "cv-loop" } else { "cv-if" });
        let ready = b.var("ready", 0);
        let m = b.mutex();
        let c = b.cond();
        let mut waiter = vec![Stmt::lock(m), Stmt::read(ready, "r")];
        if predicate_loop {
            waiter.push(Stmt::while_loop(
                Expr::local("r").eq(Expr::lit(0)),
                vec![Stmt::Wait { cond: c, mutex: m }, Stmt::read(ready, "r")],
            ));
        } else {
            waiter.push(Stmt::if_then(
                Expr::local("r").eq(Expr::lit(0)),
                vec![Stmt::Wait { cond: c, mutex: m }, Stmt::read(ready, "r")],
            ));
        }
        waiter.push(Stmt::assert(
            Expr::local("r").eq(Expr::lit(1)),
            "predicate holds after wait",
        ));
        waiter.push(Stmt::unlock(m));
        b.thread("waiter", waiter);
        b.thread(
            "producer",
            vec![
                Stmt::lock(m),
                Stmt::write(ready, 1),
                Stmt::Signal(c),
                Stmt::unlock(m),
            ],
        );
        b.build().unwrap()
    }

    #[test]
    fn spurious_wakeup_breaks_if_guarded_wait() {
        let p = wait_program(false);
        let mut e = Executor::new(&p);
        e.set_fault_plan(only(FaultKind::SpuriousWakeup));
        // Waiter parks... spuriously wakes with ready still 0.
        let out = e.replay(&vec![t(0), t(0), t(0), t(0)].into(), 200);
        assert!(
            matches!(out, Outcome::AssertFailed { .. }),
            "if-guarded wait must fail under spurious wakeup, got {out}"
        );
    }

    #[test]
    fn spurious_wakeup_is_survived_by_predicate_loop() {
        let p = wait_program(true);
        let mut e = Executor::new(&p);
        e.set_fault_plan(only(FaultKind::SpuriousWakeup));
        // The waiter's spurious wakeup releases the mutex; the producer
        // slips in, sets the flag (its signal finds no parked waiter and
        // is lost), and the loop re-checks the predicate and exits.
        let out = e.replay(&vec![t(0), t(0), t(0), t(1), t(1), t(1), t(1)].into(), 500);
        assert_eq!(out, Outcome::Ok);
    }

    #[test]
    fn producer_first_is_ok_under_spurious_plan() {
        let p = wait_program(true);
        let mut e = Executor::new(&p);
        e.set_fault_plan(only(FaultKind::SpuriousWakeup));
        let out = e.replay(&vec![t(1), t(1), t(1), t(1)].into(), 500);
        assert_eq!(out, Outcome::Ok);
    }

    #[test]
    fn forced_trylock_failure_takes_the_failure_path() {
        let mut b = ProgramBuilder::new("trylock-chaos");
        let m = b.mutex();
        b.thread(
            "t",
            vec![
                Stmt::TryLock {
                    mutex: m,
                    into: "got",
                },
                Stmt::assert(
                    Expr::local("got").eq(Expr::lit(0)),
                    "trylock forced to fail",
                ),
            ],
        );
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        e.set_fault_plan(only(FaultKind::TryLockFail));
        assert_eq!(e.run_sequential(100), Outcome::Ok);
        // The mutex must remain free after a forced failure.
        let mut e2 = Executor::new(&p);
        e2.set_fault_plan(only(FaultKind::TryLockFail));
        e2.step(t(0)).unwrap();
        assert!(e2.cold.mutexes[m.index()].owner.is_none());
    }

    #[test]
    fn forced_tx_abort_at_full_rate_exhausts_retries() {
        let mut b = ProgramBuilder::new("tx-chaos");
        let v = b.var("x", 0);
        b.thread(
            "t",
            vec![
                Stmt::TxBegin,
                Stmt::read(v, "tmp"),
                Stmt::write(v, Expr::local("tmp") + Expr::lit(1)),
                Stmt::TxCommit,
            ],
        );
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        e.set_fault_plan(only(FaultKind::TxAbort));
        let out = e.run_sequential(10_000);
        assert!(matches!(out, Outcome::TxRetryLimit { .. }), "{out}");
    }

    #[test]
    fn moderate_tx_abort_rate_eventually_commits() {
        let mut b = ProgramBuilder::new("tx-moderate");
        let v = b.var("x", 0);
        b.thread(
            "t",
            vec![
                Stmt::TxBegin,
                Stmt::read(v, "tmp"),
                Stmt::write(v, Expr::local("tmp") + Expr::lit(1)),
                Stmt::TxCommit,
            ],
        );
        b.final_assert(Expr::shared(v).eq(Expr::lit(1)), "committed once");
        let p = b.build().unwrap();
        let mut e = Executor::new(&p);
        e.set_fault_plan(FaultPlan::new(42));
        assert_eq!(e.run_sequential(10_000), Outcome::Ok);
    }

    #[test]
    fn stall_filter_never_empties_the_enabled_set() {
        let p = racy_counter();
        // 100% stall: every thread is always stalled, so the filter falls
        // back to the unfiltered set and the run still completes.
        let mut e = Executor::new(&p);
        e.set_fault_plan(only(FaultKind::Stall));
        while !e.is_done() {
            let enabled = e.enabled();
            assert!(!enabled.is_empty());
            e.step(enabled[0]).unwrap();
        }
    }

    #[test]
    fn fault_decisions_survive_cloning() {
        let p = racy_counter();
        let mut a = Executor::new(&p);
        a.set_fault_plan(FaultPlan::new(7));
        let mut b = a.clone();
        let out_a = a.run_with(100, |en| *en.last().unwrap());
        let out_b = b.run_with(100, |en| *en.last().unwrap());
        assert_eq!(out_a, out_b);
        assert_eq!(a.vars(), b.vars());
        assert_eq!(a.schedule_taken(), b.schedule_taken());
    }
}
