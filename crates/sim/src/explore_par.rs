//! Parallel state-space exploration with a deterministic merge.
//!
//! [`ParExplorer`] shards the schedule frontier across N OS worker
//! threads and still produces a report **bit-identical** to the serial
//! [`Explorer`](crate::Explorer)'s (modulo `stats.wall`, which times the
//! run). The trick is to split the search into a *speculative* half and
//! a *canonical* half:
//!
//! - **Workers** pull *branch prefixes* (snapshots of the executor at a
//!   state with more than one enabled thread) from work-stealing deques
//!   and *expand* them: for every enabled choice they clone the
//!   snapshot, take the step, and run forward to the next branch point
//!   or terminal outcome — exactly the per-choice body of the serial
//!   DFS loop. Expansion is a pure function of the prefix (sleep sets,
//!   preemption accounting, and [`FaultPlan`] decisions are all
//!   computed locally and deterministically), so it can happen on any
//!   worker, in any order, without affecting the result.
//! - The **coordinator** (the calling thread) walks the expansion
//!   results in exactly the serial DFS's preorder and owns every
//!   order-sensitive decision at *commit* time: state-dedup verdicts,
//!   schedule/wall budgets, outcome classification, witness selection
//!   (`first_failure` / `first_ok`), and all [`ExploreStats`] counters.
//!
//! Because only the commit walk mutates the report, and the walk
//! visits records in the serial order, every field of the merged
//! [`ExploreReport`] matches the serial explorer's for the same program
//! and budget — the differential harness in
//! `crates/kernels/tests/par_equivalence.rs` asserts this field for
//! field over every kernel variant.
//!
//! The seen-state set is a sharded, lock-striped table over the same
//! [`Executor::state_key`] hashing the serial explorer uses, mapping
//! each key to the id of the prefix that committed it first. The
//! coordinator is its only writer (inserts happen at commit, in
//! preorder), which keeps dedup decisions canonical; workers read it as
//! a *speculation filter* — a key already won by a *different* prefix
//! is guaranteed to be deduped at commit, so the expansion can be
//! skipped early. (The winner id matters: the committed prefix itself
//! observes its own key in the table and must still be expanded.)
//! Wall-clock deadlines and early stops propagate through a shared
//! atomic stop flag that every worker polls between choices.
//!
//! Under [`ExploreLimits::dpor`] the same split applies, but the
//! speculative half widens and the canonical half narrows: workers
//! expand *every* enabled child of a prefix (recording the footprints
//! executed along each edge), while the coordinator replays the serial
//! DPOR walk through its own [`Dpor`] engine — same enabled orders,
//! same footprints, same race log, hence the same backtrack sets and
//! selection sequence, and a bit-identical report. A child's expansion
//! is handed to the pool the moment the child enters a backtrack set;
//! children that never do are dropped unread and counted as
//! `dpor_pruned`, exactly like the serial explorer's.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

use lfm_obs::{
    eta_ms, Event, KnuthEstimator, NoopSink, Phase, PhaseProfile, PhaseProfiler, ProgressTracker,
    Sink, Stopwatch, Value,
};

use crate::dpor::Dpor;
use crate::exec::{Executor, RecordMode};
use crate::explore::{
    ExploreLimits, ExploreReport, ExploreStats, OutcomeCounts, PROGRESS_CHECK_EVERY, PROGRESS_EVERY,
};
use crate::fault::FaultPlan;
use crate::footprint::Footprint;
use crate::frontier::{self, Advance, Mode};
use crate::ids::ThreadId;
use crate::outcome::Outcome;
use crate::program::Program;
use crate::schedule::Schedule;

/// Number of independently locked shards in the seen-state set. Spreads
/// worker-side filter reads and coordinator-side commit writes over
/// distinct locks.
const SEEN_STRIPES: usize = 16;

/// How long an idle worker or a waiting coordinator parks before
/// re-checking its condition. Bounds the lost-wakeup window of the
/// cross-lock notify protocol.
const PARK: Duration = Duration::from_micros(200);

/// Sharded, lock-striped seen-state set keyed by
/// [`Executor::state_key`], mapping each key to the id of the branch
/// prefix that committed it first. The commit walk is the only writer,
/// so an observed entry is a *stable* verdict — which is what makes the
/// worker-side speculation filter sound: a prefix whose key is already
/// owned by a different id can never survive its own commit.
#[derive(Debug)]
struct StripedSet {
    stripes: Vec<RwLock<HashMap<u64, u64, crate::fxhash::FxBuild>>>,
}

impl StripedSet {
    fn new() -> StripedSet {
        StripedSet {
            stripes: (0..SEEN_STRIPES).map(|_| RwLock::default()).collect(),
        }
    }

    fn stripe(&self, key: u64) -> &RwLock<HashMap<u64, u64, crate::fxhash::FxBuild>> {
        &self.stripes[(key as usize) % SEEN_STRIPES]
    }

    /// Coordinator-only: claims `key` for prefix `id` at commit time.
    /// Returns `false` when the key was already won by an earlier
    /// prefix (the dedup verdict).
    fn insert(&self, key: u64, id: u64) -> bool {
        match self.stripe(key).write().expect("seen stripe").entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(id);
                true
            }
        }
    }

    /// Worker-side speculation filter: `true` when `key` was committed
    /// by a prefix *other than* `id`, i.e. expanding `id` is dead work.
    fn lost_race(&self, key: u64, id: u64) -> bool {
        self.stripe(key)
            .read()
            .expect("seen stripe")
            .get(&key)
            .is_some_and(|&winner| winner != id)
    }
}

/// An unexplored branch prefix: the unit of work a worker claims.
#[derive(Debug)]
struct Task {
    id: u64,
    /// `state_key` of the snapshot (0 when dedup is off).
    key: u64,
    exec: Executor,
    enabled: Vec<ThreadId>,
    preemptions: u32,
    sleep: Vec<ThreadId>,
    /// Set by the coordinator when this prefix is deduped at commit;
    /// lets an in-flight expansion abort early.
    cancel: Arc<AtomicBool>,
}

/// One child of an expanded branch prefix, in serial choice order.
#[derive(Debug)]
enum ChildRec {
    /// Choice skipped by the parent's sleep set.
    SleepPruned,
    /// Choice skipped by the preemption bound.
    PreemptionLimited,
    /// Run-forward ended with every enabled thread asleep: the subtree
    /// is covered by explored siblings.
    Redundant {
        /// Snapshot bytes the COW clone avoided copying (see
        /// [`Executor::snapshot_bytes_saved`]); carried to the commit
        /// walk so serial and parallel totals match.
        saved: u64,
        /// Invisible steps fused into this edge's run-forward; carried
        /// to the commit walk so serial and parallel totals match.
        fused: u64,
    },
    /// A complete schedule. The witness schedule is carried only by the
    /// first failing and first passing child of each expansion — the
    /// only ones the commit walk can ever need.
    Terminal {
        outcome: Outcome,
        steps: u64,
        schedule: Option<Schedule>,
        saved: u64,
        fused: u64,
    },
    /// A deeper branch prefix; its [`Task`] is handed to the deques
    /// when the parent commits.
    Branch {
        id: u64,
        key: u64,
        cancel: Arc<AtomicBool>,
        task: Option<Box<Task>>,
        saved: u64,
        fused: u64,
    },
}

/// One child of a branch prefix expanded in DPOR mode, in enabled
/// order. Unlike [`ChildRec`], *every* enabled choice is expanded — the
/// coordinator's DPOR walk decides afterwards which children it needs;
/// the rest are dropped unread (`dpor_pruned`).
#[derive(Debug)]
struct DporRec {
    /// Forced steps the run-forward took after the chosen step, with
    /// the footprints they had at execution time — the coordinator
    /// replays them into its race log at commit.
    forced: Vec<(ThreadId, Footprint)>,
    /// Prefix snapshot bytes the COW clone avoided copying (identical
    /// for every child; see [`ChildRec::Redundant::saved`]).
    saved: u64,
    /// Invisible steps fused into this edge's run-forward (they are
    /// also in `forced`, with their footprints); carried to the commit
    /// walk so serial and parallel totals match.
    fused: u64,
    end: DporEnd,
}

/// Where a DPOR-mode child edge ended.
#[derive(Debug)]
enum DporEnd {
    /// The run-forward reached a terminal outcome. Every DPOR terminal
    /// carries its schedule: which child becomes the witness depends on
    /// backtrack-set evolution the worker cannot see.
    Terminal {
        outcome: Outcome,
        steps: u64,
        schedule: Schedule,
        /// Next-op footprints of the threads the terminal cut off
        /// before they ran ([`frontier::pending_ops`]) — the
        /// coordinator feeds them to [`Dpor::pending_race`] exactly as
        /// the serial driver does.
        pending: Vec<(ThreadId, Footprint)>,
    },
    /// A deeper branch prefix. Its [`Task`] is handed to the deques
    /// only if the child ever enters the parent frame's backtrack set;
    /// `cancel` lets the coordinator scrub a dispatched expansion whose
    /// subtree sleep sets later prove redundant.
    Branch {
        id: u64,
        /// Enabled threads at the child state, in scheduler order.
        enabled: Vec<ThreadId>,
        /// Next-op footprints, parallel to `enabled` — the child
        /// frame's [`Dpor::push_frame`] input.
        fps: Vec<Footprint>,
        cancel: Arc<AtomicBool>,
        task: Option<Box<Task>>,
    },
}

/// What one worker produced for one claimed task: the classic
/// sleep/preemption-aware child records, or the DPOR-mode all-children
/// records.
#[derive(Debug)]
enum Expanded {
    Classic(Vec<ChildRec>),
    Dpor(Vec<DporRec>),
}

/// Result of expanding one branch prefix. `Err` carries a panic payload
/// out of a worker so the coordinator can re-raise it.
type Expansion = Result<Expanded, String>;

/// Per-worker activity counters, updated with relaxed atomics and
/// snapshotted into [`WorkerStats`] after the run.
#[derive(Debug, Default)]
struct WorkerCounters {
    claimed: AtomicU64,
    steals: AtomicU64,
    filter_hits: AtomicU64,
    idle_spins: AtomicU64,
}

/// What one worker thread did during a parallel exploration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Branch prefixes this worker claimed (from its own deque, a
    /// steal, or the injector).
    pub claimed: u64,
    /// Claims that came from another worker's deque.
    pub steals: u64,
    /// Claims skipped because the seen-state filter proved the prefix
    /// would be deduped at commit.
    pub filter_hits: u64,
    /// Times the worker found every deque empty and parked.
    pub idle_spins: u64,
}

/// Operational statistics of a [`ParExplorer`] run, alongside the
/// deterministic [`ExploreReport`]. Everything here describes *how* the
/// work was scheduled, never *what* was found, and so may vary from run
/// to run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParStats {
    /// Number of worker threads used.
    pub jobs: usize,
    /// Per-worker activity counters.
    pub workers: Vec<WorkerStats>,
    /// Branch prefixes handed to the deques (including the root).
    pub tasks_spawned: u64,
    /// Expansions discarded because the prefix was deduped at commit
    /// after the work had already been claimed.
    pub wasted_expansions: u64,
    /// Per-worker phase profiles (all-zero unless the explorer was
    /// given an enabled [`PhaseProfiler`]); the coordinator's own
    /// commit/dedup/hash time lands on the profiler handed to
    /// [`ParExplorer::profile`].
    pub profiles: Vec<PhaseProfile>,
}

impl ParStats {
    /// Sum of `claimed` over all workers.
    pub fn total_claimed(&self) -> u64 {
        self.workers.iter().map(|w| w.claimed).sum()
    }

    /// Sum of `steals` over all workers.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Sum of `filter_hits` over all workers.
    pub fn total_filter_hits(&self) -> u64 {
        self.workers.iter().map(|w| w.filter_hits).sum()
    }
}

/// State shared between the coordinator and the worker pool.
#[derive(Debug)]
struct Shared {
    /// One deque per worker; the owner pops the front, thieves steal
    /// the back. The coordinator round-robins committed children across
    /// deques, so every worker has a home queue to drain before it goes
    /// stealing.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Parking lot for idle workers (paired mutex carries no data; the
    /// queues themselves are the condition).
    idle: Mutex<()>,
    work_cv: Condvar,
    /// Finished expansions keyed by task id, consumed by the commit
    /// walk.
    results: Mutex<HashMap<u64, Expansion>>,
    result_cv: Condvar,
    stop: AtomicBool,
    seen: StripedSet,
    next_id: AtomicU64,
    counters: Vec<WorkerCounters>,
}

impl Shared {
    fn new(jobs: usize) -> Shared {
        Shared {
            queues: (0..jobs).map(|_| Mutex::default()).collect(),
            idle: Mutex::new(()),
            work_cv: Condvar::new(),
            results: Mutex::default(),
            result_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            seen: StripedSet::new(),
            next_id: AtomicU64::new(1),
            counters: (0..jobs).map(|_| WorkerCounters::default()).collect(),
        }
    }

    /// Sets the stop flag and wakes every parked worker. Called on
    /// every coordinator exit path (including unwinds, via
    /// [`StopGuard`]) so no worker outlives the walk.
    fn halt(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _guard = self.idle.lock().expect("idle lock");
        self.work_cv.notify_all();
    }
}

/// Drop guard guaranteeing workers are released even if the commit walk
/// panics; `std::thread::scope` would otherwise join forever.
struct StopGuard<'a>(&'a Shared);

impl Drop for StopGuard<'_> {
    fn drop(&mut self) {
        self.0.halt();
    }
}

/// Expands one branch prefix: the per-choice body of the serial DFS
/// loop (sleep sets, preemption bounds, snapshot, run-forward), minus
/// everything order-sensitive (dedup, budgets, classification), which
/// the coordinator replays at commit time.
fn expand(
    task: &Task,
    limits: &ExploreLimits,
    sleep_on: bool,
    fuse: bool,
    shared: &Shared,
    profiler: &PhaseProfiler,
) -> Vec<ChildRec> {
    let mut children = Vec::with_capacity(task.enabled.len());
    let mut sleep = task.sleep.clone();
    // Identical for every child of this prefix (the prefix executor is
    // never mutated during expansion), matching what the serial
    // explorer accumulates at its clone site.
    let saved = task.exec.snapshot_bytes_saved();
    let mut have_fail_witness = false;
    let mut have_ok_witness = false;
    for &choice in &task.enabled {
        // A set stop flag means the coordinator has stopped walking; a
        // set cancel flag means this prefix was deduped at commit.
        // Either way the (partial) expansion will never be read.
        if shared.stop.load(Ordering::Relaxed) || task.cancel.load(Ordering::Relaxed) {
            break;
        }
        if sleep_on && sleep.contains(&choice) {
            children.push(ChildRec::SleepPruned);
            continue;
        }

        // Preemption accounting: switching away from a thread that is
        // still enabled counts against the bound.
        let mut preemptions = task.preemptions;
        if let Some(bound) = limits.max_preemptions {
            if let Some(last) = task.exec.last_scheduled() {
                if last != choice && task.enabled.contains(&last) {
                    preemptions += 1;
                    if preemptions > bound {
                        children.push(ChildRec::PreemptionLimited);
                        continue;
                    }
                }
            }
        }

        // Sleep propagation: a sleeping sibling stays asleep in the
        // child iff its pending op commutes with the chosen one.
        let mut child_sleep: Vec<ThreadId> = Vec::new();
        if sleep_on {
            let choice_fp = task.exec.next_footprint(choice);
            for &s in &sleep {
                let keep = match (&choice_fp, task.exec.next_footprint(s)) {
                    (Some(a), Some(b)) => a.independent(&b),
                    _ => false,
                };
                if keep {
                    child_sleep.push(s);
                }
            }
            sleep.push(choice);
        }

        let snap_guard = profiler.enter(Phase::Snapshot);
        let child = task.exec.clone();
        drop(snap_guard);
        let step_guard = profiler.enter(Phase::Step);
        let mut fused = 0u64;
        let next = frontier::advance(
            child,
            choice,
            limits.max_steps,
            sleep_on,
            &mut child_sleep,
            fuse,
            &mut fused,
        );
        drop(step_guard);
        match next {
            Advance::Terminal(exec, outcome) => {
                // Only the first failing / first passing child of an
                // expansion can ever become the global witness, so only
                // those carry their schedule.
                let want_witness = (outcome.is_failure() && !have_fail_witness)
                    || (outcome.is_ok() && !have_ok_witness);
                let schedule = want_witness.then(|| exec.schedule_taken());
                have_fail_witness |= outcome.is_failure();
                have_ok_witness |= outcome.is_ok();
                children.push(ChildRec::Terminal {
                    outcome,
                    steps: exec.steps() as u64,
                    schedule,
                    saved,
                    fused,
                });
            }
            Advance::Branch(exec, enabled) => {
                let key = if limits.dedup_states {
                    profiler.time(Phase::Hash, || exec.state_key())
                } else {
                    0
                };
                let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
                let cancel = Arc::new(AtomicBool::new(false));
                children.push(ChildRec::Branch {
                    id,
                    key,
                    cancel: Arc::clone(&cancel),
                    task: Some(Box::new(Task {
                        id,
                        key,
                        exec,
                        enabled,
                        preemptions,
                        sleep: child_sleep,
                        cancel,
                    })),
                    saved,
                    fused,
                });
            }
            Advance::Redundant => children.push(ChildRec::Redundant { saved, fused }),
        }
    }
    children
}

/// Expands one branch prefix in DPOR mode: every enabled choice is
/// cloned, stepped, and run forward with [`frontier::advance_dpor`].
/// No sleep or preemption logic runs here — DPOR redundancy verdicts
/// belong to the coordinator's race log, which needs the footprints
/// recorded along every edge.
fn expand_dpor(
    task: &Task,
    limits: &ExploreLimits,
    fuse: bool,
    shared: &Shared,
    profiler: &PhaseProfiler,
) -> Vec<DporRec> {
    let mut recs = Vec::with_capacity(task.enabled.len());
    let saved = task.exec.snapshot_bytes_saved();
    for &choice in &task.enabled {
        if shared.stop.load(Ordering::Relaxed) || task.cancel.load(Ordering::Relaxed) {
            break;
        }
        let snap_guard = profiler.enter(Phase::Snapshot);
        let child = task.exec.clone();
        drop(snap_guard);
        let step_guard = profiler.enter(Phase::Step);
        let mut forced = Vec::new();
        let mut fused = 0u64;
        let next = frontier::advance_dpor(
            child,
            choice,
            limits.max_steps,
            fuse,
            &mut forced,
            &mut fused,
        );
        drop(step_guard);
        let end = match next {
            Advance::Terminal(exec, outcome) => DporEnd::Terminal {
                outcome,
                steps: exec.steps() as u64,
                schedule: exec.schedule_taken(),
                pending: frontier::pending_ops(&exec),
            },
            Advance::Branch(exec, enabled) => {
                let fps = enabled
                    .iter()
                    .map(|&t| {
                        exec.next_footprint(t)
                            .expect("an enabled thread has a next op")
                    })
                    .collect();
                let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
                let cancel = Arc::new(AtomicBool::new(false));
                DporEnd::Branch {
                    id,
                    enabled: enabled.clone(),
                    fps,
                    cancel: Arc::clone(&cancel),
                    task: Some(Box::new(Task {
                        id,
                        key: 0,
                        exec,
                        enabled,
                        preemptions: 0,
                        sleep: Vec::new(),
                        cancel,
                    })),
                }
            }
            Advance::Redundant => unreachable!("the DPOR forward run never prunes"),
        };
        recs.push(DporRec {
            forced,
            saved,
            fused,
            end,
        });
    }
    recs
}

/// Claims a task: own deque first (front), then a sweep over the other
/// workers' deques (back — classic work stealing).
fn claim(me: usize, shared: &Shared) -> Option<(Task, bool)> {
    if let Some(task) = shared.queues[me].lock().expect("queue lock").pop_front() {
        return Some((task, false));
    }
    let n = shared.queues.len();
    for d in 1..n {
        let victim = (me + d) % n;
        if let Some(task) = shared.queues[victim].lock().expect("queue lock").pop_back() {
            return Some((task, true));
        }
    }
    None
}

fn worker_loop(
    me: usize,
    limits: &ExploreLimits,
    mode: Mode,
    shared: &Shared,
    profiler: &PhaseProfiler,
) {
    let counters = &shared.counters[me];
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match profiler.time(Phase::Steal, || claim(me, shared)) {
            Some((task, stolen)) => {
                counters.claimed.fetch_add(1, Ordering::Relaxed);
                if stolen {
                    counters.steals.fetch_add(1, Ordering::Relaxed);
                }
                if task.cancel.load(Ordering::Relaxed) {
                    continue;
                }
                // Speculation filter: the coordinator is the seen set's
                // only writer, so a key owned by another prefix proves
                // this one will be deduped at commit and the expansion
                // is dead work. (The owner itself must still expand —
                // its key lands in the set at its *own* commit, right
                // before the coordinator waits on this expansion.)
                if mode.dedup && shared.seen.lost_race(task.key, task.id) {
                    counters.filter_hits.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let expansion = catch_unwind(AssertUnwindSafe(|| {
                    if mode.dpor {
                        Expanded::Dpor(expand_dpor(&task, limits, mode.fuse, shared, profiler))
                    } else {
                        Expanded::Classic(expand(
                            &task, limits, mode.sleep, mode.fuse, shared, profiler,
                        ))
                    }
                }))
                .map_err(|payload| {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_owned())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "worker panicked".to_owned());
                    msg
                });
                let mut results = shared.results.lock().expect("results lock");
                results.insert(task.id, expansion);
                shared.result_cv.notify_one();
            }
            None => {
                counters.idle_spins.fetch_add(1, Ordering::Relaxed);
                let idle_guard = profiler.enter(Phase::Idle);
                let guard = shared.idle.lock().expect("idle lock");
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                // Timed park: a task can land between the failed claim
                // sweep and this wait, so never sleep unbounded.
                let _ = shared.work_cv.wait_timeout(guard, PARK).expect("idle wait");
                drop(idle_guard);
            }
        }
    }
}

/// One frame of the coordinator's commit walk; mirrors the serial DFS
/// stack one-to-one.
enum Frame {
    /// Waiting for the expansion of a committed branch prefix. The
    /// `f64` is the product of branching degrees along the path *above*
    /// this prefix (1.0 at the root); the prefix's own degree is folded
    /// in once the expansion arrives.
    Pending(u64, f64),
    /// Walking an expansion's children in serial choice order.
    /// `path_degree` is the Knuth estimator's degree product including
    /// this prefix's own branching degree — exactly the serial
    /// explorer's per-branch `path_degree`.
    Open {
        children: Vec<ChildRec>,
        next: usize,
        path_degree: f64,
    },
}

/// One frame of the coordinator's DPOR commit walk; mirrors the serial
/// `run_dpor` stack (and the [`Dpor`] frame stack) one-to-one.
#[derive(Debug)]
struct DporWalk {
    /// Expansion id of this frame's branch prefix; waited on lazily the
    /// first time the walk visits the frame.
    id: u64,
    /// Enabled threads at the branch state — the order the expansion's
    /// records arrive in.
    enabled: Vec<ThreadId>,
    /// Product of *full* branching degrees along the path including
    /// this frame's own degree, so the tree-size estimate keeps
    /// estimating the full space and the reduction stays visible.
    path_degree: f64,
    /// `None` until the expansion is resolved; `recs[i]` is taken when
    /// child `enabled[i]` is committed.
    recs: Option<Vec<Option<DporRec>>>,
    /// Whether each child's speculative expansion was handed to the
    /// pool (set when the child enters the backtrack set awake).
    enqueued: Vec<bool>,
}

/// Parallel depth-first interleaving explorer over a [`Program`].
///
/// Produces reports bit-identical to [`Explorer`](crate::Explorer) for
/// the same program and [`ExploreLimits`] (see the module docs for the
/// determinism argument); `run_detailed` additionally returns
/// [`ParStats`] describing worker activity.
#[derive(Debug)]
pub struct ParExplorer<'p> {
    program: &'p Program,
    limits: ExploreLimits,
    jobs: usize,
    sink: Arc<dyn Sink>,
    fault: Option<FaultPlan>,
    profile: Arc<PhaseProfiler>,
    progress_every: Option<Duration>,
}

impl<'p> ParExplorer<'p> {
    /// Creates a parallel explorer with default limits, the no-op sink,
    /// and [`ParExplorer::auto_jobs`] worker threads.
    pub fn new(program: &'p Program) -> ParExplorer<'p> {
        ParExplorer {
            program,
            limits: ExploreLimits::default(),
            jobs: ParExplorer::auto_jobs(),
            sink: Arc::new(NoopSink),
            fault: None,
            profile: Arc::new(PhaseProfiler::disabled()),
            progress_every: None,
        }
    }

    /// Default worker count: the host's available parallelism, capped
    /// at 8 (beyond that the commit walk is the bottleneck for the
    /// kernel-scale programs this repo studies).
    pub fn auto_jobs() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    }

    /// Sets the number of worker threads (clamped to at least 1). The
    /// report is identical whatever the value; only wall time and
    /// [`ParStats`] change.
    pub fn jobs(mut self, jobs: usize) -> ParExplorer<'p> {
        self.jobs = jobs.max(1);
        self
    }

    /// Streams `explore` scope events to `sink` (start, periodic
    /// progress, per-worker activity, final report). Observation only.
    pub fn with_sink(mut self, sink: Arc<dyn Sink>) -> ParExplorer<'p> {
        self.sink = sink;
        self
    }

    /// Attributes hot-path wall time to `profiler`. The coordinator's
    /// commit/hash/dedup phases land on this handle directly; each
    /// worker gets a fresh profiler with the same configuration (see
    /// [`PhaseProfiler::like`]) whose snapshot is returned in
    /// [`ParStats::profiles`]. Observation only: reports are identical
    /// with profiling on or off.
    pub fn profile(mut self, profiler: Arc<PhaseProfiler>) -> ParExplorer<'p> {
        self.profile = profiler;
        self
    }

    /// Emits periodic `explore`/`progress_est` events (tree-size
    /// estimate, schedule rate, ETA) at most once per `every`.
    /// Observation only.
    pub fn progress_every(mut self, every: Duration) -> ParExplorer<'p> {
        self.progress_every = Some(every);
        self
    }

    /// Replaces the resource bounds.
    pub fn limits(mut self, limits: ExploreLimits) -> ParExplorer<'p> {
        self.limits = limits;
        self
    }

    /// Sets a CHESS-style preemption bound.
    pub fn preemption_bound(mut self, bound: u32) -> ParExplorer<'p> {
        self.limits.max_preemptions = Some(bound);
        self
    }

    /// Stops at the first failure.
    pub fn stop_on_first_failure(mut self) -> ParExplorer<'p> {
        self.limits.stop_on_first_failure = true;
        self
    }

    /// Enables state deduplication (see [`ExploreLimits::dedup_states`]).
    pub fn dedup_states(mut self) -> ParExplorer<'p> {
        self.limits.dedup_states = true;
        self
    }

    /// Enables the sleep-set partial-order reduction
    /// (see [`ExploreLimits::sleep_sets`]).
    pub fn sleep_sets(mut self) -> ParExplorer<'p> {
        self.limits.sleep_sets = true;
        self
    }

    /// Enables source-set dynamic partial-order reduction
    /// (see [`ExploreLimits::dpor`]). The report stays bit-identical to
    /// the serial [`Explorer`](crate::Explorer) with the same flag.
    pub fn dpor(mut self) -> ParExplorer<'p> {
        self.limits.dpor = true;
        self
    }

    /// Disables invisible-step fusion (see [`ExploreLimits::fuse`]);
    /// the parallel counterpart of
    /// [`Explorer::no_fuse`](crate::Explorer::no_fuse), and like every
    /// other mode flag it leaves the merged report bit-identical to the
    /// serial explorer's.
    pub fn no_fuse(mut self) -> ParExplorer<'p> {
        self.limits.fuse = false;
        self
    }

    /// Sets a wall-clock deadline for the exploration.
    pub fn deadline(mut self, deadline: Duration) -> ParExplorer<'p> {
        self.limits.deadline = Some(deadline);
        self
    }

    /// Explores under a deterministic [`FaultPlan`]. Fault decisions
    /// are pure per-(seed, step, thread) functions, so they are safe to
    /// evaluate from any worker; like the serial explorer this strips
    /// stall faults and disables sleep sets.
    pub fn chaos(mut self, plan: FaultPlan) -> ParExplorer<'p> {
        self.fault = Some(plan);
        self
    }

    /// Runs the exploration and returns the merged report.
    pub fn run(&self) -> ExploreReport {
        self.run_detailed().0
    }

    /// Runs the exploration, returning the merged report plus worker
    /// activity statistics.
    pub fn run_detailed(&self) -> (ExploreReport, ParStats) {
        let jobs = self.jobs.max(1);
        let mode = Mode::resolve(&self.limits, self.fault.is_some());
        if mode.dpor {
            return self.run_dpor(mode, jobs);
        }
        let stopwatch = Stopwatch::start();
        let mut deadline_hit = false;
        let mut report = ExploreReport {
            counts: OutcomeCounts::default(),
            schedules_run: 0,
            steps_total: 0,
            truncated: false,
            first_failure: None,
            first_ok: None,
            states_deduped: 0,
            sleep_pruned: 0,
            dpor_pruned: 0,
            truncation: None,
            est_total_schedules: 0.0,
            stats: ExploreStats::default(),
        };
        let mut estimator = KnuthEstimator::new();
        let mut progress = self.progress_every.map(ProgressTracker::new);
        self.emit_start(mode, jobs);

        let mut root = Executor::with_record(self.program, RecordMode::Off);
        if let Some(plan) = self.fault {
            // Stall faults only bias samplers; a systematic search must
            // strip them (see `FaultPlan::without_stalls`).
            root.set_fault_plan(plan.without_stalls());
        }
        if let Some(outcome) = root.outcome().cloned() {
            // Program terminates without any scheduling choice: no
            // workers needed. The schedule tree is a single leaf with
            // an empty degree product, like the serial explorer's.
            estimator.record_leaf(1.0);
            self.classify(&mut report, outcome, root.steps() as u64, || {
                root.schedule_taken()
            });
            self.progress_tick(&report, &estimator, &mut progress, &stopwatch, 0);
            let stats = ParStats {
                jobs,
                workers: vec![WorkerStats::default(); jobs],
                tasks_spawned: 0,
                wasted_expansions: 0,
                profiles: vec![PhaseProfile::empty(); jobs],
            };
            self.finish(&mut report, stopwatch, false, &stats, &estimator);
            return (report, stats);
        }

        let shared = Shared::new(jobs);
        // Per-worker profilers matching the coordinator's configuration;
        // snapshots land in `ParStats::profiles`.
        let worker_profiles: Vec<PhaseProfiler> = (0..jobs).map(|_| self.profile.like()).collect();
        if self.limits.dedup_states {
            // Pre-claim the root key for the root prefix (id 0),
            // mirroring the serial explorer's pre-loop insert.
            let key = self.profile.time(Phase::Hash, || root.state_key());
            self.profile
                .time(Phase::Dedup, || shared.seen.insert(key, 0));
        }
        let enabled = root.enabled();
        report.stats.branch_points += 1;
        report.stats.max_depth = 1;
        let root_key = if self.limits.dedup_states {
            root.state_key()
        } else {
            0
        };
        let root_task = Task {
            id: 0,
            key: root_key,
            exec: root,
            enabled,
            preemptions: 0,
            sleep: Vec::new(),
            cancel: Arc::new(AtomicBool::new(false)),
        };
        let mut tasks_spawned: u64 = 0;
        let mut wasted_expansions: u64 = 0;

        std::thread::scope(|scope| {
            let guard = StopGuard(&shared);
            for (me, profiler) in worker_profiles.iter().enumerate() {
                let shared = &shared;
                let limits = &self.limits;
                scope.spawn(move || worker_loop(me, limits, mode, shared, profiler));
            }

            let mut rr = 0usize;
            let mut enqueue = |task: Task, spawned: &mut u64| {
                *spawned += 1;
                shared.queues[rr % jobs]
                    .lock()
                    .expect("queue lock")
                    .push_back(task);
                rr += 1;
                let _idle = shared.idle.lock().expect("idle lock");
                shared.work_cv.notify_one();
            };
            enqueue(root_task, &mut tasks_spawned);

            // The commit walk: a faithful replay of the serial DFS
            // loop. Each iteration performs the serial loop-top budget
            // checks, then processes exactly one record (or resolves a
            // pending expansion / pops an exhausted frame).
            let mut walk: Vec<Frame> = vec![Frame::Pending(0, 1.0)];
            'walk: loop {
                let walk_depth = walk.len() as u64;
                let Some(top) = walk.last_mut() else { break };
                match frontier::budget_stop(&self.limits, &stopwatch, report.schedules_run) {
                    Some(frontier::Stop::Deadline) => {
                        deadline_hit = true;
                        report.truncated = true;
                        break;
                    }
                    Some(frontier::Stop::Budget) => {
                        report.truncated = true;
                        break;
                    }
                    None => {}
                }
                match top {
                    Frame::Pending(id, parent_degree) => {
                        let id = *id;
                        let parent_degree = *parent_degree;
                        let Some(expansion) = self.wait_result(&shared, id, stopwatch) else {
                            // Deadline elapsed while waiting.
                            deadline_hit = true;
                            report.truncated = true;
                            break;
                        };
                        let mut children = match expansion {
                            Ok(Expanded::Classic(children)) => children,
                            Ok(Expanded::Dpor(_)) => {
                                unreachable!("classic workers produce classic expansions")
                            }
                            Err(panic_msg) => {
                                // Re-raise a worker panic on the caller
                                // thread, like the serial explorer would.
                                panic!("parallel exploration worker panicked: {panic_msg}");
                            }
                        };
                        // Hand every child prefix to the pool *before*
                        // walking the subtree: those expansions overlap
                        // with the commits below.
                        for rec in &mut children {
                            if let ChildRec::Branch { task, .. } = rec {
                                if let Some(task) = task.take() {
                                    enqueue(*task, &mut tasks_spawned);
                                }
                            }
                        }
                        // A walked expansion is never truncated (stop
                        // and cancel only hit prefixes the walk has
                        // abandoned), so `children.len()` is this
                        // prefix's branching degree — the serial
                        // explorer's `enabled.len()`.
                        let path_degree = parent_degree * children.len() as f64;
                        *top = Frame::Open {
                            children,
                            next: 0,
                            path_degree,
                        };
                    }
                    Frame::Open {
                        children,
                        next,
                        path_degree,
                    } => {
                        if *next >= children.len() {
                            walk.pop();
                            continue;
                        }
                        let path_degree = *path_degree;
                        let _commit = self.profile.enter(Phase::Commit);
                        let rec = std::mem::replace(&mut children[*next], ChildRec::SleepPruned);
                        *next += 1;
                        // Replicate the serial walk's lazy snapshot
                        // elision: when an expanded child's remaining
                        // siblings are all pruned records, the serial
                        // explorer consumed their accounting eagerly
                        // (same iteration, sibling order) and counted
                        // the child as a final-survivor move. The
                        // worker-side prune verdicts coincide with the
                        // serial tail scan because pruned siblings
                        // never extend the sleep set — both sides
                        // judge the tail against the same frozen frame
                        // state.
                        if !matches!(rec, ChildRec::SleepPruned | ChildRec::PreemptionLimited)
                            && children[*next..].iter().all(|c| {
                                matches!(c, ChildRec::SleepPruned | ChildRec::PreemptionLimited)
                            })
                        {
                            for doomed in children.drain(*next..) {
                                match doomed {
                                    ChildRec::SleepPruned => report.sleep_pruned += 1,
                                    ChildRec::PreemptionLimited => {
                                        report.stats.preemption_limited += 1
                                    }
                                    _ => unreachable!("tail contains only pruned records"),
                                }
                            }
                            report.stats.snapshots_elided += 1;
                        }
                        match rec {
                            ChildRec::SleepPruned => report.sleep_pruned += 1,
                            ChildRec::PreemptionLimited => report.stats.preemption_limited += 1,
                            ChildRec::Redundant { saved, fused } => {
                                report.stats.snapshots += 1;
                                report.stats.snapshot_bytes_saved += saved;
                                report.stats.fused_steps += fused;
                                report.sleep_pruned += 1;
                            }
                            ChildRec::Terminal {
                                outcome,
                                steps,
                                schedule,
                                saved,
                                fused,
                            } => {
                                report.stats.snapshots += 1;
                                report.stats.snapshot_bytes_saved += saved;
                                report.stats.fused_steps += fused;
                                estimator.record_leaf(path_degree);
                                self.classify(&mut report, outcome, steps, || {
                                    schedule
                                        .expect("first failing/passing child carries its schedule")
                                });
                                self.progress_tick(
                                    &report,
                                    &estimator,
                                    &mut progress,
                                    &stopwatch,
                                    walk_depth,
                                );
                                if self.limits.stop_on_first_failure
                                    && report.first_failure.is_some()
                                {
                                    break 'walk;
                                }
                            }
                            ChildRec::Branch {
                                id,
                                key,
                                cancel,
                                saved,
                                fused,
                                ..
                            } => {
                                report.stats.snapshots += 1;
                                report.stats.snapshot_bytes_saved += saved;
                                // Counted before the dedup verdict:
                                // the serial explorer accumulates an
                                // edge's fused steps during the
                                // run-forward, before it ever hashes
                                // the child state.
                                report.stats.fused_steps += fused;
                                let fresh = !self.limits.dedup_states
                                    || self
                                        .profile
                                        .time(Phase::Dedup, || shared.seen.insert(key, id));
                                if !fresh {
                                    report.states_deduped += 1;
                                    cancel.store(true, Ordering::Relaxed);
                                    // Drop any finished expansion of the
                                    // duplicate; it will never be read.
                                    if shared
                                        .results
                                        .lock()
                                        .expect("results lock")
                                        .remove(&id)
                                        .is_some()
                                    {
                                        wasted_expansions += 1;
                                    }
                                    continue;
                                }
                                report.stats.branch_points += 1;
                                walk.push(Frame::Pending(id, path_degree));
                                report.stats.max_depth =
                                    report.stats.max_depth.max(walk.len() as u64);
                            }
                        }
                    }
                }
            }
            drop(guard); // halts the pool; scope joins the workers
        });

        let stats = ParStats {
            jobs,
            workers: shared
                .counters
                .iter()
                .map(|c| WorkerStats {
                    claimed: c.claimed.load(Ordering::Relaxed),
                    steals: c.steals.load(Ordering::Relaxed),
                    filter_hits: c.filter_hits.load(Ordering::Relaxed),
                    idle_spins: c.idle_spins.load(Ordering::Relaxed),
                })
                .collect(),
            tasks_spawned,
            wasted_expansions,
            profiles: worker_profiles
                .iter()
                .map(PhaseProfiler::snapshot)
                .collect(),
        };
        self.finish(&mut report, stopwatch, deadline_hit, &stats, &estimator);
        (report, stats)
    }

    /// The DPOR-mode run (see the module docs): the classic worker
    /// pool, but expansions cover every enabled child ([`expand_dpor`])
    /// and the commit walk replays the serial `run_dpor` selection
    /// sequence through its own [`Dpor`] engine — same enabled orders,
    /// same footprints, same race log, hence the same backtrack sets
    /// and a bit-identical report. A child's expansion is handed to
    /// the pool the moment it enters a backtrack set awake; sleeping
    /// entrants are never dispatched (`select` will skip them), and
    /// children that never enter any backtrack set are dropped unread.
    fn run_dpor(&self, mode: Mode, jobs: usize) -> (ExploreReport, ParStats) {
        let stopwatch = Stopwatch::start();
        let mut deadline_hit = false;
        let mut report = ExploreReport {
            counts: OutcomeCounts::default(),
            schedules_run: 0,
            steps_total: 0,
            truncated: false,
            first_failure: None,
            first_ok: None,
            states_deduped: 0,
            sleep_pruned: 0,
            dpor_pruned: 0,
            truncation: None,
            est_total_schedules: 0.0,
            stats: ExploreStats::default(),
        };
        let mut estimator = KnuthEstimator::new();
        let mut progress = self.progress_every.map(ProgressTracker::new);
        self.emit_start(mode, jobs);

        // No fault plan to install: DPOR is resolved away under chaos
        // (see `Mode::resolve`).
        let root = Executor::with_record(self.program, RecordMode::Off);
        if let Some(outcome) = root.outcome().cloned() {
            estimator.record_leaf(1.0);
            let steps = root.steps() as u64;
            self.classify(&mut report, outcome, steps, || root.schedule_taken());
            self.progress_tick(&report, &estimator, &mut progress, &stopwatch, 0);
            let stats = ParStats {
                jobs,
                workers: vec![WorkerStats::default(); jobs],
                tasks_spawned: 0,
                wasted_expansions: 0,
                profiles: vec![PhaseProfile::empty(); jobs],
            };
            self.finish(&mut report, stopwatch, false, &stats, &estimator);
            return (report, stats);
        }

        let shared = Shared::new(jobs);
        let worker_profiles: Vec<PhaseProfiler> = (0..jobs).map(|_| self.profile.like()).collect();
        let mut dpor = Dpor::new(self.program.n_threads());
        let root_enabled = root.enabled();
        let fps = root_enabled
            .iter()
            .map(|&t| {
                root.next_footprint(t)
                    .expect("an enabled thread has a next op")
            })
            .collect();
        report.stats.branch_points += 1;
        report.stats.max_depth = 1;
        let root_degree = root_enabled.len() as f64;
        dpor.push_frame(root_enabled.clone(), fps, Vec::new());
        let root_task = Task {
            id: 0,
            key: 0,
            exec: root,
            enabled: root_enabled.clone(),
            preemptions: 0,
            sleep: Vec::new(),
            cancel: Arc::new(AtomicBool::new(false)),
        };
        let mut tasks_spawned: u64 = 0;
        let mut wasted_expansions: u64 = 0;

        std::thread::scope(|scope| {
            let guard = StopGuard(&shared);
            for (me, profiler) in worker_profiles.iter().enumerate() {
                let shared = &shared;
                let limits = &self.limits;
                scope.spawn(move || worker_loop(me, limits, mode, shared, profiler));
            }

            let mut rr = 0usize;
            let mut enqueue = |task: Task, spawned: &mut u64| {
                *spawned += 1;
                shared.queues[rr % jobs]
                    .lock()
                    .expect("queue lock")
                    .push_back(task);
                rr += 1;
                let _idle = shared.idle.lock().expect("idle lock");
                shared.work_cv.notify_one();
            };
            enqueue(root_task, &mut tasks_spawned);

            // Hands the speculative expansion of child `t` of frame
            // `fi` to the pool, at most once per child.
            let mut dispatch =
                |walk: &mut [DporWalk], fi: usize, t: ThreadId, spawned: &mut u64| {
                    let node = &mut walk[fi];
                    let pos = node
                        .enabled
                        .iter()
                        .position(|&x| x == t)
                        .expect("backtrack members are enabled");
                    if node.enqueued[pos] {
                        return;
                    }
                    node.enqueued[pos] = true;
                    let recs = node.recs.as_mut().expect("dispatch on a resolved frame");
                    if let Some(DporRec {
                        end: DporEnd::Branch { task, .. },
                        ..
                    }) = recs[pos].as_mut()
                    {
                        if let Some(task) = task.take() {
                            enqueue(*task, spawned);
                        }
                    }
                };

            // The DPOR commit walk: a faithful replay of the serial
            // `run_dpor` loop, with the forward runs already done by
            // the pool.
            let mut walk: Vec<DporWalk> = vec![DporWalk {
                id: 0,
                enabled: root_enabled,
                path_degree: root_degree,
                recs: None,
                enqueued: Vec::new(),
            }];
            'walk: while !walk.is_empty() {
                match frontier::budget_stop(&self.limits, &stopwatch, report.schedules_run) {
                    Some(frontier::Stop::Deadline) => {
                        deadline_hit = true;
                        report.truncated = true;
                        break;
                    }
                    Some(frontier::Stop::Budget) => {
                        report.truncated = true;
                        break;
                    }
                    None => {}
                }
                let frame = walk.len() - 1;
                if walk[frame].recs.is_none() {
                    // Resolve the pending expansion, then dispatch the
                    // frame's current backtrack members (the seed).
                    let Some(expansion) = self.wait_result(&shared, walk[frame].id, stopwatch)
                    else {
                        deadline_hit = true;
                        report.truncated = true;
                        break;
                    };
                    let recs = match expansion {
                        Ok(Expanded::Dpor(recs)) => recs,
                        Ok(Expanded::Classic(_)) => {
                            unreachable!("DPOR workers produce DPOR expansions")
                        }
                        Err(panic_msg) => {
                            // Re-raise a worker panic on the caller
                            // thread, like the serial explorer would.
                            panic!("parallel exploration worker panicked: {panic_msg}");
                        }
                    };
                    let node = &mut walk[frame];
                    debug_assert_eq!(recs.len(), node.enabled.len());
                    node.enqueued = vec![false; recs.len()];
                    node.recs = Some(recs.into_iter().map(Some).collect());
                    let members: Vec<ThreadId> = node
                        .enabled
                        .iter()
                        .copied()
                        .filter(|&t| dpor.in_backtrack(frame, t) && !dpor.sleeping(frame, t))
                        .collect();
                    for t in members {
                        dispatch(&mut walk, frame, t, &mut tasks_spawned);
                    }
                }
                let (skipped, choice) = dpor.select(frame);
                report.sleep_pruned += skipped;
                let Some(choice) = choice else {
                    report.dpor_pruned += dpor.pop_frame();
                    walk.pop();
                    continue;
                };
                if mode.sleep {
                    // Siblings selected after this one must not redo
                    // this choice's equivalence class.
                    dpor.sleep_after(frame, choice);
                }
                let path_degree = walk[frame].path_degree;
                let DporRec {
                    forced,
                    saved,
                    fused,
                    end,
                } = {
                    let node = &mut walk[frame];
                    let pos = node
                        .enabled
                        .iter()
                        .position(|&t| t == choice)
                        .expect("selected children are enabled");
                    node.recs.as_mut().expect("resolved frame")[pos]
                        .take()
                        .expect("children are committed once")
                };
                let _commit = self.profile.enter(Phase::Commit);
                report.stats.snapshots += 1;
                report.stats.snapshot_bytes_saved += saved;
                report.stats.fused_steps += fused;
                // Commit the edge to the race log in execution order;
                // backtrack additions make new children reachable, so
                // dispatch them to the pool right away.
                let choice_fp = dpor.fp_of(frame, choice).clone();
                for (fi, t) in dpor.commit_step(choice, choice_fp, Some(frame)) {
                    if !dpor.sleeping(fi, t) {
                        dispatch(&mut walk, fi, t, &mut tasks_spawned);
                    }
                }
                for (t, fp) in &forced {
                    for (fi, q) in dpor.commit_step(*t, fp.clone(), None) {
                        if !dpor.sleeping(fi, q) {
                            dispatch(&mut walk, fi, q, &mut tasks_spawned);
                        }
                    }
                }
                match end {
                    DporEnd::Terminal {
                        outcome,
                        steps,
                        schedule,
                        pending,
                    } => {
                        // Ops the terminal cut off still race with the
                        // executed path (see the serial driver); their
                        // backtrack additions can make new children
                        // reachable, so dispatch those right away.
                        for (t, fp) in &pending {
                            for (fi, q) in dpor.pending_race(*t, fp) {
                                if !dpor.sleeping(fi, q) {
                                    dispatch(&mut walk, fi, q, &mut tasks_spawned);
                                }
                            }
                        }
                        estimator.record_leaf(path_degree);
                        self.classify(&mut report, outcome, steps, || schedule);
                        self.progress_tick(
                            &report,
                            &estimator,
                            &mut progress,
                            &stopwatch,
                            walk.len() as u64,
                        );
                        if self.limits.stop_on_first_failure && report.first_failure.is_some() {
                            break 'walk;
                        }
                    }
                    DporEnd::Branch {
                        id,
                        enabled,
                        fps,
                        cancel,
                        task,
                    } => {
                        debug_assert!(task.is_none(), "selected children were dispatched");
                        drop(task);
                        if enabled.is_empty() {
                            // Unreachable in practice: a state with no
                            // enabled thread carries a terminal outcome.
                            continue;
                        }
                        let child_sleep = if mode.sleep {
                            dpor.child_sleep(frame, choice, &forced, &enabled)
                        } else {
                            Vec::new()
                        };
                        if enabled.iter().all(|t| child_sleep.contains(t)) {
                            // Every enabled thread is asleep: the
                            // subtree is covered by explored siblings.
                            // Scrub the speculative expansion.
                            report.sleep_pruned += 1;
                            cancel.store(true, Ordering::Relaxed);
                            if shared
                                .results
                                .lock()
                                .expect("results lock")
                                .remove(&id)
                                .is_some()
                            {
                                wasted_expansions += 1;
                            }
                            continue;
                        }
                        report.stats.branch_points += 1;
                        let child_degree = path_degree * enabled.len() as f64;
                        let fi = dpor.push_frame(enabled.clone(), fps, child_sleep);
                        debug_assert_eq!(fi, walk.len());
                        walk.push(DporWalk {
                            id,
                            enabled,
                            path_degree: child_degree,
                            recs: None,
                            enqueued: Vec::new(),
                        });
                        report.stats.max_depth = report.stats.max_depth.max(walk.len() as u64);
                    }
                }
            }
            drop(guard); // halts the pool; scope joins the workers
        });

        if report.schedules_run >= self.limits.max_schedules
            && !(self.limits.stop_on_first_failure && report.first_failure.is_some())
        {
            report.truncated = true;
        }
        let stats = ParStats {
            jobs,
            workers: shared
                .counters
                .iter()
                .map(|c| WorkerStats {
                    claimed: c.claimed.load(Ordering::Relaxed),
                    steals: c.steals.load(Ordering::Relaxed),
                    filter_hits: c.filter_hits.load(Ordering::Relaxed),
                    idle_spins: c.idle_spins.load(Ordering::Relaxed),
                })
                .collect(),
            tasks_spawned,
            wasted_expansions,
            profiles: worker_profiles
                .iter()
                .map(PhaseProfiler::snapshot)
                .collect(),
        };
        self.finish(&mut report, stopwatch, deadline_hit, &stats, &estimator);
        (report, stats)
    }

    /// Blocks until the expansion of `id` is available, or the deadline
    /// elapses (`None`). Never deadlocks: the coordinator only waits on
    /// prefixes that survived its own dedup check, and workers only
    /// skip prefixes the filter proves *cannot* survive it.
    fn wait_result(&self, shared: &Shared, id: u64, stopwatch: Stopwatch) -> Option<Expansion> {
        let mut results = shared.results.lock().expect("results lock");
        loop {
            if let Some(expansion) = results.remove(&id) {
                return Some(expansion);
            }
            if let Some(deadline) = self.limits.deadline {
                if stopwatch.elapsed() >= deadline {
                    return None;
                }
            }
            let (guard, _) = shared
                .result_cv
                .wait_timeout(results, PARK)
                .expect("result wait");
            results = guard;
        }
    }

    /// Commit-side terminal classification; mirrors the serial
    /// `Explorer::classify` (the schedule is produced lazily because
    /// only the first failure / first ok ever need one).
    fn classify(
        &self,
        report: &mut ExploreReport,
        outcome: Outcome,
        steps: u64,
        schedule: impl FnOnce() -> Schedule,
    ) {
        report.schedules_run += 1;
        report.steps_total += steps;
        report.counts.add(&outcome);
        if self.sink.enabled() && report.schedules_run.is_multiple_of(PROGRESS_EVERY) {
            self.sink.emit(&Event {
                scope: "explore",
                name: "progress",
                fields: &[
                    ("program", Value::Str(self.program.name())),
                    ("schedules", Value::U64(report.schedules_run)),
                    ("steps", Value::U64(report.steps_total)),
                    ("failures", Value::U64(report.counts.failures())),
                ],
            });
        }
        let need_fail = outcome.is_failure() && report.first_failure.is_none();
        let need_ok = outcome.is_ok() && report.first_ok.is_none();
        if need_fail || need_ok {
            let schedule = schedule();
            if need_fail {
                report.first_failure = Some((schedule, outcome));
            } else {
                report.first_ok = Some(schedule);
            }
        }
    }

    fn emit_start(&self, mode: Mode, jobs: usize) {
        if !self.sink.enabled() {
            return;
        }
        let mut fields = vec![
            ("program", Value::Str(self.program.name())),
            ("threads", Value::U64(self.program.n_threads() as u64)),
            ("max_schedules", Value::U64(self.limits.max_schedules)),
            ("sleep_sets", Value::Bool(mode.sleep)),
            ("dedup_states", Value::Bool(mode.dedup)),
            ("fuse", Value::Bool(mode.fuse)),
        ];
        if mode.dpor {
            fields.push(("dpor", Value::Bool(true)));
        }
        fields.push(("jobs", Value::U64(jobs as u64)));
        if let Some(d) = self.limits.deadline {
            fields.push(("deadline_ms", Value::U64(d.as_millis() as u64)));
        }
        if let Some(plan) = &self.fault {
            fields.push(("chaos_seed", Value::U64(plan.seed)));
        }
        self.sink.emit(&Event {
            scope: "explore",
            name: "start",
            fields: &fields,
        });
    }

    /// Emits a periodic `explore`/`progress_est` event from the commit
    /// walk; field-for-field the serial explorer's. Estimator state at
    /// each commit is identical to the serial run (the walk replays the
    /// serial preorder), so only the wall-clock-derived fields (rate,
    /// ETA, emission times) can differ.
    fn progress_tick(
        &self,
        report: &ExploreReport,
        estimator: &KnuthEstimator,
        progress: &mut Option<ProgressTracker>,
        stopwatch: &Stopwatch,
        frontier_depth: u64,
    ) {
        let Some(tracker) = progress.as_mut() else {
            return;
        };
        if !report.schedules_run.is_multiple_of(PROGRESS_CHECK_EVERY) {
            return;
        }
        let elapsed = stopwatch.elapsed();
        if !tracker.due(elapsed) {
            return;
        }
        let rate = tracker.sample(report.schedules_run, elapsed);
        if !self.sink.enabled() {
            return;
        }
        let est_total = estimator.estimate();
        let overall_secs = elapsed.as_secs_f64();
        let states_per_sec = if overall_secs > 0.0 {
            report.steps_total as f64 / overall_secs
        } else {
            0.0
        };
        let mut fields = vec![
            ("program", Value::Str(self.program.name())),
            ("schedules", Value::U64(report.schedules_run)),
            ("steps", Value::U64(report.steps_total)),
            ("failures", Value::U64(report.counts.failures())),
            ("frontier_depth", Value::U64(frontier_depth)),
            ("max_depth", Value::U64(report.stats.max_depth)),
            ("est_total", Value::F64(est_total)),
            ("fraction", Value::F64(estimator.fraction_done())),
            ("schedules_per_sec", Value::F64(rate)),
            ("states_per_sec", Value::F64(states_per_sec)),
        ];
        if let Some(ms) = eta_ms(est_total - report.schedules_run as f64, rate) {
            fields.push(("eta_ms", Value::U64(ms)));
        }
        self.sink.emit(&Event {
            scope: "explore",
            name: "progress_est",
            fields: &fields,
        });
    }

    /// Derives the truncation reason (identical to the serial
    /// explorer's priority order), stamps the wall time and tree-size
    /// estimate, and emits the final report plus one activity event per
    /// worker.
    fn finish(
        &self,
        report: &mut ExploreReport,
        stopwatch: Stopwatch,
        deadline_hit: bool,
        stats: &ParStats,
        estimator: &KnuthEstimator,
    ) {
        report.est_total_schedules = estimator.estimate();
        report.truncation = frontier::derive_truncation(
            deadline_hit,
            report.truncated,
            report.counts.step_limit,
            report.stats.preemption_limited,
        );
        report.stats.wall = stopwatch.elapsed();
        if !self.sink.enabled() {
            return;
        }
        for (i, w) in stats.workers.iter().enumerate() {
            self.sink.emit(&Event {
                scope: "explore",
                name: "worker",
                fields: &[
                    ("program", Value::Str(self.program.name())),
                    ("worker", Value::U64(i as u64)),
                    ("claimed", Value::U64(w.claimed)),
                    ("steals", Value::U64(w.steals)),
                    ("filter_hits", Value::U64(w.filter_hits)),
                    ("idle_spins", Value::U64(w.idle_spins)),
                ],
            });
        }
        let truncation = report
            .truncation
            .map(|t| t.to_string())
            .unwrap_or_else(|| "none".to_owned());
        let mut fields = vec![
            ("program", Value::Str(self.program.name())),
            ("jobs", Value::U64(stats.jobs as u64)),
            ("schedules", Value::U64(report.schedules_run)),
            ("steps", Value::U64(report.steps_total)),
            ("ok", Value::U64(report.counts.ok)),
            ("assert_failed", Value::U64(report.counts.assert_failed)),
            ("deadlock", Value::U64(report.counts.deadlock)),
            ("step_limit", Value::U64(report.counts.step_limit)),
            ("tx_retry_limit", Value::U64(report.counts.tx_retry_limit)),
            ("misuse", Value::U64(report.counts.misuse)),
            ("branch_points", Value::U64(report.stats.branch_points)),
            ("snapshots", Value::U64(report.stats.snapshots)),
            ("max_depth", Value::U64(report.stats.max_depth)),
            ("sleep_pruned", Value::U64(report.sleep_pruned)),
            ("dpor_pruned", Value::U64(report.dpor_pruned)),
            ("states_deduped", Value::U64(report.states_deduped)),
            (
                "preemption_limited",
                Value::U64(report.stats.preemption_limited),
            ),
            ("tasks_spawned", Value::U64(stats.tasks_spawned)),
            ("steals", Value::U64(stats.total_steals())),
            ("filter_hits", Value::U64(stats.total_filter_hits())),
            ("wasted_expansions", Value::U64(stats.wasted_expansions)),
            ("truncation", Value::Str(&truncation)),
            ("schedules_per_sec", Value::F64(report.schedules_per_sec())),
            ("states_per_sec", Value::F64(report.states_per_sec())),
            (
                "snapshot_bytes_saved",
                Value::U64(report.stats.snapshot_bytes_saved),
            ),
            ("fused_steps", Value::U64(report.stats.fused_steps)),
            (
                "snapshots_elided",
                Value::U64(report.stats.snapshots_elided),
            ),
            (
                "est_total_schedules",
                Value::F64(report.est_total_schedules),
            ),
            ("wall_us", Value::U64(report.stats.wall.as_micros() as u64)),
        ];
        if let Some(d) = self.limits.deadline {
            fields.push(("deadline_ms", Value::U64(d.as_millis() as u64)));
        }
        if let Some(plan) = &self.fault {
            fields.push(("chaos_seed", Value::U64(plan.seed)));
        }
        self.sink.emit(&Event {
            scope: "explore",
            name: "report",
            fields: &fields,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{Explorer, Truncation};
    use crate::expr::Expr;
    use crate::generate::{generate, GenConfig};
    use crate::program::ProgramBuilder;
    use crate::stmt::Stmt;

    fn racy_counter(threads: usize, rounds: usize) -> Program {
        let mut b = ProgramBuilder::new("par-racy-counter");
        let counter = b.var("counter", 0);
        for t in 0..threads {
            let name: &'static str = Box::leak(format!("t{t}").into_boxed_str());
            let mut body = Vec::new();
            for _ in 0..rounds {
                body.push(Stmt::read(counter, "tmp"));
                body.push(Stmt::write(counter, Expr::local("tmp") + Expr::lit(1)));
            }
            b.thread(name, body);
        }
        b.final_assert(
            Expr::shared(counter).eq(Expr::lit((threads * rounds) as i64)),
            "all increments kept",
        );
        b.build().expect("valid program")
    }

    fn locked_counter(threads: usize, rounds: usize) -> Program {
        let mut b = ProgramBuilder::new("par-locked-counter");
        let counter = b.var("counter", 0);
        let lock = b.mutex();
        for t in 0..threads {
            let name: &'static str = Box::leak(format!("t{t}").into_boxed_str());
            let mut body = Vec::new();
            for _ in 0..rounds {
                body.push(Stmt::Lock(lock));
                body.push(Stmt::read(counter, "tmp"));
                body.push(Stmt::write(counter, Expr::local("tmp") + Expr::lit(1)));
                body.push(Stmt::Unlock(lock));
            }
            b.thread(name, body);
        }
        b.final_assert(
            Expr::shared(counter).eq(Expr::lit((threads * rounds) as i64)),
            "all increments kept",
        );
        b.build().expect("valid program")
    }

    /// Field-for-field equality, ignoring only the nondeterministic
    /// wall time — the same comparison the differential harness in
    /// `crates/kernels/tests/par_equivalence.rs` performs.
    fn assert_reports_identical(serial: &ExploreReport, par: &ExploreReport, label: &str) {
        assert_eq!(serial.counts, par.counts, "{label}: counts");
        assert_eq!(
            serial.schedules_run, par.schedules_run,
            "{label}: schedules_run"
        );
        assert_eq!(serial.steps_total, par.steps_total, "{label}: steps_total");
        assert_eq!(serial.truncated, par.truncated, "{label}: truncated");
        assert_eq!(
            serial.first_failure, par.first_failure,
            "{label}: first_failure"
        );
        assert_eq!(serial.first_ok, par.first_ok, "{label}: first_ok");
        assert_eq!(
            serial.states_deduped, par.states_deduped,
            "{label}: states_deduped"
        );
        assert_eq!(
            serial.sleep_pruned, par.sleep_pruned,
            "{label}: sleep_pruned"
        );
        assert_eq!(serial.dpor_pruned, par.dpor_pruned, "{label}: dpor_pruned");
        assert_eq!(serial.truncation, par.truncation, "{label}: truncation");
        assert_eq!(
            serial.stats.branch_points, par.stats.branch_points,
            "{label}: branch_points"
        );
        assert_eq!(
            serial.stats.snapshots, par.stats.snapshots,
            "{label}: snapshots"
        );
        assert_eq!(
            serial.stats.snapshot_bytes_saved, par.stats.snapshot_bytes_saved,
            "{label}: snapshot_bytes_saved"
        );
        assert_eq!(
            serial.stats.max_depth, par.stats.max_depth,
            "{label}: max_depth"
        );
        assert_eq!(
            serial.stats.preemption_limited, par.stats.preemption_limited,
            "{label}: preemption_limited"
        );
        assert_eq!(
            serial.stats.fused_steps, par.stats.fused_steps,
            "{label}: fused_steps"
        );
        assert_eq!(
            serial.stats.snapshots_elided, par.stats.snapshots_elided,
            "{label}: snapshots_elided"
        );
        // Bit-identical, not approximately equal: the parallel walk
        // replays the serial leaf order, so the degree-product sums
        // match exactly in IEEE-754.
        assert_eq!(
            serial.est_total_schedules.to_bits(),
            par.est_total_schedules.to_bits(),
            "{label}: est_total_schedules ({} vs {})",
            serial.est_total_schedules,
            par.est_total_schedules
        );
    }

    fn configs() -> Vec<(&'static str, ExploreLimits)> {
        let base = ExploreLimits::default();
        vec![
            ("plain", base.clone()),
            (
                "dedup",
                ExploreLimits {
                    dedup_states: true,
                    ..base.clone()
                },
            ),
            (
                "sleep",
                ExploreLimits {
                    sleep_sets: true,
                    ..base.clone()
                },
            ),
            (
                "dedup+sleep",
                ExploreLimits {
                    dedup_states: true,
                    sleep_sets: true,
                    ..base.clone()
                },
            ),
            (
                "preemption2",
                ExploreLimits {
                    max_preemptions: Some(2),
                    ..base.clone()
                },
            ),
            (
                "dpor",
                ExploreLimits {
                    dpor: true,
                    ..base.clone()
                },
            ),
            (
                "dpor+sleep",
                ExploreLimits {
                    dpor: true,
                    sleep_sets: true,
                    ..base.clone()
                },
            ),
            (
                "nofuse",
                ExploreLimits {
                    fuse: false,
                    ..base.clone()
                },
            ),
            (
                "nofuse+sleep",
                ExploreLimits {
                    fuse: false,
                    sleep_sets: true,
                    ..base.clone()
                },
            ),
            (
                "budget7",
                ExploreLimits {
                    max_schedules: 7,
                    ..base
                },
            ),
        ]
    }

    #[test]
    fn parallel_report_is_bit_identical_to_serial_across_configs() {
        for program in [racy_counter(3, 2), locked_counter(2, 2)] {
            for (label, limits) in configs() {
                let serial = Explorer::new(&program).limits(limits.clone()).run();
                for jobs in [1, 2, 4] {
                    let par = ParExplorer::new(&program)
                        .limits(limits.clone())
                        .jobs(jobs)
                        .run();
                    let label = format!("{}/{label}/jobs={jobs}", program.name());
                    assert_reports_identical(&serial, &par, &label);
                }
            }
        }
    }

    #[test]
    fn observation_on_report_is_identical_to_observation_off() {
        let program = racy_counter(3, 2);
        let baseline = ParExplorer::new(&program).jobs(2).dedup_states().run();
        let profiler = Arc::new(PhaseProfiler::sampling(0));
        let (report, stats) = ParExplorer::new(&program)
            .jobs(2)
            .dedup_states()
            .profile(Arc::clone(&profiler))
            .progress_every(Duration::from_millis(0))
            .run_detailed();
        assert_reports_identical(&baseline, &report, "obs-on");
        assert_eq!(stats.profiles.len(), 2);
        // The workers expanded something, so their profilers saw
        // snapshot/step entries.
        let mut merged = PhaseProfile::empty();
        for p in &stats.profiles {
            merged.merge(p);
        }
        assert!(merged.get(Phase::Step).entries > 0, "worker step entries");
        // Coordinator phases land on the caller's handle.
        assert!(
            profiler.snapshot().get(Phase::Commit).entries > 0,
            "commit entries"
        );
    }

    #[test]
    fn parallel_matches_serial_on_generated_programs() {
        // Deterministic sweep over generator seeds; the proptest suite
        // in `tests/sim_properties.rs` widens this to random configs.
        for seed in 0..6u64 {
            let config = GenConfig {
                threads: 3,
                vars: 2,
                mutexes: 1,
                ops_per_thread: 4,
                locked_pct: 40,
                tx_pct: 0,
            };
            let program = generate(&config, seed);
            for (label, limits) in configs() {
                let serial = Explorer::new(&program).limits(limits.clone()).run();
                let par = ParExplorer::new(&program)
                    .limits(limits.clone())
                    .jobs(3)
                    .run();
                assert_reports_identical(&serial, &par, &format!("seed={seed}/{label}"));
            }
        }
    }

    #[test]
    fn parallel_matches_serial_under_chaos() {
        let program = racy_counter(2, 2);
        for seed in [3u64, 42] {
            let plan = FaultPlan::new(seed);
            let serial = Explorer::new(&program).chaos(plan).run();
            for jobs in [1, 2, 4] {
                let par = ParExplorer::new(&program).chaos(plan).jobs(jobs).run();
                assert_reports_identical(&serial, &par, &format!("chaos={seed}/jobs={jobs}"));
            }
        }
    }

    #[test]
    fn stop_on_first_failure_matches_serial() {
        let program = racy_counter(3, 1);
        let serial = Explorer::new(&program).stop_on_first_failure().run();
        for jobs in [1, 2, 4] {
            let par = ParExplorer::new(&program)
                .stop_on_first_failure()
                .jobs(jobs)
                .run();
            assert_reports_identical(&serial, &par, &format!("stop-first/jobs={jobs}"));
        }
        assert!(serial.found_failure());
    }

    #[test]
    fn zero_schedule_budget_truncates_like_serial() {
        let program = racy_counter(2, 1);
        let limits = ExploreLimits {
            max_schedules: 0,
            ..ExploreLimits::default()
        };
        let serial = Explorer::new(&program).limits(limits.clone()).run();
        let par = ParExplorer::new(&program).limits(limits).jobs(2).run();
        assert_reports_identical(&serial, &par, "budget=0");
        assert!(par.truncated);
        assert_eq!(par.schedules_run, 0);
        assert_eq!(par.truncation, Some(Truncation::ScheduleBudget));
    }

    #[test]
    fn wall_deadline_trips_and_stops_all_workers() {
        // Space far too large to exhaust in 5ms; the coordinator must
        // stop, set WallDeadline, and drain the pool without hanging.
        let program = racy_counter(3, 6);
        let (report, stats) = ParExplorer::new(&program)
            .deadline(Duration::from_millis(5))
            .jobs(4)
            .run_detailed();
        assert!(report.truncated);
        assert_eq!(report.truncation, Some(Truncation::WallDeadline));
        // Partial counts survive the stop: everything committed before
        // the deadline is in the report.
        assert_eq!(report.counts.total(), report.schedules_run);
        assert_eq!(stats.jobs, 4);
        assert_eq!(stats.workers.len(), 4);
    }

    #[test]
    fn terminal_root_needs_no_workers() {
        let mut b = ProgramBuilder::new("single");
        let v = b.var("v", 0);
        b.thread("only", vec![Stmt::write(v, Expr::lit(1))]);
        b.final_assert(Expr::shared(v).eq(Expr::lit(1)), "wrote");
        let program = b.build().expect("valid");
        let serial = Explorer::new(&program).run();
        let (par, stats) = ParExplorer::new(&program).jobs(4).run_detailed();
        assert_reports_identical(&serial, &par, "single-thread");
        assert_eq!(par.schedules_run, 1);
        assert_eq!(stats.tasks_spawned, 1); // just the root prefix
    }

    #[test]
    fn worker_stats_account_for_every_committed_branch() {
        let program = racy_counter(3, 2);
        let (report, stats) = ParExplorer::new(&program).jobs(2).run_detailed();
        // Every branch point the walk committed was expanded by some
        // worker (claims also cover prefixes later deduped/cancelled).
        assert!(stats.total_claimed() >= report.stats.branch_points);
        assert_eq!(stats.tasks_spawned, stats.total_claimed());
        assert!(report.counts.total() > 0);
    }

    /// Two threads race on `x` while a third works on an unrelated
    /// `y`. The third thread's steps commute with everything, which is
    /// exactly the independence DPOR prunes — on an all-conflicting
    /// program (every op on one variable) the persistent set is every
    /// thread and no reduction is possible.
    fn racy_plus_independent() -> Program {
        let mut b = ProgramBuilder::new("racy-plus-independent");
        let x = b.var("x", 0);
        let y = b.var("y", 0);
        for name in ["a", "b"] {
            b.thread(
                name,
                vec![
                    Stmt::read(x, "tmp"),
                    Stmt::write(x, Expr::local("tmp") + Expr::lit(1)),
                ],
            );
        }
        b.thread(
            "c",
            vec![
                Stmt::read(y, "tmp"),
                Stmt::write(y, Expr::local("tmp") + Expr::lit(1)),
                Stmt::read(y, "tmp"),
                Stmt::write(y, Expr::local("tmp") + Expr::lit(1)),
            ],
        );
        b.final_assert(Expr::shared(x).eq(Expr::lit(2)), "no lost update");
        b.build().expect("valid program")
    }

    #[test]
    fn dpor_prunes_but_finds_both_outcomes() {
        let program = racy_plus_independent();
        let limits = ExploreLimits {
            dedup_states: false,
            ..ExploreLimits::default()
        };
        let full = Explorer::new(&program).limits(limits).run();
        let dpor = ParExplorer::new(&program).dpor().jobs(2).run();
        assert!(
            dpor.schedules_run * 2 <= full.schedules_run,
            "DPOR must prune at least 2x: {} vs {}",
            dpor.schedules_run,
            full.schedules_run
        );
        assert!(dpor.dpor_pruned > 0);
        // The outcome *kinds* survive the reduction.
        assert!(dpor.counts.ok > 0 && dpor.counts.assert_failed > 0);
        assert!(full.counts.ok > 0 && full.counts.assert_failed > 0);
    }

    #[test]
    fn dpor_with_stop_on_first_failure_matches_serial() {
        let program = racy_counter(3, 1);
        let serial = Explorer::new(&program).dpor().stop_on_first_failure().run();
        for jobs in [1, 2, 4] {
            let par = ParExplorer::new(&program)
                .dpor()
                .stop_on_first_failure()
                .jobs(jobs)
                .run();
            assert_reports_identical(&serial, &par, &format!("dpor-stop-first/jobs={jobs}"));
        }
        assert!(serial.found_failure());
    }

    #[test]
    fn jobs_builder_clamps_to_one() {
        let program = racy_counter(2, 1);
        let (report, stats) = ParExplorer::new(&program).jobs(0).run_detailed();
        assert_eq!(stats.jobs, 1);
        assert!(report.counts.total() > 0);
    }

    #[test]
    fn striped_set_tracks_the_winning_prefix() {
        let set = StripedSet::new();
        for key in 0..256u64 {
            assert!(set.insert(key, key + 1), "first claim of {key} wins");
            assert!(!set.insert(key, key + 2), "second claim of {key} loses");
            // The winner must still expand; everyone else is dead work.
            assert!(!set.lost_race(key, key + 1));
            assert!(set.lost_race(key, key + 2));
        }
        assert!(!set.lost_race(10_000, 1), "unclaimed keys block nobody");
    }

    /// Frontier split/steal round-trip at the queue level: tasks pushed
    /// by one side are claimed exactly once across concurrent stealing
    /// workers — no loss, no duplication.
    #[test]
    fn work_stealing_claims_each_task_exactly_once() {
        let program = racy_counter(2, 1);
        let jobs = 4;
        let shared = Shared::new(jobs);
        let total = 200u64;
        let root = Executor::with_record(&program, RecordMode::Off);
        for i in 0..total {
            let task = Task {
                id: i,
                key: 0,
                exec: root.clone(),
                enabled: root.enabled(),
                preemptions: 0,
                sleep: Vec::new(),
                cancel: Arc::new(AtomicBool::new(false)),
            };
            shared.queues[(i as usize) % jobs]
                .lock()
                .expect("queue")
                .push_back(task);
        }
        let claimed: Mutex<Vec<u64>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for me in 0..jobs {
                let shared = &shared;
                let claimed = &claimed;
                scope.spawn(move || loop {
                    match claim(me, shared) {
                        Some((task, _stolen)) => claimed.lock().expect("claimed").push(task.id),
                        None => return,
                    }
                });
            }
        });
        let mut ids = claimed.into_inner().expect("claimed");
        ids.sort_unstable();
        assert_eq!(ids.len() as u64, total, "no task lost or claimed twice");
        ids.dedup();
        assert_eq!(ids.len() as u64, total, "no duplicate claims");
    }
}
