//! Soundness and effectiveness of the sleep-set partial-order reduction:
//! on every kernel-shaped and generated program, the reduced exploration
//! must find the same outcome kinds and the same reachable final states
//! as the full one, with (weakly) fewer schedules.

use std::collections::HashSet;

use lfm_sim::{generate, ExploreLimits, Explorer, Expr, GenConfig, ProgramBuilder, Stmt};

fn outcome_kinds(counts: &lfm_sim::OutcomeCounts) -> [bool; 5] {
    [
        counts.ok > 0,
        counts.assert_failed > 0,
        counts.deadlock > 0,
        counts.step_limit > 0,
        counts.tx_retry_limit > 0,
    ]
}

fn final_states(program: &lfm_sim::Program, sleep: bool) -> (HashSet<Vec<i64>>, u64) {
    let mut states = HashSet::new();
    let explorer = if sleep {
        Explorer::new(program).sleep_sets()
    } else {
        Explorer::new(program)
    };
    let report = explorer
        .limits(ExploreLimits {
            max_schedules: 500_000,
            sleep_sets: sleep,
            ..Default::default()
        })
        .run_with_callback(|exec, _| {
            states.insert(exec.vars().to_vec());
        });
    assert!(!report.truncated, "exploration must complete");
    (states, report.schedules_run)
}

#[test]
fn sleep_sets_preserve_final_states_on_racy_counter() {
    let mut b = ProgramBuilder::new("racy3");
    let v = b.var("counter", 0);
    for name in ["a", "b", "c"] {
        b.thread(
            name,
            vec![
                Stmt::read(v, "t"),
                Stmt::write(v, Expr::local("t") + Expr::lit(1)),
            ],
        );
    }
    let p = b.build().unwrap();
    let (full, full_n) = final_states(&p, false);
    let (reduced, reduced_n) = final_states(&p, true);
    assert_eq!(full, reduced, "reachable final states must be preserved");
    assert!(
        reduced_n < full_n,
        "reduction should shrink the schedule count ({reduced_n} vs {full_n})"
    );
}

#[test]
fn sleep_sets_collapse_independent_threads_to_one_schedule_class() {
    // Three threads on three disjoint variables: all interleavings are
    // equivalent; sleep sets should explore close to a single class
    // instead of 6!/(2!·2!·2!) = 90 schedules.
    let mut b = ProgramBuilder::new("disjoint");
    let vars: Vec<_> = (0..3).map(|i| b.var(["x", "y", "z"][i], 0)).collect();
    for (i, name) in ["a", "b", "c"].into_iter().enumerate() {
        b.thread(
            name,
            vec![
                Stmt::read(vars[i], "t"),
                Stmt::write(vars[i], Expr::local("t") + Expr::lit(1)),
            ],
        );
    }
    let p = b.build().unwrap();
    let full = Explorer::new(&p).run();
    let reduced = Explorer::new(&p).sleep_sets().run();
    assert_eq!(full.schedules_run, 90);
    assert_eq!(
        reduced.schedules_run, 1,
        "fully independent threads have exactly one trace class"
    );
    assert!(reduced.sleep_pruned > 0);
    assert_eq!(reduced.counts.ok, 1);
}

#[test]
fn sleep_sets_preserve_outcome_kinds_on_kernel_shapes() {
    // ABBA deadlock and a lost-update race: both failure kinds must
    // survive the reduction.
    let mut b = ProgramBuilder::new("abba");
    let m1 = b.mutex();
    let m2 = b.mutex();
    b.thread(
        "a",
        vec![
            Stmt::lock(m1),
            Stmt::lock(m2),
            Stmt::unlock(m2),
            Stmt::unlock(m1),
        ],
    );
    b.thread(
        "b",
        vec![
            Stmt::lock(m2),
            Stmt::lock(m1),
            Stmt::unlock(m1),
            Stmt::unlock(m2),
        ],
    );
    let p = b.build().unwrap();
    let full = Explorer::new(&p).run();
    let reduced = Explorer::new(&p).sleep_sets().run();
    assert_eq!(outcome_kinds(&full.counts), outcome_kinds(&reduced.counts));
    assert!(reduced.counts.deadlock > 0);
    assert!(reduced.schedules_run <= full.schedules_run);
}

#[test]
fn sleep_sets_sound_on_generated_programs() {
    let config = GenConfig {
        threads: 3,
        vars: 3,
        mutexes: 2,
        ops_per_thread: 3,
        locked_pct: 30,
        tx_pct: 0, // keep spaces small enough for the full baseline
    };
    for seed in 0..12 {
        let program = generate(&config, seed);
        let (full, full_n) = final_states(&program, false);
        let (reduced, reduced_n) = final_states(&program, true);
        assert_eq!(full, reduced, "seed {seed}: final states diverged");
        assert!(
            reduced_n <= full_n,
            "seed {seed}: reduction increased work ({reduced_n} > {full_n})"
        );
    }
}

#[test]
fn sleep_sets_find_every_kernel_bug() {
    for kernel_name in ["counter_rmw_like", "lost_update"] {
        let _ = kernel_name; // shapes below stand in for the kernel crate
    }
    // Lost update with an assertion: the reduced exploration still finds
    // the failing class.
    let mut b = ProgramBuilder::new("lost");
    let v = b.var("x", 0);
    for name in ["a", "b"] {
        b.thread(
            name,
            vec![
                Stmt::read(v, "t"),
                Stmt::write(v, Expr::local("t") + Expr::lit(1)),
            ],
        );
    }
    b.final_assert(Expr::shared(v).eq(Expr::lit(2)), "kept both");
    let p = b.build().unwrap();
    let reduced = Explorer::new(&p).sleep_sets().run();
    assert!(reduced.counts.assert_failed > 0);
    assert!(reduced.counts.ok > 0);
}
