//! The observability layer must be a pure observer: attaching any sink —
//! no-op, in-memory, or JSONL — must leave every semantic field of the
//! exploration bit-identical to an uninstrumented run. Only wall-clock
//! readings (which live in `ExploreStats::wall`) may differ.

use std::sync::Arc;
use std::time::Duration;

use lfm_obs::{FlightRecorder, JsonlSink, MemorySink, NoopSink, PhaseProfiler, Sink, TeeSink};
use lfm_sim::{ExploreLimits, ExploreReport, Explorer, Expr, ProgramBuilder, Stmt};

fn racy_counter(n_threads: usize) -> lfm_sim::Program {
    let mut b = ProgramBuilder::new("racy-counter");
    let v = b.var("counter", 0);
    let names: &[&'static str] = &["a", "b", "c"];
    for name in &names[..n_threads] {
        b.thread(
            name,
            vec![
                Stmt::read(v, "tmp"),
                Stmt::write(v, Expr::local("tmp") + Expr::lit(1)),
            ],
        );
    }
    b.final_assert(
        Expr::shared(v).eq(Expr::lit(n_threads as i64)),
        "all increments kept",
    );
    b.build().unwrap()
}

/// Everything in the report except wall-clock time.
fn semantic_view(r: &ExploreReport) -> impl PartialEq + std::fmt::Debug {
    (
        r.schedules_run,
        r.steps_total,
        r.counts,
        r.first_failure.clone(),
        r.first_ok.clone(),
        r.truncated,
        r.truncation,
        r.sleep_pruned,
        r.states_deduped,
        // f64 compared bit-for-bit: the estimator must not wobble.
        r.est_total_schedules.to_bits(),
        (
            r.stats.branch_points,
            r.stats.snapshots,
            r.stats.max_depth,
            r.stats.preemption_limited,
        ),
    )
}

fn explore(p: &lfm_sim::Program, sink: Arc<dyn Sink>) -> ExploreReport {
    Explorer::new(p)
        .limits(ExploreLimits {
            max_schedules: 60,
            ..ExploreLimits::default()
        })
        .with_sink(sink)
        .run()
}

#[test]
fn sinks_do_not_perturb_exploration() {
    let p = racy_counter(3);
    let baseline = Explorer::new(&p)
        .limits(ExploreLimits {
            max_schedules: 60,
            ..ExploreLimits::default()
        })
        .run();

    let noop = explore(&p, Arc::new(NoopSink));
    let memory_sink = Arc::new(MemorySink::new());
    let memory = explore(&p, memory_sink.clone());

    assert_eq!(semantic_view(&baseline), semantic_view(&noop));
    assert_eq!(semantic_view(&baseline), semantic_view(&memory));
    // The memory sink actually observed the run the no-op sink skipped.
    assert_eq!(memory_sink.events_named("explore", "start").len(), 1);
    assert_eq!(memory_sink.events_named("explore", "report").len(), 1);
}

#[test]
fn jsonl_sink_does_not_perturb_exploration() {
    let p = racy_counter(2);
    let baseline = Explorer::new(&p).run();

    let dir = std::env::temp_dir().join("lfm-obs-determinism");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("run-{}.jsonl", std::process::id()));
    let sink = JsonlSink::create(&path).unwrap();
    let logged = Explorer::new(&p).with_sink(Arc::new(sink)).run();

    assert_eq!(semantic_view(&baseline), semantic_view(&logged));
    let log = std::fs::read_to_string(&path).unwrap();
    assert!(log.lines().any(|l| l.contains("\"event\":\"report\"")));
    std::fs::remove_file(&path).ok();
}

#[test]
fn repeated_instrumented_runs_are_bit_identical() {
    let p = racy_counter(3);
    let a = explore(&p, Arc::new(MemorySink::new()));
    let b = explore(&p, Arc::new(MemorySink::new()));
    assert_eq!(semantic_view(&a), semantic_view(&b));
}

/// Everything on at once — phase profiler sampling every entry, flight
/// recorder teed in, progress tracking at its tightest cadence — still
/// changes nothing the report can see.
#[test]
fn full_observation_does_not_perturb_exploration() {
    let p = racy_counter(3);
    // Enough schedules to cross the explorer's progress-check stride
    // (every 64th schedule) so the estimator genuinely emits.
    let limits = ExploreLimits {
        max_schedules: 200,
        ..ExploreLimits::default()
    };
    let baseline = Explorer::new(&p).limits(limits.clone()).run();

    let profiler = Arc::new(PhaseProfiler::sampling(0)); // sample everything
    let recorder = Arc::new(FlightRecorder::new());
    let memory = Arc::new(MemorySink::new());
    let sink: Arc<dyn Sink> = Arc::new(TeeSink::new(vec![
        Arc::clone(&memory) as Arc<dyn Sink>,
        Arc::clone(&recorder) as Arc<dyn Sink>,
    ]));
    let observed = Explorer::new(&p)
        .limits(limits.clone())
        .with_sink(sink)
        .profile(Arc::clone(&profiler))
        .progress_every(Duration::from_nanos(1))
        .run();

    assert_eq!(semantic_view(&baseline), semantic_view(&observed));
    // And the instruments genuinely ran: phases were timed, events
    // reached the ring, progress ticks were emitted.
    let profile = profiler.snapshot();
    assert!(!profile.is_empty(), "profiler saw no phases");
    assert!(profile.est_grand_total_nanos() > 0);
    assert!(recorder.recorded() > 0, "flight recorder saw no events");
    assert!(
        !memory.events_named("explore", "progress_est").is_empty(),
        "no progress_est events at a 1ns cadence"
    );
}
