//! Integration tests for exhaustive exploration and the probabilistic
//! schedulers, exercised on canonical bug shapes.

use lfm_sim::{
    explore::trace_of, random::PctScheduler, ExploreLimits, Explorer, Expr, Outcome,
    ProgramBuilder, RandomWalker, Stmt,
};

fn racy_counter(n_threads: usize) -> lfm_sim::Program {
    let mut b = ProgramBuilder::new("racy-counter");
    let v = b.var("counter", 0);
    let names: &[&'static str] = &["a", "b", "c", "d"];
    for name in &names[..n_threads] {
        b.thread(
            name,
            vec![
                Stmt::read(v, "tmp"),
                Stmt::write(v, Expr::local("tmp") + Expr::lit(1)),
            ],
        );
    }
    b.final_assert(
        Expr::shared(v).eq(Expr::lit(n_threads as i64)),
        "all increments kept",
    );
    b.build().unwrap()
}

fn locked_counter() -> lfm_sim::Program {
    let mut b = ProgramBuilder::new("locked-counter");
    let v = b.var("counter", 0);
    let m = b.mutex();
    for name in ["a", "b"] {
        b.thread(
            name,
            vec![
                Stmt::lock(m),
                Stmt::read(v, "tmp"),
                Stmt::write(v, Expr::local("tmp") + Expr::lit(1)),
                Stmt::unlock(m),
            ],
        );
    }
    b.final_assert(Expr::shared(v).eq(Expr::lit(2)), "all increments kept");
    b.build().unwrap()
}

fn abba() -> lfm_sim::Program {
    let mut b = ProgramBuilder::new("abba");
    let m1 = b.mutex();
    let m2 = b.mutex();
    b.thread(
        "a",
        vec![
            Stmt::lock(m1),
            Stmt::lock(m2),
            Stmt::unlock(m2),
            Stmt::unlock(m1),
        ],
    );
    b.thread(
        "b",
        vec![
            Stmt::lock(m2),
            Stmt::lock(m1),
            Stmt::unlock(m1),
            Stmt::unlock(m2),
        ],
    );
    b.build().unwrap()
}

#[test]
fn explorer_finds_the_lost_update() {
    let p = racy_counter(2);
    let report = Explorer::new(&p).run();
    // Two threads with 2 visible ops each: C(4,2)=6 interleavings.
    assert_eq!(report.schedules_run, 6);
    assert!(!report.truncated);
    assert!(report.counts.ok > 0);
    assert!(report.counts.assert_failed > 0);
    assert_eq!(report.counts.total(), 6);
    assert!(report.found_failure());
    assert!(!report.proved_ok());
}

#[test]
fn explorer_proves_the_locked_version_correct() {
    let p = locked_counter();
    let report = Explorer::new(&p).run();
    assert!(report.proved_ok());
    assert_eq!(report.counts.assert_failed, 0);
    assert_eq!(report.counts.deadlock, 0);
    assert!(report.counts.ok > 0);
    assert!(report.first_ok.is_some());
}

#[test]
fn explorer_finds_abba_deadlock() {
    let p = abba();
    let report = Explorer::new(&p).run();
    assert!(report.counts.deadlock > 0, "ABBA deadlock must be found");
    assert!(report.counts.ok > 0, "non-deadlocking interleavings exist");
    let (sched, outcome) = report.first_failure.expect("witness recorded");
    assert!(outcome.is_deadlock());
    // The witness replays to the same outcome.
    let mut exec = lfm_sim::Executor::new(&p);
    assert_eq!(exec.replay(&sched, 1000), outcome);
}

#[test]
fn failure_witness_replays_deterministically() {
    let p = racy_counter(2);
    let report = Explorer::new(&p).run();
    let (sched, outcome) = report.first_failure.expect("failure exists");
    for _ in 0..3 {
        let mut exec = lfm_sim::Executor::new(&p);
        assert_eq!(exec.replay(&sched, 1000), outcome);
    }
}

#[test]
fn preemption_bound_zero_sees_only_non_preemptive_schedules() {
    let p = racy_counter(2);
    let report = Explorer::new(&p).preemption_bound(0).run();
    // Without preemptions each thread runs to completion once started:
    // only the two serial orders remain, both correct.
    assert_eq!(report.schedules_run, 2);
    assert_eq!(report.counts.ok, 2);
    assert_eq!(report.counts.assert_failed, 0);
}

#[test]
fn preemption_bound_one_already_manifests_the_bug() {
    // The study's Finding: small preemption depth suffices for most
    // non-deadlock bugs (this one needs a single preemption).
    let p = racy_counter(2);
    let report = Explorer::new(&p).preemption_bound(1).run();
    assert!(report.counts.assert_failed > 0);
}

#[test]
fn schedule_cap_truncates_large_spaces() {
    let p = racy_counter(4);
    let report = Explorer::new(&p)
        .limits(ExploreLimits {
            max_schedules: 10,
            ..ExploreLimits::default()
        })
        .run();
    assert!(report.truncated);
    assert_eq!(report.schedules_run, 10);
}

#[test]
fn stop_on_first_failure_short_circuits() {
    let p = racy_counter(3);
    let full = Explorer::new(&p).run();
    let quick = Explorer::new(&p).stop_on_first_failure().run();
    assert!(quick.found_failure());
    assert!(quick.schedules_run < full.schedules_run);
}

#[test]
fn callback_sees_every_terminal_state() {
    let p = racy_counter(2);
    let mut seen = 0u64;
    let report = Explorer::new(&p).run_with_callback(|exec, outcome| {
        seen += 1;
        assert!(exec.is_done() || matches!(outcome, Outcome::StepLimit));
    });
    assert_eq!(seen, report.schedules_run);
}

#[test]
fn trace_of_reproduces_the_failure_with_events() {
    let p = racy_counter(2);
    let report = Explorer::new(&p).run();
    let (sched, outcome) = report.first_failure.unwrap();
    let (trace, replayed) = trace_of(&p, &sched, 1000);
    assert_eq!(replayed, outcome);
    assert_eq!(trace.accesses().count(), 4);
}

#[test]
fn random_walker_is_seed_deterministic() {
    let p = racy_counter(2);
    let r1 = RandomWalker::new(&p, 42).run_trials(200);
    let r2 = RandomWalker::new(&p, 42).run_trials(200);
    assert_eq!(r1.counts, r2.counts);
    assert_eq!(r1.trials, 200);
    // The race is wide; random testing should hit it sometimes.
    assert!(r1.failure_rate() > 0.0);
    assert!(r1.failure_rate() < 1.0);
}

#[test]
fn random_walker_different_seeds_differ() {
    let p = racy_counter(3);
    let r1 = RandomWalker::new(&p, 1).run_trials(50);
    let r2 = RandomWalker::new(&p, 2).run_trials(50);
    // Not a hard guarantee, but with 50 trials on a 3-thread race the
    // histograms essentially never coincide exactly for distinct seeds.
    assert!(
        r1.counts != r2.counts || r1.first_failure != r2.first_failure,
        "seeds should decorrelate runs"
    );
}

#[test]
fn collect_traces_returns_recorded_runs() {
    let p = racy_counter(2);
    let traces = RandomWalker::new(&p, 7).collect_traces(5);
    assert_eq!(traces.len(), 5);
    for (trace, _) in &traces {
        assert_eq!(trace.n_threads, 2);
        assert!(trace.accesses().count() >= 4);
    }
}

#[test]
fn pct_finds_the_race_with_depth_two() {
    let p = racy_counter(2);
    let report = PctScheduler::new(&p, 11, 2).run_trials(500);
    assert!(report.counts.failures() > 0, "PCT should hit the bug");
}

#[test]
fn pct_finds_abba() {
    let p = abba();
    let report = PctScheduler::new(&p, 3, 2).run_trials(500);
    assert!(report.counts.deadlock > 0);
}

#[test]
fn explorer_counts_match_interleaving_combinatorics() {
    // Three racing threads with 2 ops each: 6!/(2!·2!·2!) = 90 schedules.
    let p = racy_counter(3);
    let report = Explorer::new(&p).run();
    assert_eq!(report.schedules_run, 90);
    assert_eq!(report.counts.total(), 90);
    // Exactly the 6 serial-looking value outcomes are correct: each of the
    // 3! serial orders... (correctness is rarer than failure here).
    assert!(report.counts.assert_failed > report.counts.ok);
}
