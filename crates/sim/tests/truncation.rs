//! Every budget trips on a tiny witness program, is reported in the
//! [`ExploreReport`], and appears in the `explore`/`report` event fields.

use std::sync::Arc;
use std::time::Duration;

use lfm_obs::MemorySink;
use lfm_sim::{ExploreLimits, Explorer, Expr, Program, ProgramBuilder, Stmt, Truncation};

/// One thread spinning forever on a shared flag nobody sets: every
/// execution is cut by the step budget.
fn spinner() -> Program {
    let mut b = ProgramBuilder::new("spinner");
    let v = b.var("flag", 0);
    b.thread(
        "spin",
        vec![
            Stmt::read(v, "f"),
            Stmt::while_loop(Expr::local("f").eq(Expr::lit(0)), vec![Stmt::read(v, "f")]),
        ],
    );
    b.build().unwrap()
}

/// Two unsynchronized incrementers: several schedules, all terminating.
fn racy_counter() -> Program {
    let mut b = ProgramBuilder::new("racy");
    let v = b.var("counter", 0);
    for name in ["a", "b"] {
        b.thread(
            name,
            vec![
                Stmt::read(v, "tmp"),
                Stmt::write(v, Expr::local("tmp") + Expr::lit(1)),
            ],
        );
    }
    b.final_assert(Expr::shared(v).eq(Expr::lit(2)), "no lost update");
    b.build().unwrap()
}

/// A transaction that retries unconditionally until the retry budget.
fn retry_forever() -> Program {
    let mut b = ProgramBuilder::new("retry-forever");
    let v = b.var("never", 0);
    b.thread(
        "t",
        vec![
            Stmt::TxBegin,
            Stmt::read(v, "n"),
            Stmt::if_then(Expr::local("n").eq(Expr::lit(0)), vec![Stmt::TxRetry]),
            Stmt::TxCommit,
        ],
    );
    b.build().unwrap()
}

fn report_event_field(sink: &MemorySink, key: &str) -> Option<String> {
    let reports = sink.events_named("explore", "report");
    assert_eq!(reports.len(), 1, "exactly one report event");
    reports[0].field(key).map(|v| match v.as_str() {
        Some(s) => s.to_owned(),
        None => format!("{v:?}"),
    })
}

#[test]
fn step_budget_trips_and_is_reported() {
    let sink = Arc::new(MemorySink::new());
    let p = spinner();
    let report = Explorer::new(&p)
        .with_sink(sink.clone())
        .limits(ExploreLimits {
            max_steps: 25,
            ..ExploreLimits::default()
        })
        .run();
    assert!(report.counts.step_limit > 0);
    assert_eq!(report.truncation, Some(Truncation::StepBudget));
    assert!(!report.proved_ok());
    assert_eq!(
        report_event_field(&sink, "truncation").as_deref(),
        Some("step budget")
    );
}

#[test]
fn schedule_budget_trips_and_is_reported() {
    let sink = Arc::new(MemorySink::new());
    let p = racy_counter();
    let report = Explorer::new(&p)
        .with_sink(sink.clone())
        .limits(ExploreLimits {
            max_schedules: 2,
            ..ExploreLimits::default()
        })
        .run();
    assert!(report.truncated);
    assert_eq!(report.schedules_run, 2);
    assert_eq!(report.truncation, Some(Truncation::ScheduleBudget));
    assert_eq!(
        report_event_field(&sink, "truncation").as_deref(),
        Some("schedule budget")
    );
}

#[test]
fn tx_retry_budget_trips_and_is_counted() {
    let sink = Arc::new(MemorySink::new());
    let p = retry_forever();
    let report = Explorer::new(&p).with_sink(sink.clone()).run();
    assert!(report.counts.tx_retry_limit > 0);
    let reports = sink.events_named("explore", "report");
    let counted = reports[0]
        .field("tx_retry_limit")
        .and_then(|v| v.as_u64())
        .unwrap();
    assert!(counted > 0, "tx_retry_limit surfaces in the report event");
}

#[test]
fn wall_deadline_trips_and_is_reported() {
    let sink = Arc::new(MemorySink::new());
    let p = racy_counter();
    let report = Explorer::new(&p)
        .with_sink(sink.clone())
        .limits(ExploreLimits {
            deadline: Some(Duration::ZERO),
            ..ExploreLimits::default()
        })
        .run();
    assert!(report.truncated);
    assert_eq!(report.schedules_run, 0, "zero deadline runs no schedules");
    assert_eq!(report.truncation, Some(Truncation::WallDeadline));
    assert_eq!(
        report_event_field(&sink, "truncation").as_deref(),
        Some("wall deadline")
    );
    // The configured deadline is surfaced on both start and report.
    let starts = sink.events_named("explore", "start");
    assert!(starts[0].field("deadline_ms").is_some());
    assert!(sink.events_named("explore", "report")[0]
        .field("deadline_ms")
        .is_some());
}

#[test]
fn wall_deadline_takes_precedence_over_schedule_budget() {
    let p = racy_counter();
    let report = Explorer::new(&p)
        .limits(ExploreLimits {
            deadline: Some(Duration::ZERO),
            max_schedules: 1,
            ..ExploreLimits::default()
        })
        .run();
    assert_eq!(report.truncation, Some(Truncation::WallDeadline));
}

#[test]
fn generous_deadline_leaves_exploration_untruncated() {
    let p = racy_counter();
    let report = Explorer::new(&p)
        .limits(ExploreLimits {
            deadline: Some(Duration::from_secs(60)),
            ..ExploreLimits::default()
        })
        .run();
    assert!(!report.truncated);
    assert_eq!(report.truncation, None);
    assert!(report.counts.failures() > 0, "racy counter still explored");
}
