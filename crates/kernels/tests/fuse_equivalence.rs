//! Invisible-step fusion's soundness contract, differentially:
//!
//! Fusion promises that executing an *invisible* operation immediately
//! — instead of making it a branch point — loses nothing, because an
//! op that touches no shared variable and no sync object is a global
//! both-mover: every outcome reachable by delaying it is reached
//! through an equivalent trace. So the **set of reachable terminal
//! outcomes and final states** with fusion on must equal the set with
//! fusion off, under every search mode fusion composes with: plain
//! DFS, state dedup, sleep sets, and source-set DPOR. This harness
//! checks that promise on **every** kernel variant — all buggy
//! programs and every fixed variant.
//!
//! Two more contracts ride along:
//!
//! * the parallel explorer with fusion on must reproduce the serial
//!   fused report **field for field** at 2 and 4 workers — including
//!   the `fused_steps` and `snapshots_elided` counters, which a racy
//!   merge would be the first to corrupt — and
//! * under a seeded fault plan fusion is unsound (fault decisions are
//!   step-indexed, so "invisible" ops can change the fault schedule)
//!   and must silently disable itself: a fused chaos run must be
//!   bit-identical to an unfused chaos run, with zero steps claimed
//!   as fused on either side.
//!
//! Outcome sets are only compared when both searches ran to
//! completion: a truncated or step-capped search is not closed under
//! trace equivalence, so set equality is not owed there. The suite
//! asserts that the strong comparison actually covered most variants
//! and that fusion actually fired somewhere, so cap creep cannot
//! quietly hollow the test out.

use std::collections::BTreeSet;

use lfm_kernels::{registry, Variant};
use lfm_sim::{ExploreLimits, ExploreReport, Explorer, FaultPlan, Outcome, ParExplorer, Program};

/// Worker counts for the parallel bit-identity contract.
const JOBS: [usize; 2] = [2, 4];

/// The chaos seed (same one the E-chaos experiment and CI smoke use).
const CHAOS_SEED: u64 = 42;

/// The search modes fusion claims to compose with. Dedup and DPOR are
/// exercised separately (DPOR silently disables dedup); sleep sets
/// ride on plain DFS.
#[derive(Clone, Copy)]
enum Mode {
    Plain,
    Dedup,
    Sleep,
    Dpor,
}

impl Mode {
    const ALL: [Mode; 4] = [Mode::Plain, Mode::Dedup, Mode::Sleep, Mode::Dpor];

    fn name(self) -> &'static str {
        match self {
            Mode::Plain => "plain",
            Mode::Dedup => "dedup",
            Mode::Sleep => "sleep",
            Mode::Dpor => "dpor",
        }
    }
}

/// Shared caps, mirroring `dpor_equivalence.rs`: big enough that small
/// kernels explore exhaustively, small enough that unfused full
/// enumerations of the livelock/transaction kernels truncate quickly.
fn limits(mode: Mode, fuse: bool) -> ExploreLimits {
    ExploreLimits {
        max_steps: 4_000,
        max_schedules: 20_000,
        dedup_states: matches!(mode, Mode::Dedup),
        sleep_sets: matches!(mode, Mode::Sleep),
        dpor: matches!(mode, Mode::Dpor),
        fuse,
        ..ExploreLimits::default()
    }
}

/// Every variant of one kernel: the buggy build plus each fix.
fn variants(kernel: &lfm_kernels::Kernel) -> Vec<(String, Program)> {
    let mut out = vec![("buggy".to_string(), kernel.buggy())];
    for &fix in kernel.fixes {
        out.push((format!("fixed:{fix}"), kernel.build(Variant::Fixed(fix))));
    }
    out
}

/// Terminal fingerprints of one serial run: the outcome's display form
/// and, for executions that run to their natural end, the final state
/// key. Ok and deadlock states are invariants of the Mazurkiewicz
/// class, so fusion owes us each one; aborting outcomes cut the
/// execution mid-class, so for those only the outcome itself is owed —
/// the same contract `dpor_equivalence.rs` uses.
type OutcomeSet = BTreeSet<(String, u64)>;

fn outcome_set(program: &Program, limits: ExploreLimits) -> (ExploreReport, OutcomeSet) {
    let mut set = OutcomeSet::new();
    let report = Explorer::new(program)
        .limits(limits)
        .run_with_callback(|exec, outcome| {
            let keyed = matches!(outcome, Outcome::Ok | Outcome::Deadlock { .. });
            set.insert((
                outcome.to_string(),
                if keyed { exec.state_key() } else { 0 },
            ));
        });
    (report, set)
}

/// Field-for-field report equality, wall time excluded (a clock writes
/// that field, not the search). Extends `dpor_equivalence.rs`'s check
/// with the fusion counters.
fn assert_identical(label: &str, a: &ExploreReport, b: &ExploreReport) {
    assert_eq!(a.counts, b.counts, "{label}: counts");
    assert_eq!(a.schedules_run, b.schedules_run, "{label}: schedules_run");
    assert_eq!(a.steps_total, b.steps_total, "{label}: steps_total");
    assert_eq!(a.truncated, b.truncated, "{label}: truncated");
    assert_eq!(a.first_failure, b.first_failure, "{label}: first_failure");
    assert_eq!(a.first_ok, b.first_ok, "{label}: first_ok");
    assert_eq!(
        a.states_deduped, b.states_deduped,
        "{label}: states_deduped"
    );
    assert_eq!(a.sleep_pruned, b.sleep_pruned, "{label}: sleep_pruned");
    assert_eq!(a.dpor_pruned, b.dpor_pruned, "{label}: dpor_pruned");
    assert_eq!(a.truncation, b.truncation, "{label}: truncation");
    assert_eq!(
        a.stats.branch_points, b.stats.branch_points,
        "{label}: branch_points"
    );
    assert_eq!(
        a.stats.fused_steps, b.stats.fused_steps,
        "{label}: fused_steps"
    );
    assert_eq!(
        a.stats.snapshots_elided, b.stats.snapshots_elided,
        "{label}: snapshots_elided"
    );
    assert_eq!(a.stats.max_depth, b.stats.max_depth, "{label}: max_depth");
    assert_eq!(
        a.est_total_schedules.to_bits(),
        b.est_total_schedules.to_bits(),
        "{label}: est_total_schedules ({} vs {})",
        a.est_total_schedules,
        b.est_total_schedules
    );
}

/// `true` when a serial run exhausted its space: nothing truncated and
/// no execution hit the step cap.
fn complete(report: &ExploreReport) -> bool {
    !report.truncated && report.counts.step_limit == 0
}

/// Compares the fused outcome set against the unfused one for one
/// variant under one mode. Returns the fused run's `fused_steps` when
/// the strong comparison ran, `None` when a budget cap skipped it.
fn check_outcome_sets(label: &str, program: &Program, mode: Mode) -> Option<u64> {
    let (base, base_set) = outcome_set(program, limits(mode, false));
    let (fused, fused_set) = outcome_set(program, limits(mode, true));
    if !complete(&base) || !complete(&fused) {
        return None;
    }
    assert_eq!(
        base_set, fused_set,
        "{label}: fused outcome set diverged from unfused"
    );
    // Fusion only removes branch points; it can never add schedules.
    assert!(
        fused.schedules_run <= base.schedules_run,
        "{label}: fused search ran {} schedules, unfused {}",
        fused.schedules_run,
        base.schedules_run
    );
    Some(fused.stats.fused_steps)
}

#[test]
fn fused_outcome_sets_match_unfused_under_every_mode() {
    for mode in Mode::ALL {
        let mut compared = 0usize;
        let mut skipped = 0usize;
        let mut fused_steps = 0u64;
        for kernel in registry::all() {
            for (variant, program) in variants(&kernel) {
                let label = format!("{}/{variant} [{}]", kernel.id, mode.name());
                match check_outcome_sets(&label, &program, mode) {
                    Some(steps) => {
                        compared += 1;
                        fused_steps += steps;
                    }
                    None => skipped += 1,
                }
            }
        }
        assert!(
            compared > skipped,
            "[{}] only {compared} variants compared strongly, {skipped} skipped: \
             caps too small for the harness to mean anything",
            mode.name()
        );
        assert!(
            fused_steps > 0,
            "[{}] no steps were fused across any compared variant: \
             the differential suite is vacuous",
            mode.name()
        );
    }
}

#[test]
fn parallel_fused_search_matches_serial_field_for_field() {
    for kernel in registry::all() {
        for (variant, program) in variants(&kernel) {
            for mode in [Mode::Plain, Mode::Dpor] {
                let baseline = Explorer::new(&program).limits(limits(mode, true)).run();
                for jobs in JOBS {
                    let merged = ParExplorer::new(&program)
                        .limits(limits(mode, true))
                        .jobs(jobs)
                        .run();
                    assert_identical(
                        &format!("{}/{variant} [{}, jobs={jobs}]", kernel.id, mode.name()),
                        &baseline,
                        &merged,
                    );
                }
            }
        }
    }
}

#[test]
fn chaos_silently_disables_fusion_everywhere() {
    // Fault decisions are step-indexed: fusing an "invisible" op shifts
    // every later step index, so the same plan would inject different
    // faults and the searches would genuinely diverge. A fused chaos
    // request must therefore resolve to the unfused search —
    // bit-identical to never having asked, zero steps claimed as fused.
    // Dedup stays on, keeping the big kernels cheap, same as
    // `dpor_equivalence.rs`'s chaos leg.
    let chaos_limits = |fuse: bool| ExploreLimits {
        max_steps: 4_000,
        max_schedules: 20_000,
        dedup_states: true,
        fuse,
        ..ExploreLimits::default()
    };
    for kernel in registry::all() {
        for (variant, program) in variants(&kernel) {
            let plain = Explorer::new(&program)
                .limits(chaos_limits(false))
                .chaos(FaultPlan::new(CHAOS_SEED))
                .run();
            let requested = Explorer::new(&program)
                .limits(chaos_limits(true))
                .chaos(FaultPlan::new(CHAOS_SEED))
                .run();
            let label = format!("{}/{variant} [chaos seed {CHAOS_SEED}]", kernel.id);
            assert_identical(&label, &plain, &requested);
            assert_eq!(
                requested.stats.fused_steps, 0,
                "{label}: claimed fused steps under chaos"
            );
            assert_eq!(
                plain.stats.fused_steps, 0,
                "{label}: unfused run claimed fused steps"
            );
        }
    }
}
