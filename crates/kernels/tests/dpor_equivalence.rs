//! Source-set DPOR's soundness contract, differentially:
//!
//! DPOR promises to visit at least one representative of every
//! Mazurkiewicz trace class, so the **set of reachable terminal
//! outcomes and final states** must equal full enumeration's — while
//! running no more (and usually far fewer) schedules. This harness
//! checks that promise on **every** kernel variant — all buggy
//! programs and every fixed variant — for plain DPOR and for DPOR
//! composed with sleep sets.
//!
//! Two more contracts ride along:
//!
//! * the parallel explorer under DPOR must reproduce the serial DPOR
//!   report **field for field** at 2 and 4 workers (the same
//!   serial-preorder commit contract `par_equivalence.rs` checks for
//!   the classic search), and
//! * under a seeded fault plan DPOR is unsound and must silently
//!   disable itself — a DPOR-requested chaos run must be bit-identical
//!   to a plain chaos run, with zero schedules claimed as pruned.
//!
//! Outcome sets are only compared when both searches ran to
//! completion: a truncated or step-capped search is not closed under
//! trace equivalence, so set equality is not owed there. The suite
//! asserts that the strong comparison actually covered most variants,
//! so cap creep cannot quietly hollow the test out.

use std::collections::BTreeSet;

use lfm_kernels::{registry, Variant};
use lfm_sim::{ExploreLimits, ExploreReport, Explorer, FaultPlan, Outcome, ParExplorer, Program};

/// Worker counts for the parallel bit-identity contract.
const JOBS: [usize; 2] = [2, 4];

/// The chaos seed (same one the E-chaos experiment and CI smoke use).
const CHAOS_SEED: u64 = 42;

/// Shared caps, mirroring `par_equivalence.rs`: big enough that small
/// kernels explore exhaustively, small enough that dedup-off full
/// enumerations of the livelock/transaction kernels truncate quickly.
fn limits(dpor: bool, sleep: bool) -> ExploreLimits {
    ExploreLimits {
        max_steps: 4_000,
        max_schedules: 20_000,
        dedup_states: false,
        sleep_sets: sleep,
        dpor,
        ..ExploreLimits::default()
    }
}

/// Every variant of one kernel: the buggy build plus each fix.
fn variants(kernel: &lfm_kernels::Kernel) -> Vec<(String, Program)> {
    let mut out = vec![("buggy".to_string(), kernel.buggy())];
    for &fix in kernel.fixes {
        out.push((format!("fixed:{fix}"), kernel.build(Variant::Fixed(fix))));
    }
    out
}

/// Terminal fingerprints of one serial run: the outcome's display form
/// (kind plus participants) and, for executions that run to their
/// natural end, the final state key. Ok and deadlock states are
/// invariants of the Mazurkiewicz class (every equivalent interleaving
/// ends in the same state), so DPOR owes us each one. Aborting outcomes
/// (assert failure, misuse, retry-limit) cut the execution mid-class —
/// the machine state at the cut depends on how far *independent* ops in
/// other threads happened to get, which is exactly the order DPOR
/// prunes — so for those only the outcome itself is owed.
type OutcomeSet = BTreeSet<(String, u64)>;

fn outcome_set(program: &Program, limits: ExploreLimits) -> (ExploreReport, OutcomeSet) {
    let mut set = OutcomeSet::new();
    let report = Explorer::new(program)
        .limits(limits)
        .run_with_callback(|exec, outcome| {
            let keyed = matches!(outcome, Outcome::Ok | Outcome::Deadlock { .. });
            set.insert((
                outcome.to_string(),
                if keyed { exec.state_key() } else { 0 },
            ));
        });
    (report, set)
}

/// Field-for-field report equality, wall time excluded (a clock writes
/// that field, not the search).
fn assert_identical(label: &str, a: &ExploreReport, b: &ExploreReport) {
    assert_eq!(a.counts, b.counts, "{label}: counts");
    assert_eq!(a.schedules_run, b.schedules_run, "{label}: schedules_run");
    assert_eq!(a.steps_total, b.steps_total, "{label}: steps_total");
    assert_eq!(a.truncated, b.truncated, "{label}: truncated");
    assert_eq!(a.first_failure, b.first_failure, "{label}: first_failure");
    assert_eq!(a.first_ok, b.first_ok, "{label}: first_ok");
    assert_eq!(
        a.states_deduped, b.states_deduped,
        "{label}: states_deduped"
    );
    assert_eq!(a.sleep_pruned, b.sleep_pruned, "{label}: sleep_pruned");
    assert_eq!(a.dpor_pruned, b.dpor_pruned, "{label}: dpor_pruned");
    assert_eq!(a.truncation, b.truncation, "{label}: truncation");
    assert_eq!(
        a.stats.branch_points, b.stats.branch_points,
        "{label}: branch_points"
    );
    assert_eq!(a.stats.max_depth, b.stats.max_depth, "{label}: max_depth");
    assert_eq!(
        a.est_total_schedules.to_bits(),
        b.est_total_schedules.to_bits(),
        "{label}: est_total_schedules ({} vs {})",
        a.est_total_schedules,
        b.est_total_schedules
    );
}

/// `true` when a serial run exhausted its space: nothing truncated and
/// no execution hit the step cap (a step-capped path is a prefix, and
/// prefixes are not closed under trace equivalence).
fn complete(report: &ExploreReport) -> bool {
    !report.truncated && report.counts.step_limit == 0
}

/// Compares DPOR's outcome set against full enumeration's for one
/// variant. Returns `true` when the strong comparison ran.
fn check_outcome_sets(label: &str, program: &Program, dpor_limits: ExploreLimits) -> bool {
    let (full, full_set) = outcome_set(program, limits(false, false));
    let (reduced, reduced_set) = outcome_set(program, dpor_limits);
    if !complete(&full) || !complete(&reduced) {
        return false;
    }
    assert_eq!(
        full_set, reduced_set,
        "{label}: DPOR outcome set diverged from full enumeration"
    );
    // DPOR explores a subset of the full tree's schedules; with the
    // all-enabled fallback it can match the count, never exceed it.
    assert!(
        reduced.schedules_run <= full.schedules_run,
        "{label}: DPOR ran {} schedules, full enumeration {}",
        reduced.schedules_run,
        full.schedules_run
    );
    true
}

/// Runs the outcome-set comparison over every variant and config,
/// asserting the strong check was not hollowed out by budget caps.
fn check_all_outcome_sets(sleep: bool) {
    let config = if sleep { "dpor+sleep" } else { "dpor" };
    let mut compared = 0usize;
    let mut skipped = 0usize;
    for kernel in registry::all() {
        for (variant, program) in variants(&kernel) {
            let label = format!("{}/{variant} [{config}]", kernel.id);
            if check_outcome_sets(&label, &program, limits(true, sleep)) {
                compared += 1;
            } else {
                skipped += 1;
            }
        }
    }
    assert!(
        compared > skipped,
        "[{config}] only {compared} variants compared strongly, {skipped} skipped: \
         caps too small for the harness to mean anything"
    );
}

#[test]
fn dpor_outcome_sets_match_full_enumeration() {
    check_all_outcome_sets(false);
}

#[test]
fn dpor_with_sleep_sets_outcome_sets_match_full_enumeration() {
    check_all_outcome_sets(true);
}

#[test]
fn parallel_dpor_matches_serial_dpor_field_for_field() {
    for kernel in registry::all() {
        for (variant, program) in variants(&kernel) {
            for sleep in [false, true] {
                let config = if sleep { "dpor+sleep" } else { "dpor" };
                let baseline = Explorer::new(&program).limits(limits(true, sleep)).run();
                for jobs in JOBS {
                    let merged = ParExplorer::new(&program)
                        .limits(limits(true, sleep))
                        .jobs(jobs)
                        .run();
                    assert_identical(
                        &format!("{}/{variant} [{config}, jobs={jobs}]", kernel.id),
                        &baseline,
                        &merged,
                    );
                }
            }
        }
    }
}

#[test]
fn chaos_silently_disables_dpor_everywhere() {
    // Step-indexed fault decisions break the trace-equivalence argument,
    // so under a fault plan a DPOR request must resolve to the classic
    // search — bit-identical to never having asked, nothing "pruned".
    // Dedup stays on (it only yields to DPOR when DPOR actually runs),
    // keeping the big kernels cheap, same as par_equivalence's chaos leg.
    let chaos_limits = |dpor: bool| ExploreLimits {
        max_steps: 4_000,
        max_schedules: 20_000,
        dedup_states: true,
        sleep_sets: false,
        dpor,
        ..ExploreLimits::default()
    };
    for kernel in registry::all() {
        for (variant, program) in variants(&kernel) {
            let plain = Explorer::new(&program)
                .limits(chaos_limits(false))
                .chaos(FaultPlan::new(CHAOS_SEED))
                .run();
            let requested = Explorer::new(&program)
                .limits(chaos_limits(true))
                .chaos(FaultPlan::new(CHAOS_SEED))
                .run();
            let label = format!("{}/{variant} [chaos seed {CHAOS_SEED}]", kernel.id);
            assert_identical(&label, &plain, &requested);
            assert_eq!(requested.dpor_pruned, 0, "{label}: claimed DPOR prunes");
        }
    }
}
