//! The kernel contract, checked with the model checker:
//!
//! 1. every buggy variant manifests its expected failure under some
//!    interleaving;
//! 2. every fixed variant is proved correct by exhaustive exploration;
//! 3. manifestation scope matches the study's findings (threads,
//!    preemption depth).

use lfm_kernels::{registry, ExpectedFailure, Family, FixKind, Variant};
use lfm_sim::{ExploreLimits, Explorer, Outcome};

fn explore(program: &lfm_sim::Program) -> lfm_sim::ExploreReport {
    Explorer::new(program)
        .limits(ExploreLimits {
            max_steps: 2_000,
            max_schedules: 500_000,
            ..ExploreLimits::default()
        })
        .run()
}

#[test]
fn every_buggy_kernel_manifests_its_expected_failure() {
    for kernel in registry::all() {
        let report = explore(&kernel.buggy());
        match kernel.expected {
            ExpectedFailure::Assert => assert!(
                report.counts.assert_failed > 0,
                "{}: expected an assertion failure, got {:?}",
                kernel.id,
                report.counts
            ),
            ExpectedFailure::Deadlock => assert!(
                report.counts.deadlock > 0,
                "{}: expected a deadlock, got {:?}",
                kernel.id,
                report.counts
            ),
        }
    }
}

#[test]
fn buggy_kernels_also_have_correct_interleavings() {
    // A concurrency bug hides: most interleavings pass. The exception is
    // the one-thread self-deadlocks (self_relock, rwlock_upgrade), which
    // fail deterministically once the thread runs — exactly like their
    // real-world counterparts, which fire on every execution of the
    // buggy code path.
    for kernel in registry::all() {
        if kernel.threads == 1 {
            continue;
        }
        let report = explore(&kernel.buggy());
        assert!(
            report.counts.ok > 0,
            "{}: every interleaving failed — that is not a concurrency bug",
            kernel.id
        );
    }
}

#[test]
fn every_fixed_variant_is_proved_correct() {
    for kernel in registry::all() {
        for &fix in kernel.fixes {
            let program = kernel.build(Variant::Fixed(fix));
            // State dedup collapses the retry-loop blowup of the
            // transactional variants; exact for safety properties.
            let report = Explorer::new(&program)
                .limits(ExploreLimits {
                    max_steps: 2_000,
                    max_schedules: 500_000,
                    dedup_states: true,
                    ..ExploreLimits::default()
                })
                .run();
            assert!(
                report.proved_ok(),
                "{} fixed by {fix}: {:?} truncated={}",
                kernel.id,
                report.counts,
                report.truncated
            );
        }
    }
}

#[test]
fn failure_witnesses_replay_deterministically() {
    for kernel in registry::all() {
        let program = kernel.buggy();
        let report = Explorer::new(&program).stop_on_first_failure().run();
        let (schedule, outcome) = report
            .first_failure
            .unwrap_or_else(|| panic!("{} has a failure", kernel.id));
        let mut exec = lfm_sim::Executor::new(&program);
        let replayed = exec.replay(&schedule, 5_000);
        assert_eq!(replayed, outcome, "{}: witness must replay", kernel.id);
    }
}

#[test]
fn non_deadlock_kernels_manifest_within_small_preemption_depth() {
    // The study's small-scope finding: enforcing a handful of ordering
    // points suffices. Two preemptions bound covers every kernel here.
    for kernel in registry::all() {
        if kernel.family == Family::Deadlock {
            continue;
        }
        let report = Explorer::new(&kernel.buggy()).preemption_bound(2).run();
        assert!(
            report.counts.failures() > 0,
            "{}: should manifest within 2 preemptions",
            kernel.id
        );
    }
}

#[test]
fn deadlock_kernels_manifest_within_two_preemptions() {
    for kernel in registry::by_family(Family::Deadlock) {
        let report = Explorer::new(&kernel.buggy()).preemption_bound(2).run();
        assert!(
            report.counts.deadlock > 0,
            "{}: deadlock should appear within 2 preemptions",
            kernel.id
        );
    }
}

#[test]
fn self_deadlocks_need_only_one_thread() {
    // 22% of the studied deadlocks involve a single thread; our
    // single-thread deadlock kernels must deadlock in EVERY schedule
    // restricted to... well, they only have one thread of consequence.
    for id in ["self_relock", "rwlock_upgrade"] {
        let kernel = registry::by_id(id).unwrap();
        assert_eq!(kernel.threads, 1, "{id} is a one-thread deadlock");
    }
    let kernel = registry::by_id("self_relock").unwrap();
    let report = explore(&kernel.buggy());
    assert_eq!(
        report.counts.ok, 0,
        "self_relock deadlocks deterministically"
    );
}

#[test]
fn abba_giveup_fix_never_deadlocks_but_may_skip_work() {
    // The study's F7 caveat, measured: give-up-resource fixes eliminate
    // the deadlock but can introduce *non-deadlock* misbehaviour — here,
    // bounded retries may give up entirely and silently drop work.
    let kernel = registry::by_id("abba").unwrap();

    let giveup = kernel.build(Variant::Fixed(FixKind::GiveUp));
    let mut incomplete = 0u64;
    let mut total = 0u64;
    let report = Explorer::new(&giveup)
        .dedup_states()
        .run_with_callback(|exec, _| {
            total += 1;
            if exec.vars()[0] < 2 {
                incomplete += 1;
            }
        });
    assert_eq!(report.counts.deadlock, 0, "the deadlock is gone");
    assert_eq!(report.counts.failures(), 0);
    assert!(
        incomplete > 0,
        "some interleaving should give up and drop work — the introduced \
         non-deadlock bug the study warns about"
    );
    assert!(
        incomplete < total,
        "most interleavings still finish the work"
    );

    // The acquire-in-order fix has no such tradeoff: work always = 2.
    let ordered = kernel.build(Variant::Fixed(FixKind::AcquireInOrder));
    Explorer::new(&ordered).run_with_callback(|exec, _| {
        assert_eq!(exec.vars()[0], 2, "ordered acquisition never drops work");
    });
}

#[test]
fn missed_signal_fix_waits_correctly_both_ways() {
    let kernel = registry::by_id("missed_signal").unwrap();
    let fixed = kernel.build(Variant::Fixed(FixKind::CondCheck));
    let report = explore(&fixed);
    assert!(report.proved_ok(), "{:?}", report.counts);
    // The buggy one deadlocks exactly when the signal precedes the wait.
    let buggy = explore(&kernel.buggy());
    assert!(buggy.counts.deadlock > 0);
    assert!(buggy.counts.ok > 0);
}

#[test]
fn multivar_kernels_declare_multiple_variables() {
    for kernel in registry::by_family(Family::MultiVariable) {
        assert!(
            kernel.variables >= 2,
            "{} must involve several variables",
            kernel.id
        );
    }
}

#[test]
fn random_stress_misses_bugs_that_exploration_finds() {
    // The testing implication: with a small random-testing budget, at
    // least one kernel's bug goes unseen while systematic exploration
    // finds every one of them. (Seeded, so deterministic; the point is
    // the *existence* of such a kernel at this budget.)
    let mut stress_missed_any = false;
    for kernel in registry::all() {
        let program = kernel.buggy();
        let stress = lfm_sim::RandomWalker::new(&program, 12345).run_trials(3);
        let systematic = Explorer::new(&program).stop_on_first_failure().run();
        assert!(systematic.found_failure(), "{}", kernel.id);
        if stress.counts.failures() == 0 {
            stress_missed_any = true;
        }
    }
    assert!(
        stress_missed_any,
        "some kernel should evade 3 random trials — else the corpus is too easy"
    );
}

#[test]
fn transaction_fixes_serialize_their_regions() {
    for kernel in registry::all() {
        if !kernel.fixes.contains(&FixKind::Transaction) {
            continue;
        }
        let program = kernel.build(Variant::Fixed(FixKind::Transaction));
        let report = Explorer::new(&program).dedup_states().run();
        // Transactions must remove the bug for every kernel that offers
        // the TM fix (I/O-in-region duplication is measured separately by
        // lfm-stm, not an assertion failure here).
        assert!(
            report.counts.failures() == 0 && !report.truncated,
            "{} under TM: {:?}",
            kernel.id,
            report.counts
        );
    }
}

#[test]
fn outcome_classification_matches_is_failure() {
    let kernel = registry::by_id("abba").unwrap();
    let report = Explorer::new(&kernel.buggy()).stop_on_first_failure().run();
    let (_, outcome) = report.first_failure.unwrap();
    assert!(outcome.is_failure());
    assert!(matches!(outcome, Outcome::Deadlock { .. }));
}

#[test]
fn sleep_set_reduction_preserves_every_kernel_bug() {
    // The sleep-set partial-order reduction must keep at least one
    // representative of the failing trace class of every kernel, while
    // never exploring more schedules than the full search.
    for kernel in registry::all() {
        let program = kernel.buggy();
        let full = explore(&program);
        let reduced = Explorer::new(&program)
            .sleep_sets()
            .limits(ExploreLimits {
                max_steps: 2_000,
                max_schedules: 500_000,
                sleep_sets: true,
                ..ExploreLimits::default()
            })
            .run();
        match kernel.expected {
            ExpectedFailure::Assert => assert!(
                reduced.counts.assert_failed > 0,
                "{}: reduction lost the assertion failure",
                kernel.id
            ),
            ExpectedFailure::Deadlock => assert!(
                reduced.counts.deadlock > 0,
                "{}: reduction lost the deadlock",
                kernel.id
            ),
        }
        assert!(
            reduced.schedules_run <= full.schedules_run,
            "{}: reduction did more work ({} > {})",
            kernel.id,
            reduced.schedules_run,
            full.schedules_run
        );
    }
}
