//! The robustness contract under deterministic fault injection:
//!
//! 1. every fixed variant stays correct under every seeded fault plan —
//!    spurious wakeups, trylock failures, forced aborts, and stalls must
//!    not break a real fix;
//! 2. buggy variants still manifest (chaos may only make bugs *easier*
//!    to find, never hide them from the exhaustive search);
//! 3. an identical `FaultPlan` seed yields a bit-identical exploration
//!    report — chaos is reproducible, not noise;
//! 4. a wall deadline is honoured within 2x on every kernel, and the
//!    degradation level used is reported.

use std::time::Duration;

use lfm_kernels::{registry, Variant};
use lfm_sim::{
    Budget, BudgetedExplorer, DegradeLevel, ExploreLimits, ExploreReport, Explorer, FaultPlan,
};

/// The contract's fault plans: four distinct seeds over the default
/// mixed-fault rates.
const CHAOS_SEEDS: [u64; 4] = [3, 17, 42, 1984];

fn explore_chaos(program: &lfm_sim::Program, plan: FaultPlan) -> ExploreReport {
    // Sleep sets are disabled automatically under chaos (step-keyed
    // fault decisions break the commutativity argument), so this is a
    // dedup-only search of a larger space than the plain contract's.
    Explorer::new(program)
        .limits(ExploreLimits {
            max_steps: 4_000,
            max_schedules: 1_000_000,
            dedup_states: true,
            ..ExploreLimits::default()
        })
        .chaos(plan)
        .run()
}

#[test]
fn every_fixed_variant_survives_every_fault_plan() {
    let mut violations = Vec::new();
    for kernel in registry::all() {
        for &fix in kernel.fixes {
            let program = kernel.build(Variant::Fixed(fix));
            for seed in CHAOS_SEEDS {
                let report = explore_chaos(&program, FaultPlan::new(seed));
                if !report.proved_ok() {
                    violations.push(format!(
                        "{} fixed by {fix} under seed {seed}: {:?} truncation={:?}",
                        kernel.id, report.counts, report.truncation
                    ));
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "fixed variants broke under chaos:\n{}",
        violations.join("\n")
    );
}

#[test]
fn every_buggy_variant_still_manifests_under_chaos() {
    let mut violations = Vec::new();
    for kernel in registry::all() {
        for seed in CHAOS_SEEDS {
            let mut plan = FaultPlan::new(seed);
            if kernel.id == "missed_signal" {
                // The one legitimate rescue: a spurious wakeup is
                // indistinguishable from the lost signal being delivered,
                // so injecting it can genuinely mask a missed-wakeup bug
                // (as it would in production). The remaining fault kinds
                // must still not hide it.
                plan.spurious_wakeup_pct = 0;
            }
            let report = explore_chaos(&kernel.buggy(), plan);
            if report.counts.failures() == 0 {
                violations.push(format!(
                    "{} under seed {seed}: no failure found ({:?})",
                    kernel.id, report.counts
                ));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "chaos hid these bugs from the exhaustive search:\n{}",
        violations.join("\n")
    );
}

#[test]
fn identical_seeds_give_bit_identical_reports() {
    for kernel in registry::all() {
        let program = kernel.buggy();
        let plan = FaultPlan::new(42);
        let a = explore_chaos(&program, plan);
        let b = explore_chaos(&program, plan);
        let id = kernel.id;
        assert_eq!(a.counts, b.counts, "{id}: counts");
        assert_eq!(a.schedules_run, b.schedules_run, "{id}: schedules_run");
        assert_eq!(a.steps_total, b.steps_total, "{id}: steps_total");
        assert_eq!(a.truncated, b.truncated, "{id}: truncated");
        assert_eq!(a.first_failure, b.first_failure, "{id}: first_failure");
        assert_eq!(a.first_ok, b.first_ok, "{id}: first_ok");
        assert_eq!(a.states_deduped, b.states_deduped, "{id}: states_deduped");
        assert_eq!(a.sleep_pruned, b.sleep_pruned, "{id}: sleep_pruned");
        assert_eq!(a.truncation, b.truncation, "{id}: truncation");
        // Everything in the stats block is deterministic except wall.
        assert_eq!(a.stats.branch_points, b.stats.branch_points, "{id}: stats");
        assert_eq!(a.stats.snapshots, b.stats.snapshots, "{id}: stats");
        assert_eq!(a.stats.max_depth, b.stats.max_depth, "{id}: stats");
        assert_eq!(
            a.stats.preemption_limited, b.stats.preemption_limited,
            "{id}: stats"
        );
    }
}

#[test]
fn wall_deadline_is_honoured_within_2x_on_every_kernel() {
    // Acceptance tolerance: a 200ms budget must finish within 400ms.
    // Each kernel is tiny, so individual rung slices always have room
    // to notice the deadline between schedules.
    let deadline = Duration::from_millis(200);
    for kernel in registry::all() {
        let program = kernel.buggy();
        let report = BudgetedExplorer::new(&program)
            .budget(Budget::with_deadline(deadline))
            .run();
        assert!(
            report.wall <= deadline * 2,
            "{}: wall {:?} blew the 2x tolerance on a {:?} budget",
            kernel.id,
            report.wall,
            deadline
        );
        // The degradation level used is always reported.
        assert!(matches!(
            report.level,
            DegradeLevel::Exhaustive
                | DegradeLevel::SleepSet
                | DegradeLevel::PreemptionBounded
                | DegradeLevel::PctSampling
        ));
    }
}
