//! Witness and minimization contracts over *fused* schedules.
//!
//! With invisible-step fusion on (the default), the explorer's first
//! failing schedule contains steps the search never branched on — the
//! fused invisible ops are executed eagerly and recorded into the
//! schedule like any other step. That makes two downstream promises
//! worth pinning across the whole kernel registry:
//!
//! * **Witness round-trip**: a witness captured from a fused run is an
//!   ordinary explicit schedule. Serializing, parsing, and replaying it
//!   must be bit-identical — every recorded choice taken verbatim, no
//!   grace needed, same outcome, same final state key.
//! * **Minimization**: ddmin over a fused-run schedule must never
//!   "unfuse" into an invalid schedule. Candidates may need replay's
//!   degradation rules mid-search, but the *returned* schedule is owed
//!   explicit: replaying it verbatim takes every entry and reproduces
//!   the outcome bit-for-bit.

use lfm_kernels::registry;
use lfm_sim::{minimize, Executor, Explorer, Outcome, Schedule, Witness};

const MAX_STEPS: usize = 5_000;

/// First failing schedule of a *fused* search (fusion is on by
/// default), plus the fused-step count so the suite can prove it
/// actually exercised fusion somewhere.
fn fused_failure(
    kernel: &lfm_kernels::Kernel,
) -> Option<(lfm_sim::Program, Schedule, Outcome, u64)> {
    let program = kernel.buggy();
    let report = Explorer::new(&program).stop_on_first_failure().run();
    let (schedule, outcome) = report.first_failure?;
    Some((program, schedule, outcome, report.stats.fused_steps))
}

#[test]
fn fused_run_witness_replays_bit_identically() {
    let mut checked = 0usize;
    let mut fused_total = 0u64;
    for kernel in registry::all() {
        let Some((program, schedule, outcome, fused)) = fused_failure(&kernel) else {
            continue;
        };
        fused_total += fused;
        let witness = Witness::capture(&program, kernel.id, &schedule, MAX_STEPS);
        let parsed = Witness::from_json(&witness.to_json())
            .unwrap_or_else(|e| panic!("{}: parse failed: {e}", kernel.id));
        assert_eq!(
            witness.to_json(),
            parsed.to_json(),
            "{}: round trip drifted",
            kernel.id
        );

        // Bit-identical replay: every recorded entry is taken verbatim
        // (no skipped, filled-in, or out-of-range grace), the outcome
        // matches the exploration's, and two independent replays agree
        // on the final state key.
        let mut a = Executor::new(&program);
        let (replayed, deviation) = a.replay_checked(&parsed.schedule, MAX_STEPS);
        assert!(
            deviation.is_exact(),
            "{}: fused-run schedule needed replay grace: {deviation:?}",
            kernel.id
        );
        assert_eq!(replayed, outcome, "{}: replay outcome drifted", kernel.id);
        assert_eq!(
            a.schedule_taken(),
            parsed.schedule,
            "{}: taken schedule drifted",
            kernel.id
        );
        let mut b = Executor::new(&program);
        b.replay_checked(&parsed.schedule, MAX_STEPS);
        assert_eq!(
            a.state_key(),
            b.state_key(),
            "{}: replay is not deterministic",
            kernel.id
        );
        checked += 1;
    }
    // Every buggy kernel in the registry has a reachable failure, and
    // fusion must have fired somewhere or this suite proves nothing.
    assert_eq!(checked, registry::all().len());
    assert!(
        fused_total > 0,
        "no fused steps across any kernel: the fused-witness suite is vacuous"
    );
}

#[test]
fn minimizer_never_unfuses_into_an_invalid_schedule() {
    for kernel in registry::all() {
        let Some((program, schedule, outcome, _)) = fused_failure(&kernel) else {
            continue;
        };
        let report = minimize(&program, &schedule, MAX_STEPS);
        assert_eq!(
            report.outcome, outcome,
            "{}: minimization changed the outcome",
            kernel.id
        );
        assert!(
            report.switches_after <= report.switches_before,
            "{}: minimization added context switches",
            kernel.id
        );
        // The minimized schedule is owed *explicit*: a verbatim replay
        // takes every entry — nothing skipped because a fused step was
        // dropped while a step depending on it survived.
        let mut exec = Executor::new(&program);
        let (replayed, deviation) = exec.replay_checked(&report.schedule, MAX_STEPS);
        assert!(
            deviation.is_exact(),
            "{}: minimized schedule is not explicit: {deviation:?}",
            kernel.id
        );
        assert_eq!(
            replayed, outcome,
            "{}: minimized schedule lost the failure",
            kernel.id
        );
        assert_eq!(
            exec.schedule_taken(),
            report.schedule,
            "{}: minimized schedule not taken verbatim",
            kernel.id
        );
        // And it still feeds witness capture cleanly.
        let w = Witness::capture(&program, kernel.id, &report.schedule, MAX_STEPS);
        assert_eq!(w.outcome_display, outcome.to_string(), "{}", kernel.id);
        assert_eq!(w.stats.switches, report.switches_after, "{}", kernel.id);
    }
}
