//! The parallel explorer's determinism contract, differentially:
//!
//! for **every** kernel variant — all buggy programs and every fixed
//! variant — the parallel explorer's merged report must equal the
//! serial explorer's **field for field** (wall time excluded: a clock
//! writes that field, not the search) at 1, 2 and 4 workers, with and
//! without state deduplication, with sleep sets, and under a seeded
//! fault plan. Work stealing may reorder *when* prefixes are expanded,
//! never *what* the search reports.
//!
//! Budgets are capped so dedup-off searches of the big state spaces
//! truncate rather than blow up; a truncated report is compared just
//! the same — both explorers must give up at the identical point.

use lfm_kernels::{registry, Variant};
use lfm_sim::{ExploreLimits, ExploreReport, Explorer, FaultPlan, ParExplorer, Program};

/// Worker counts the contract checks.
const JOBS: [usize; 3] = [1, 2, 4];

/// The chaos seed (same one the E-chaos experiment and CI smoke use).
const CHAOS_SEED: u64 = 42;

/// Shared caps: big enough that small kernels explore exhaustively,
/// small enough that dedup-off searches of the livelock/transaction
/// kernels truncate quickly instead of dominating the suite.
fn limits(dedup: bool, sleep: bool) -> ExploreLimits {
    ExploreLimits {
        max_steps: 4_000,
        max_schedules: 20_000,
        dedup_states: dedup,
        sleep_sets: sleep,
        ..ExploreLimits::default()
    }
}

fn serial(program: &Program, limits: ExploreLimits, chaos: Option<u64>) -> ExploreReport {
    let mut explorer = Explorer::new(program).limits(limits);
    if let Some(seed) = chaos {
        explorer = explorer.chaos(FaultPlan::new(seed));
    }
    explorer.run()
}

fn parallel(
    program: &Program,
    limits: ExploreLimits,
    chaos: Option<u64>,
    jobs: usize,
) -> ExploreReport {
    let mut explorer = ParExplorer::new(program).limits(limits).jobs(jobs);
    if let Some(seed) = chaos {
        explorer = explorer.chaos(FaultPlan::new(seed));
    }
    explorer.run()
}

/// Field-for-field equality, wall time excluded.
fn assert_identical(label: &str, a: &ExploreReport, b: &ExploreReport) {
    assert_eq!(a.counts, b.counts, "{label}: counts");
    assert_eq!(a.schedules_run, b.schedules_run, "{label}: schedules_run");
    assert_eq!(a.steps_total, b.steps_total, "{label}: steps_total");
    assert_eq!(a.truncated, b.truncated, "{label}: truncated");
    assert_eq!(a.first_failure, b.first_failure, "{label}: first_failure");
    assert_eq!(a.first_ok, b.first_ok, "{label}: first_ok");
    assert_eq!(
        a.states_deduped, b.states_deduped,
        "{label}: states_deduped"
    );
    assert_eq!(a.sleep_pruned, b.sleep_pruned, "{label}: sleep_pruned");
    assert_eq!(a.truncation, b.truncation, "{label}: truncation");
    assert_eq!(
        a.stats.branch_points, b.stats.branch_points,
        "{label}: branch_points"
    );
    assert_eq!(a.stats.snapshots, b.stats.snapshots, "{label}: snapshots");
    assert_eq!(a.stats.max_depth, b.stats.max_depth, "{label}: max_depth");
    assert_eq!(
        a.stats.preemption_limited, b.stats.preemption_limited,
        "{label}: preemption_limited"
    );
    assert_eq!(
        a.est_total_schedules.to_bits(),
        b.est_total_schedules.to_bits(),
        "{label}: est_total_schedules ({} vs {})",
        a.est_total_schedules,
        b.est_total_schedules
    );
}

/// One variant against one configuration at every worker count.
fn check(id: &str, variant: &str, program: &Program, config: &str, limits: ExploreLimits) {
    let baseline = serial(program, limits.clone(), None);
    for jobs in JOBS {
        let merged = parallel(program, limits.clone(), None, jobs);
        assert_identical(
            &format!("{id}/{variant} [{config}, jobs={jobs}]"),
            &baseline,
            &merged,
        );
    }
}

#[test]
fn buggy_variants_match_serial_with_and_without_dedup() {
    for kernel in registry::all() {
        let program = kernel.buggy();
        check(kernel.id, "buggy", &program, "plain", limits(false, false));
        check(kernel.id, "buggy", &program, "dedup", limits(true, false));
    }
}

#[test]
fn buggy_variants_match_serial_with_sleep_sets() {
    for kernel in registry::all() {
        let program = kernel.buggy();
        check(
            kernel.id,
            "buggy",
            &program,
            "dedup+sleep",
            limits(true, true),
        );
    }
}

#[test]
fn fixed_variants_match_serial_with_and_without_dedup() {
    for kernel in registry::all() {
        for &fix in kernel.fixes {
            let program = kernel.build(Variant::Fixed(fix));
            let variant = format!("fixed:{fix}");
            check(kernel.id, &variant, &program, "plain", limits(false, false));
            check(kernel.id, &variant, &program, "dedup", limits(true, false));
        }
    }
}

#[test]
fn every_variant_matches_serial_under_chaos() {
    // Sleep sets are disabled automatically under chaos (step-keyed
    // fault decisions break the commutativity argument) — both
    // explorers apply the same rule, so the comparison is dedup-only.
    for kernel in registry::all() {
        let mut programs = vec![("buggy".to_string(), kernel.buggy())];
        for &fix in kernel.fixes {
            programs.push((format!("fixed:{fix}"), kernel.build(Variant::Fixed(fix))));
        }
        for (variant, program) in programs {
            let baseline = serial(&program, limits(true, false), Some(CHAOS_SEED));
            for jobs in JOBS {
                let merged = parallel(&program, limits(true, false), Some(CHAOS_SEED), jobs);
                assert_identical(
                    &format!(
                        "{}/{variant} [chaos seed {CHAOS_SEED}, jobs={jobs}]",
                        kernel.id
                    ),
                    &baseline,
                    &merged,
                );
            }
        }
    }
}
