//! Order-violation kernels — the study's second-largest non-deadlock
//! class (~32%), largely invisible to lock-centric detectors.

use lfm_sim::{Expr, Program, ProgramBuilder, Stmt};

use crate::kernel::{ExpectedFailure, Family, FixKind, Kernel, Variant};

fn local(name: &'static str) -> Expr {
    Expr::local(name)
}

/// Mozilla nsThread shape: the child uses a field the creator has not
/// stored yet.
fn use_before_init_mozilla(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("use_before_init_mozilla");
    let m_thread = b.var("mThread", 0); // 0 = not yet initialized
    let sem = b.semaphore(0);
    let creator = match variant {
        Variant::Buggy | Variant::Fixed(FixKind::Transaction) => {
            vec![Stmt::write(m_thread, 42)]
        }
        Variant::Fixed(FixKind::AddSync) => {
            vec![Stmt::write(m_thread, 42), Stmt::SemRelease(sem)]
        }
        Variant::Fixed(other) => unreachable!("use_before_init has no {other} fix"),
    };
    b.thread("creator", creator);
    let user = match variant {
        Variant::Buggy => vec![
            Stmt::read(m_thread, "t"),
            Stmt::assert(
                local("t").ne(Expr::lit(0)),
                "mThread initialized before use",
            ),
        ],
        Variant::Fixed(FixKind::AddSync) => vec![
            Stmt::SemAcquire(sem),
            Stmt::read(m_thread, "t"),
            Stmt::assert(
                local("t").ne(Expr::lit(0)),
                "mThread initialized before use",
            ),
        ],
        Variant::Fixed(FixKind::Transaction) => vec![
            // Harris-style retry: block (re-execute) until initialized.
            Stmt::TxBegin,
            Stmt::read(m_thread, "t"),
            Stmt::if_then(local("t").eq(Expr::lit(0)), vec![Stmt::TxRetry]),
            Stmt::TxCommit,
            Stmt::assert(
                local("t").ne(Expr::lit(0)),
                "mThread initialized before use",
            ),
        ],
        Variant::Fixed(other) => unreachable!("use_before_init has no {other} fix"),
    };
    b.thread("user", user);
    b.build().expect("kernel builds")
}

/// Publish a ready flag before initializing the data it guards.
fn publish_before_init(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("publish_before_init");
    let data = b.var("data", 0);
    let ready = b.var("ready", 0);
    let publisher = match variant {
        // Bug: flag goes up before the data is written.
        Variant::Buggy => vec![Stmt::write(ready, 1), Stmt::write(data, 7)],
        Variant::Fixed(FixKind::CodeSwitch) => {
            vec![Stmt::write(data, 7), Stmt::write(ready, 1)]
        }
        Variant::Fixed(FixKind::Transaction) => vec![
            // Both stores publish atomically; the order inside no longer
            // matters.
            Stmt::TxBegin,
            Stmt::write(ready, 1),
            Stmt::write(data, 7),
            Stmt::TxCommit,
        ],
        Variant::Fixed(other) => unreachable!("publish_before_init has no {other} fix"),
    };
    b.thread("publisher", publisher);
    let consumer = match variant {
        Variant::Fixed(FixKind::Transaction) => vec![
            Stmt::TxBegin,
            Stmt::read(ready, "r"),
            Stmt::read(data, "d"),
            Stmt::TxCommit,
            Stmt::if_then(
                local("r").eq(Expr::lit(1)),
                vec![Stmt::assert(
                    local("d").eq(Expr::lit(7)),
                    "published data is initialized",
                )],
            ),
        ],
        _ => vec![
            Stmt::read(ready, "r"),
            Stmt::if_then(
                local("r").eq(Expr::lit(1)),
                vec![
                    Stmt::read(data, "d"),
                    Stmt::assert(local("d").eq(Expr::lit(7)), "published data is initialized"),
                ],
            ),
        ],
    };
    b.thread("consumer", consumer);
    b.build().expect("kernel builds")
}

/// Signal delivered before the waiter blocks: the wakeup is lost.
fn missed_signal(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("missed_signal");
    let ready = b.var("ready", 0);
    let m = b.mutex();
    let c = b.cond();
    let waiter = match variant {
        Variant::Buggy => vec![
            Stmt::lock(m),
            Stmt::Wait { cond: c, mutex: m },
            Stmt::unlock(m),
        ],
        Variant::Fixed(FixKind::CondCheck) => vec![
            Stmt::lock(m),
            Stmt::read(ready, "r"),
            Stmt::while_loop(
                local("r").eq(Expr::lit(0)),
                vec![Stmt::Wait { cond: c, mutex: m }, Stmt::read(ready, "r")],
            ),
            Stmt::unlock(m),
        ],
        Variant::Fixed(other) => unreachable!("missed_signal has no {other} fix"),
    };
    b.thread("waiter", waiter);
    let signaller = match variant {
        Variant::Buggy => vec![Stmt::Signal(c)],
        Variant::Fixed(FixKind::CondCheck) => vec![
            Stmt::lock(m),
            Stmt::write(ready, 1),
            Stmt::Signal(c),
            Stmt::unlock(m),
        ],
        Variant::Fixed(other) => unreachable!("missed_signal has no {other} fix"),
    };
    b.thread("signaller", signaller);
    b.build().expect("kernel builds")
}

/// A queue publishes its count before storing the element.
fn consume_before_produce(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("consume_before_produce");
    let item = b.var("item", 0);
    let count = b.var("count", 0);
    let m = b.mutex();
    let producer = match variant {
        // Bug: count is bumped before the item lands.
        Variant::Buggy => vec![Stmt::write(count, 1), Stmt::write(item, 5)],
        Variant::Fixed(FixKind::CodeSwitch) => vec![Stmt::write(item, 5), Stmt::write(count, 1)],
        Variant::Fixed(FixKind::Lock) => vec![
            Stmt::lock(m),
            Stmt::write(count, 1),
            Stmt::write(item, 5),
            Stmt::unlock(m),
        ],
        Variant::Fixed(FixKind::Transaction) => vec![
            Stmt::TxBegin,
            Stmt::write(count, 1),
            Stmt::write(item, 5),
            Stmt::TxCommit,
        ],
        Variant::Fixed(other) => unreachable!("consume_before_produce has no {other} fix"),
    };
    b.thread("producer", producer);
    let consumer_core = vec![
        Stmt::read(count, "c"),
        Stmt::if_then(
            local("c").gt(Expr::lit(0)),
            vec![
                Stmt::read(item, "i"),
                Stmt::assert(
                    local("i").eq(Expr::lit(5)),
                    "consumed a fully produced item",
                ),
            ],
        ),
    ];
    let consumer = match variant {
        Variant::Fixed(FixKind::Lock) => {
            let mut v = vec![Stmt::lock(m)];
            v.extend(consumer_core);
            v.push(Stmt::unlock(m));
            v
        }
        Variant::Fixed(FixKind::Transaction) => vec![
            Stmt::TxBegin,
            Stmt::read(count, "c"),
            Stmt::read(item, "i"),
            Stmt::TxCommit,
            Stmt::if_then(
                local("c").gt(Expr::lit(0)),
                vec![Stmt::assert(
                    local("i").eq(Expr::lit(5)),
                    "consumed a fully produced item",
                )],
            ),
        ],
        _ => consumer_core,
    };
    b.thread("consumer", consumer);
    b.build().expect("kernel builds")
}

/// Teardown frees a resource while a worker may still be using it.
fn shutdown_order(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("shutdown_order");
    let resource = b.var("resource", 1); // 1 = alive, 0 = freed
    let shutdown = b.var("shutdown", 0);
    let worker = b.thread_deferred(
        "worker",
        vec![
            Stmt::read(shutdown, "s"),
            Stmt::if_then(
                local("s").eq(Expr::lit(0)),
                vec![
                    Stmt::read(resource, "r"),
                    Stmt::assert(local("r").ne(Expr::lit(0)), "resource alive while in use"),
                ],
            ),
        ],
    );
    let main = match variant {
        Variant::Buggy => vec![
            Stmt::Spawn(worker),
            Stmt::write(shutdown, 1),
            Stmt::write(resource, 0),
        ],
        Variant::Fixed(FixKind::Design) => vec![
            // Redesigned teardown: wait for the worker before freeing.
            Stmt::Spawn(worker),
            Stmt::write(shutdown, 1),
            Stmt::Join(worker),
            Stmt::write(resource, 0),
        ],
        Variant::Fixed(other) => unreachable!("shutdown_order has no {other} fix"),
    };
    b.thread("main", main);
    b.build().expect("kernel builds")
}

/// Child signals completion before storing its result.
fn join_less_exit(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("join_less_exit");
    let result = b.var("result", 0);
    let sem = b.semaphore(0);
    let child = match variant {
        // Bug: 'done' is released before the result is stored.
        Variant::Buggy => vec![Stmt::SemRelease(sem), Stmt::write(result, 42)],
        Variant::Fixed(FixKind::CodeSwitch) => {
            vec![Stmt::write(result, 42), Stmt::SemRelease(sem)]
        }
        Variant::Fixed(FixKind::Transaction) => vec![Stmt::write(result, 42)],
        Variant::Fixed(other) => unreachable!("join_less_exit has no {other} fix"),
    };
    b.thread("child", child);
    let parent = match variant {
        Variant::Fixed(FixKind::Transaction) => vec![
            // Retry until the child's result becomes visible.
            Stmt::TxBegin,
            Stmt::read(result, "r"),
            Stmt::if_then(local("r").eq(Expr::lit(0)), vec![Stmt::TxRetry]),
            Stmt::TxCommit,
            Stmt::assert(
                local("r").eq(Expr::lit(42)),
                "result stored before completion",
            ),
        ],
        _ => vec![
            Stmt::SemAcquire(sem),
            Stmt::read(result, "r"),
            Stmt::assert(
                local("r").eq(Expr::lit(42)),
                "result stored before completion",
            ),
        ],
    };
    b.thread("parent", parent);
    b.build().expect("kernel builds")
}

/// The order-family kernels.
pub(crate) fn kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            id: "use_before_init_mozilla",
            name: "field used before its initialization (nsThread shape)",
            family: Family::Order,
            description: "The spawned thread reads a field its creator has \
                          not stored yet; the intended creator-first order \
                          is unenforced.",
            source_bug: Some("mozilla-61369"),
            fixes: &[FixKind::AddSync, FixKind::Transaction],
            expected: ExpectedFailure::Assert,
            threads: 2,
            variables: 1,
            build_fn: use_before_init_mozilla,
        },
        Kernel {
            id: "publish_before_init",
            name: "ready flag published before the data it guards",
            family: Family::Order,
            description: "The publisher raises the ready flag before \
                          writing the payload; a consumer between the two \
                          stores reads uninitialized data.",
            source_bug: Some("apache-52327"),
            fixes: &[FixKind::CodeSwitch, FixKind::Transaction],
            expected: ExpectedFailure::Assert,
            threads: 2,
            variables: 2,
            build_fn: publish_before_init,
        },
        Kernel {
            id: "missed_signal",
            name: "signal delivered before the wait begins",
            family: Family::Order,
            description: "The signaller fires before the waiter blocks; \
                          POSIX condition variables drop the wakeup and the \
                          waiter hangs forever.",
            source_bug: Some("apache-57179"),
            fixes: &[FixKind::CondCheck],
            expected: ExpectedFailure::Deadlock,
            threads: 2,
            variables: 1,
            build_fn: missed_signal,
        },
        Kernel {
            id: "consume_before_produce",
            name: "queue count bumped before the element is stored",
            family: Family::Order,
            description: "The producer publishes count=1 before storing the \
                          item; a consumer seeing the count reads a hole.",
            source_bug: Some("mysql-14262"),
            fixes: &[FixKind::CodeSwitch, FixKind::Lock, FixKind::Transaction],
            expected: ExpectedFailure::Assert,
            threads: 2,
            variables: 2,
            build_fn: consume_before_produce,
        },
        Kernel {
            id: "shutdown_order",
            name: "teardown frees a resource a worker still uses",
            family: Family::Order,
            description: "Shutdown flips the flag and frees immediately; a \
                          worker past its shutdown check dereferences the \
                          freed resource.",
            source_bug: Some("mozilla-254305"),
            fixes: &[FixKind::Design],
            expected: ExpectedFailure::Assert,
            threads: 2,
            variables: 2,
            build_fn: shutdown_order,
        },
        Kernel {
            id: "join_less_exit",
            name: "completion signalled before the result is stored",
            family: Family::Order,
            description: "The child releases its done-semaphore before \
                          storing the result; the parent wakes and reads \
                          garbage.",
            source_bug: Some("mozilla-279231"),
            fixes: &[FixKind::CodeSwitch, FixKind::Transaction],
            expected: ExpectedFailure::Assert,
            threads: 2,
            variables: 1,
            build_fn: join_less_exit,
        },
    ]
}
