//! Multi-variable kernels — the 34% of non-deadlock bugs whose
//! manifestation spans several variables, the blind spot of
//! single-variable detectors that the study's Finding 3 highlights.

use lfm_sim::{Expr, Program, ProgramBuilder, Stmt};

use crate::kernel::{ExpectedFailure, Family, FixKind, Kernel, Variant};

fn local(name: &'static str) -> Expr {
    Expr::local(name)
}

/// The Mozilla js cache shape: a count and the structure it describes are
/// updated in two steps; a checker sees them disagree.
fn cache_pair_invariant(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("cache_pair_invariant");
    let count = b.var("cache_count", 0);
    let entries = b.var("cache_entries", 0);
    let m = b.mutex();
    let update_core = vec![
        Stmt::read(count, "c"),
        Stmt::write(count, local("c") + Expr::lit(1)),
        Stmt::read(entries, "e"),
        Stmt::write(entries, local("e") + Expr::lit(1)),
    ];
    let updater = match variant {
        Variant::Buggy => update_core,
        Variant::Fixed(FixKind::Lock) => {
            let mut v = vec![Stmt::lock(m)];
            v.extend(update_core);
            v.push(Stmt::unlock(m));
            v
        }
        Variant::Fixed(FixKind::Transaction) => {
            let mut v = vec![Stmt::TxBegin];
            v.extend(update_core);
            v.push(Stmt::TxCommit);
            v
        }
        Variant::Fixed(other) => unreachable!("cache_pair_invariant has no {other} fix"),
    };
    b.thread("updater", updater);
    let check_core = vec![
        Stmt::read(count, "c"),
        Stmt::read(entries, "e"),
        Stmt::assert(local("c").eq(local("e")), "count matches entries"),
    ];
    let checker = match variant {
        Variant::Fixed(FixKind::Lock) => {
            let mut v = vec![Stmt::lock(m)];
            v.extend(check_core);
            v.push(Stmt::unlock(m));
            v
        }
        Variant::Fixed(FixKind::Transaction) => {
            let mut v = vec![Stmt::TxBegin];
            v.extend(check_core);
            v.push(Stmt::TxCommit);
            v
        }
        _ => check_core,
    };
    b.thread("checker", checker);
    b.build().expect("kernel builds")
}

/// A length counter and the tail element desynchronize under concurrent
/// pushes.
fn len_data_desync(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("len_data_desync");
    let len = b.var("len", 0);
    let tail = b.var("tail", 0);
    let m = b.mutex();
    for name in ["p1", "p2"] {
        let push_core = vec![
            Stmt::read(len, "l"),
            Stmt::write(tail, local("l") + Expr::lit(10)),
            Stmt::write(len, local("l") + Expr::lit(1)),
        ];
        let body = match variant {
            Variant::Buggy => push_core,
            Variant::Fixed(FixKind::Lock) => {
                let mut v = vec![Stmt::lock(m)];
                v.extend(push_core);
                v.push(Stmt::unlock(m));
                v
            }
            Variant::Fixed(FixKind::Transaction) => {
                let mut v = vec![Stmt::TxBegin];
                v.extend(push_core);
                v.push(Stmt::TxCommit);
                v
            }
            Variant::Fixed(other) => unreachable!("len_data_desync has no {other} fix"),
        };
        b.thread(name, body);
    }
    b.final_assert(
        Expr::shared(len)
            .eq(Expr::lit(2))
            .and(Expr::shared(tail).eq(Expr::lit(11))),
        "len counts both pushes and tail is the second element",
    );
    b.build().expect("kernel builds")
}

/// A state flag is meant to guard a temporarily-inconsistent payload, but
/// the writer exposes the payload before raising the flag.
fn state_data_pair(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("state_data_pair");
    let state = b.var("state", 0); // 0 = stable, 1 = updating
    let data = b.var("data", 5);
    let m = b.mutex();
    let writer = match variant {
        Variant::Buggy => vec![
            // Bug: scratch write lands while state still says 'stable'.
            Stmt::write(data, -1),
            Stmt::write(state, 1),
            Stmt::write(data, 6),
            Stmt::write(state, 0),
        ],
        Variant::Fixed(FixKind::Design) => vec![
            // Seqlock redesign: odd generation = update in progress.
            Stmt::fetch_add(state, 1),
            Stmt::write(data, -1),
            Stmt::write(data, 6),
            Stmt::fetch_add(state, 1),
        ],
        Variant::Fixed(FixKind::Lock) => vec![
            Stmt::lock(m),
            Stmt::write(data, -1),
            Stmt::write(data, 6),
            Stmt::unlock(m),
        ],
        Variant::Fixed(FixKind::Transaction) => vec![
            Stmt::TxBegin,
            Stmt::write(data, -1),
            Stmt::write(data, 6),
            Stmt::TxCommit,
        ],
        Variant::Fixed(other) => unreachable!("state_data_pair has no {other} fix"),
    };
    b.thread("writer", writer);
    let reader = match variant {
        Variant::Fixed(FixKind::Lock) => vec![
            Stmt::lock(m),
            Stmt::read(data, "d"),
            Stmt::unlock(m),
            Stmt::assert(
                local("d").ge(Expr::lit(0)),
                "reader never sees scratch data",
            ),
        ],
        Variant::Fixed(FixKind::Transaction) => vec![
            Stmt::TxBegin,
            Stmt::read(data, "d"),
            Stmt::TxCommit,
            Stmt::assert(
                local("d").ge(Expr::lit(0)),
                "reader never sees scratch data",
            ),
        ],
        Variant::Fixed(FixKind::Design) => vec![
            // Seqlock read protocol: generation stable and even => the
            // snapshot is consistent and may be used.
            Stmt::read(state, "s1"),
            Stmt::read(data, "d"),
            Stmt::read(state, "s2"),
            Stmt::if_then(
                local("s1")
                    .eq(local("s2"))
                    .and((local("s1") % Expr::lit(2)).eq(Expr::lit(0))),
                vec![Stmt::assert(
                    local("d").ge(Expr::lit(0)),
                    "reader never sees scratch data",
                )],
            ),
        ],
        _ => vec![
            Stmt::read(state, "s"),
            Stmt::if_then(
                local("s").eq(Expr::lit(0)),
                vec![
                    Stmt::read(data, "d"),
                    Stmt::assert(
                        local("d").ge(Expr::lit(0)),
                        "reader never sees scratch data",
                    ),
                ],
            ),
        ],
    };
    b.thread("reader", reader);
    b.build().expect("kernel builds")
}

/// Two counters with an equality invariant, each updated with *atomic*
/// instructions — every single access is atomic, yet the pair invariant
/// breaks: the multi-variable blind spot in its purest form.
fn double_counter_invariant(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("double_counter_invariant");
    let requests = b.var("requests", 0);
    let handled = b.var("handled", 0);
    let m = b.mutex();
    let update_core = vec![Stmt::fetch_add(requests, 1), Stmt::fetch_add(handled, 1)];
    let worker = match variant {
        Variant::Buggy => update_core,
        Variant::Fixed(FixKind::Lock) => {
            let mut v = vec![Stmt::lock(m)];
            v.extend(update_core);
            v.push(Stmt::unlock(m));
            v
        }
        Variant::Fixed(FixKind::Transaction) => vec![
            Stmt::TxBegin,
            Stmt::read(requests, "r"),
            Stmt::write(requests, local("r") + Expr::lit(1)),
            Stmt::read(handled, "h"),
            Stmt::write(handled, local("h") + Expr::lit(1)),
            Stmt::TxCommit,
        ],
        Variant::Fixed(other) => unreachable!("double_counter_invariant has no {other} fix"),
    };
    b.thread("worker", worker);
    let check_core = vec![
        Stmt::read(requests, "r"),
        Stmt::read(handled, "h"),
        Stmt::assert(local("r").eq(local("h")), "every request is handled"),
    ];
    let checker = match variant {
        Variant::Fixed(FixKind::Lock) => {
            let mut v = vec![Stmt::lock(m)];
            v.extend(check_core);
            v.push(Stmt::unlock(m));
            v
        }
        Variant::Fixed(FixKind::Transaction) => {
            let mut v = vec![Stmt::TxBegin];
            v.extend(check_core);
            v.push(Stmt::TxCommit);
            v
        }
        _ => check_core,
    };
    b.thread("checker", checker);
    b.build().expect("kernel builds")
}

/// The ABA problem: a CAS-based pop validates only the top-of-stack
/// *value*, which a concurrent pop-pop-push cycle restores while freeing
/// the node behind it.
fn aba_problem(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("aba_problem");
    // Stack A -> B: node ids 1 (A) and 2 (B); 0 is null.
    let top = b.var("top", 1);
    let next_of_a = b.var("next_of_a", 2);
    let b_live = b.var("b_live", 1);
    let version = b.var("version", 0);
    let m = b.mutex();

    let popper = match variant {
        Variant::Buggy => vec![
            Stmt::read(top, "t"),
            Stmt::if_then(
                local("t").eq(Expr::lit(1)),
                vec![
                    Stmt::read(next_of_a, "n"),
                    // ... the ABA window ...
                    Stmt::cas(top, local("t"), local("n"), "ok"),
                    Stmt::if_then(
                        local("ok")
                            .ne(Expr::lit(0))
                            .and(local("n").eq(Expr::lit(2))),
                        vec![
                            // We installed B as the new top: it must be live.
                            Stmt::read(b_live, "alive"),
                            Stmt::assert(
                                local("alive").eq(Expr::lit(1)),
                                "new top is a live node (no ABA)",
                            ),
                        ],
                    ),
                ],
            ),
        ],
        Variant::Fixed(FixKind::Design) => vec![
            // Version-counter redesign (seqlock discipline): the mutator
            // bumps the version *before* mutating, and the popper only
            // trusts what it read if the version is unchanged *after*
            // reading it.
            Stmt::read(version, "v1"),
            Stmt::read(top, "t"),
            Stmt::if_then(
                local("t").eq(Expr::lit(1)),
                vec![
                    Stmt::read(next_of_a, "n"),
                    Stmt::read(version, "v2"),
                    Stmt::if_then(
                        local("v1").eq(local("v2")),
                        vec![
                            Stmt::cas(top, local("t"), local("n"), "ok"),
                            Stmt::if_then(
                                local("ok")
                                    .ne(Expr::lit(0))
                                    .and(local("n").eq(Expr::lit(2))),
                                vec![
                                    Stmt::read(b_live, "alive"),
                                    Stmt::read(version, "v3"),
                                    Stmt::if_then(
                                        local("v1")
                                            .eq(local("v3"))
                                            .and((local("v1") % Expr::lit(2)).eq(Expr::lit(0))),
                                        vec![Stmt::assert(
                                            local("alive").eq(Expr::lit(1)),
                                            "new top is a live node (no ABA)",
                                        )],
                                    ),
                                ],
                            ),
                        ],
                    ),
                ],
            ),
        ],
        Variant::Fixed(FixKind::Lock) => vec![
            Stmt::lock(m),
            Stmt::read(top, "t"),
            Stmt::if_then(
                local("t").eq(Expr::lit(1)),
                vec![
                    Stmt::read(next_of_a, "n"),
                    Stmt::write(top, local("n")),
                    Stmt::if_then(
                        local("n").eq(Expr::lit(2)),
                        vec![
                            Stmt::read(b_live, "alive"),
                            Stmt::assert(
                                local("alive").eq(Expr::lit(1)),
                                "new top is a live node (no ABA)",
                            ),
                        ],
                    ),
                ],
            ),
            Stmt::unlock(m),
        ],
        Variant::Fixed(FixKind::Transaction) => vec![
            // TM famously eliminates ABA: the whole pop is one atomic
            // snapshot; any intervening cycle aborts the transaction.
            Stmt::TxBegin,
            Stmt::read(top, "t"),
            Stmt::if_then(
                local("t").eq(Expr::lit(1)),
                vec![
                    Stmt::read(next_of_a, "n"),
                    Stmt::write(top, local("n")),
                    Stmt::if_then(
                        local("n").eq(Expr::lit(2)),
                        vec![
                            Stmt::read(b_live, "alive"),
                            Stmt::assert(
                                local("alive").eq(Expr::lit(1)),
                                "new top is a live node (no ABA)",
                            ),
                        ],
                    ),
                ],
            ),
            Stmt::TxCommit,
        ],
        Variant::Fixed(other) => unreachable!("aba_problem has no {other} fix"),
    };
    b.thread("popper", popper);

    // The mutator pops A and B, frees B, and pushes A back — restoring
    // the *value* of `top` while invalidating what it reaches. Seqlock
    // discipline: the version is bumped to odd BEFORE mutating and back
    // to even AFTER, so the fixed popper can detect both an in-progress
    // and a completed cycle.
    let mutator_core = vec![
        Stmt::fetch_add(version, 1),
        Stmt::write(top, 2),
        Stmt::write(top, 0),
        Stmt::write(b_live, 0),
        Stmt::write(next_of_a, 0),
        Stmt::write(top, 1),
        Stmt::fetch_add(version, 1),
    ];
    let mutator = match variant {
        Variant::Fixed(FixKind::Lock) => {
            let mut v = vec![Stmt::lock(m), Stmt::read(top, "t0")];
            v.push(Stmt::if_then(local("t0").eq(Expr::lit(1)), mutator_core));
            v.push(Stmt::unlock(m));
            v
        }
        Variant::Fixed(FixKind::Transaction) => vec![
            Stmt::TxBegin,
            Stmt::read(top, "t0"),
            Stmt::if_then(local("t0").eq(Expr::lit(1)), mutator_core),
            Stmt::TxCommit,
        ],
        _ => vec![
            Stmt::read(top, "t0"),
            Stmt::if_then(local("t0").eq(Expr::lit(1)), mutator_core),
        ],
    };
    b.thread("mutator", mutator);
    b.build().expect("kernel builds")
}

/// The multi-variable kernels.
pub(crate) fn kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            id: "cache_pair_invariant",
            name: "cache count vs entry structure invariant",
            family: Family::MultiVariable,
            description: "A count and the structure it describes are \
                          updated in two steps; a concurrent checker \
                          observes them mid-update and the invariant \
                          count==entries fails.",
            source_bug: Some("mozilla-73291"),
            fixes: &[FixKind::Lock, FixKind::Transaction],
            expected: ExpectedFailure::Assert,
            threads: 2,
            variables: 2,
            build_fn: cache_pair_invariant,
        },
        Kernel {
            id: "len_data_desync",
            name: "length counter desynchronizes from the data it counts",
            family: Family::MultiVariable,
            description: "Two pushers read the length, write the tail and \
                          bump the length; interleaving makes len and tail \
                          describe different lists.",
            source_bug: Some("mysql-6387"),
            fixes: &[FixKind::Lock, FixKind::Transaction],
            expected: ExpectedFailure::Assert,
            threads: 2,
            variables: 2,
            build_fn: len_data_desync,
        },
        Kernel {
            id: "state_data_pair",
            name: "state flag fails to guard its payload",
            family: Family::MultiVariable,
            description: "The writer stores a scratch payload before \
                          raising the 'updating' flag, so a flag-respecting \
                          reader still observes the scratch value.",
            source_bug: Some("apache-36594"),
            fixes: &[FixKind::Design, FixKind::Lock, FixKind::Transaction],
            expected: ExpectedFailure::Assert,
            threads: 2,
            variables: 2,
            build_fn: state_data_pair,
        },
        Kernel {
            id: "aba_problem",
            name: "ABA: CAS validates a value the world cycled back",
            family: Family::MultiVariable,
            description: "A lock-free pop reads top and its next pointer; \
                          a concurrent pop-pop-push cycle frees the next \
                          node but restores top's value, so the CAS succeeds \
                          and installs a dangling node. The fix adds a \
                          version counter (design change).",
            source_bug: Some("mozilla-197341"),
            fixes: &[FixKind::Design, FixKind::Lock, FixKind::Transaction],
            expected: ExpectedFailure::Assert,
            threads: 2,
            variables: 3,
            build_fn: aba_problem,
        },
        Kernel {
            id: "double_counter_invariant",
            name: "pair invariant over two individually-atomic counters",
            family: Family::MultiVariable,
            description: "Every single access is an atomic RMW, yet the \
                          invariant requests==handled breaks between the two \
                          increments — invisible to any single-variable \
                          detector.",
            source_bug: Some("mozilla-183361"),
            fixes: &[FixKind::Lock, FixKind::Transaction],
            expected: ExpectedFailure::Assert,
            threads: 2,
            variables: 2,
            build_fn: double_counter_invariant,
        },
    ]
}
