//! Single-variable atomicity-violation kernels — the study's dominant
//! non-deadlock class (atomicity violations account for ~69% of the
//! non-deadlock bugs).

use lfm_sim::{Expr, Program, ProgramBuilder, Stmt};

use crate::kernel::{ExpectedFailure, Family, FixKind, Kernel, Variant};

fn local(name: &'static str) -> Expr {
    Expr::local(name)
}

/// Two threads increment a shared counter with load-add-store.
fn counter_rmw(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("counter_rmw");
    let counter = b.var("counter", 0);
    let m = b.mutex();
    for name in ["t1", "t2"] {
        let body = match variant {
            Variant::Buggy => vec![
                Stmt::read(counter, "tmp"),
                Stmt::write(counter, local("tmp") + Expr::lit(1)),
            ],
            Variant::Fixed(FixKind::Lock) => vec![
                Stmt::lock(m),
                Stmt::read(counter, "tmp"),
                Stmt::write(counter, local("tmp") + Expr::lit(1)),
                Stmt::unlock(m),
            ],
            Variant::Fixed(FixKind::Atomic) => vec![Stmt::fetch_add(counter, 1)],
            Variant::Fixed(FixKind::Transaction) => vec![
                Stmt::TxBegin,
                Stmt::read(counter, "tmp"),
                Stmt::write(counter, local("tmp") + Expr::lit(1)),
                Stmt::TxCommit,
            ],
            Variant::Fixed(other) => unreachable!("counter_rmw has no {other} fix"),
        };
        b.thread(name, body);
    }
    b.final_assert(
        Expr::shared(counter).eq(Expr::lit(2)),
        "both increments retained",
    );
    b.build().expect("kernel builds")
}

/// Check a pointer for null, then use it — while another thread frees it.
fn check_then_act_null(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("check_then_act_null");
    let ptr = b.var("ptr", 1); // 1 = valid object, 0 = freed
    let m = b.mutex();
    let user = match variant {
        Variant::Buggy => vec![
            Stmt::read(ptr, "p"),
            Stmt::if_then(
                local("p").ne(Expr::lit(0)),
                vec![
                    // ... window ...
                    Stmt::read(ptr, "p2"),
                    Stmt::assert(local("p2").ne(Expr::lit(0)), "dereferenced freed pointer"),
                ],
            ),
        ],
        Variant::Fixed(FixKind::CondCheck) => vec![
            Stmt::read(ptr, "p"),
            Stmt::if_then(
                local("p").ne(Expr::lit(0)),
                vec![
                    // Re-validate right at the use site; skip if freed.
                    Stmt::read(ptr, "p2"),
                    Stmt::if_then(
                        local("p2").ne(Expr::lit(0)),
                        vec![Stmt::assert(local("p2").ne(Expr::lit(0)), "validated use")],
                    ),
                ],
            ),
        ],
        Variant::Fixed(FixKind::Lock) => vec![
            Stmt::lock(m),
            Stmt::read(ptr, "p"),
            Stmt::if_then(
                local("p").ne(Expr::lit(0)),
                vec![
                    Stmt::read(ptr, "p2"),
                    Stmt::assert(local("p2").ne(Expr::lit(0)), "use under lock"),
                ],
            ),
            Stmt::unlock(m),
        ],
        Variant::Fixed(FixKind::Transaction) => vec![
            Stmt::TxBegin,
            Stmt::read(ptr, "p"),
            Stmt::if_then(
                local("p").ne(Expr::lit(0)),
                vec![
                    Stmt::read(ptr, "p2"),
                    Stmt::assert(local("p2").ne(Expr::lit(0)), "use inside tx"),
                ],
            ),
            Stmt::TxCommit,
        ],
        Variant::Fixed(other) => unreachable!("check_then_act_null has no {other} fix"),
    };
    b.thread("user", user);
    let freer = match variant {
        Variant::Fixed(FixKind::Lock) => vec![Stmt::lock(m), Stmt::write(ptr, 0), Stmt::unlock(m)],
        _ => vec![Stmt::write(ptr, 0)],
    };
    b.thread("freer", freer);
    b.build().expect("kernel builds")
}

/// `if (!initialized) initialize()` executed by two threads at once.
fn double_check_init(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("double_check_init");
    let flag = b.var("initialized", 0);
    let inits = b.var("init_count", 0);
    let m = b.mutex();
    for name in ["t1", "t2"] {
        let body = match variant {
            Variant::Buggy => vec![
                Stmt::read(flag, "f"),
                Stmt::if_then(
                    local("f").eq(Expr::lit(0)),
                    vec![Stmt::write(flag, 1), Stmt::fetch_add(inits, 1)],
                ),
            ],
            Variant::Fixed(FixKind::Lock) => vec![
                Stmt::lock(m),
                Stmt::read(flag, "f"),
                Stmt::if_then(
                    local("f").eq(Expr::lit(0)),
                    vec![Stmt::write(flag, 1), Stmt::fetch_add(inits, 1)],
                ),
                Stmt::unlock(m),
            ],
            Variant::Fixed(FixKind::Atomic) => vec![
                // Only the CAS winner initializes.
                Stmt::cas(flag, 0, 1, "won"),
                Stmt::if_then(
                    local("won").ne(Expr::lit(0)),
                    vec![Stmt::fetch_add(inits, 1)],
                ),
            ],
            Variant::Fixed(FixKind::Transaction) => vec![
                Stmt::TxBegin,
                Stmt::read(flag, "f"),
                Stmt::if_then(
                    local("f").eq(Expr::lit(0)),
                    vec![
                        Stmt::write(flag, 1),
                        Stmt::read(inits, "ic"),
                        Stmt::write(inits, local("ic") + Expr::lit(1)),
                    ],
                ),
                Stmt::TxCommit,
            ],
            Variant::Fixed(other) => unreachable!("double_check_init has no {other} fix"),
        };
        b.thread(name, body);
    }
    b.final_assert(
        Expr::shared(inits).eq(Expr::lit(1)),
        "resource initialized exactly once",
    );
    b.build().expect("kernel builds")
}

/// Apache #25520-style shared log-buffer append: read offset, emit the
/// record (I/O), store the bumped offset.
fn log_buffer_apache(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("log_buffer_apache");
    let pos = b.var("buf_pos", 0);
    let m = b.mutex();
    for (name, tag) in [("w1", "append-rec-1"), ("w2", "append-rec-2")] {
        let append = vec![
            Stmt::read(pos, "p"),
            Stmt::io(tag),
            Stmt::write(pos, local("p") + Expr::lit(1)),
        ];
        let body = match variant {
            Variant::Buggy => append,
            Variant::Fixed(FixKind::Lock) => {
                let mut v = vec![Stmt::lock(m)];
                v.extend(append);
                v.push(Stmt::unlock(m));
                v
            }
            Variant::Fixed(FixKind::Transaction) => {
                // Deliberately includes the I/O inside the transaction —
                // the TM evaluator flags this as the IoInRegion obstacle.
                let mut v = vec![Stmt::TxBegin];
                v.extend(append);
                v.push(Stmt::TxCommit);
                v
            }
            Variant::Fixed(other) => unreachable!("log_buffer_apache has no {other} fix"),
        };
        b.thread(name, body);
    }
    b.final_assert(
        Expr::shared(pos).eq(Expr::lit(2)),
        "no log record overwritten",
    );
    b.build().expect("kernel builds")
}

/// Refcount decrement with a 'free on zero' side effect.
fn stat_counter(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("stat_counter");
    let rc = b.var("refcount", 2);
    let frees = b.var("frees", 0);
    let m = b.mutex();
    for name in ["t1", "t2"] {
        let body = match variant {
            Variant::Buggy => vec![
                Stmt::read(rc, "r"),
                Stmt::write(rc, local("r") - Expr::lit(1)),
                Stmt::if_then(
                    (local("r") - Expr::lit(1)).eq(Expr::lit(0)),
                    vec![Stmt::fetch_add(frees, 1)],
                ),
            ],
            Variant::Fixed(FixKind::Atomic) => vec![
                Stmt::Rmw {
                    var: rc,
                    op: lfm_sim::RmwOp::FetchSub,
                    operand: Expr::lit(1),
                    into: Some("old"),
                },
                Stmt::if_then(
                    local("old").eq(Expr::lit(1)),
                    vec![Stmt::fetch_add(frees, 1)],
                ),
            ],
            Variant::Fixed(FixKind::Lock) => vec![
                Stmt::lock(m),
                Stmt::read(rc, "r"),
                Stmt::write(rc, local("r") - Expr::lit(1)),
                Stmt::if_then(
                    (local("r") - Expr::lit(1)).eq(Expr::lit(0)),
                    vec![Stmt::fetch_add(frees, 1)],
                ),
                Stmt::unlock(m),
            ],
            Variant::Fixed(FixKind::Transaction) => vec![
                Stmt::TxBegin,
                Stmt::read(rc, "r"),
                Stmt::write(rc, local("r") - Expr::lit(1)),
                Stmt::if_then(
                    (local("r") - Expr::lit(1)).eq(Expr::lit(0)),
                    vec![
                        Stmt::read(frees, "fr"),
                        Stmt::write(frees, local("fr") + Expr::lit(1)),
                    ],
                ),
                Stmt::TxCommit,
            ],
            Variant::Fixed(other) => unreachable!("stat_counter has no {other} fix"),
        };
        b.thread(name, body);
    }
    b.final_assert(
        Expr::shared(rc)
            .eq(Expr::lit(0))
            .and(Expr::shared(frees).eq(Expr::lit(1))),
        "object freed exactly once when refcount hits zero",
    );
    b.build().expect("kernel builds")
}

/// Check balance then withdraw — two withdrawals both pass the check.
fn bank_withdraw(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("bank_withdraw");
    let balance = b.var("balance", 100);
    let withdrawn = b.var("withdrawn", 0);
    let m = b.mutex();
    for name in ["t1", "t2"] {
        let core = vec![
            Stmt::read(balance, "bal"),
            Stmt::if_then(
                local("bal").ge(Expr::lit(70)),
                vec![
                    Stmt::write(balance, local("bal") - Expr::lit(70)),
                    Stmt::fetch_add(withdrawn, 70),
                ],
            ),
        ];
        let body = match variant {
            Variant::Buggy => core,
            Variant::Fixed(FixKind::Lock) => {
                let mut v = vec![Stmt::lock(m)];
                v.extend(core);
                v.push(Stmt::unlock(m));
                v
            }
            Variant::Fixed(FixKind::Atomic) => vec![
                // CAS retry loop: re-read and re-check on failure.
                Stmt::local("done", 0),
                Stmt::local("attempts", 0),
                Stmt::while_loop(
                    local("done")
                        .eq(Expr::lit(0))
                        .and(local("attempts").lt(Expr::lit(4))),
                    vec![
                        Stmt::read(balance, "bal"),
                        Stmt::if_else(
                            local("bal").ge(Expr::lit(70)),
                            vec![
                                Stmt::cas(
                                    balance,
                                    local("bal"),
                                    local("bal") - Expr::lit(70),
                                    "ok",
                                ),
                                Stmt::if_then(
                                    local("ok").ne(Expr::lit(0)),
                                    vec![Stmt::fetch_add(withdrawn, 70), Stmt::local("done", 1)],
                                ),
                            ],
                            vec![Stmt::local("done", 1)],
                        ),
                        Stmt::local("attempts", local("attempts") + Expr::lit(1)),
                    ],
                ),
            ],
            Variant::Fixed(FixKind::Transaction) => vec![
                Stmt::TxBegin,
                Stmt::read(balance, "bal"),
                Stmt::if_then(
                    local("bal").ge(Expr::lit(70)),
                    vec![
                        Stmt::write(balance, local("bal") - Expr::lit(70)),
                        Stmt::read(withdrawn, "w"),
                        Stmt::write(withdrawn, local("w") + Expr::lit(70)),
                    ],
                ),
                Stmt::TxCommit,
            ],
            Variant::Fixed(other) => unreachable!("bank_withdraw has no {other} fix"),
        };
        b.thread(name, body);
    }
    b.final_assert(
        (Expr::shared(balance) + Expr::shared(withdrawn))
            .eq(Expr::lit(100))
            .and(Expr::shared(balance).ge(Expr::lit(0))),
        "no overdraft and money conserved",
    );
    b.build().expect("kernel builds")
}

/// MySQL #791-style: an append must observe a stable log generation
/// around its I/O (read / io / re-read must agree).
fn read_frag_write(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("read_frag_write");
    let generation = b.var("log_generation", 0);
    let m = b.mutex();
    let appender_core = vec![
        Stmt::read(generation, "g1"),
        Stmt::io("append-entry"),
        Stmt::read(generation, "g2"),
        Stmt::assert(
            local("g1").eq(local("g2")),
            "entry appended within one log generation",
        ),
    ];
    let appender = match variant {
        Variant::Buggy => appender_core.clone(),
        Variant::Fixed(FixKind::Lock) => {
            let mut v = vec![Stmt::lock(m)];
            v.extend(appender_core.clone());
            v.push(Stmt::unlock(m));
            v
        }
        Variant::Fixed(other) => unreachable!("read_frag_write has no {other} fix"),
    };
    b.thread("appender", appender);
    let rotator = match variant {
        Variant::Fixed(FixKind::Lock) => vec![
            Stmt::lock(m),
            Stmt::fetch_add(generation, 1),
            Stmt::unlock(m),
        ],
        _ => vec![Stmt::fetch_add(generation, 1)],
    };
    b.thread("rotator", rotator);
    b.build().expect("kernel builds")
}

/// Test a busy flag, then enter the 'exclusive' region.
fn toctou_flag(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("toctou_flag");
    let busy = b.var("busy", 0);
    let owners = b.var("owners", 0);
    let m = b.mutex();
    for name in ["t1", "t2"] {
        let body = match variant {
            Variant::Buggy => vec![
                Stmt::read(busy, "f"),
                Stmt::if_then(
                    local("f").eq(Expr::lit(0)),
                    vec![
                        Stmt::write(busy, 1),
                        Stmt::read(owners, "o"),
                        Stmt::write(owners, local("o") + Expr::lit(1)),
                        Stmt::read(owners, "o2"),
                        Stmt::assert(local("o2").eq(Expr::lit(1)), "region is exclusive"),
                        Stmt::write(owners, local("o2") - Expr::lit(1)),
                        Stmt::write(busy, 0),
                    ],
                ),
            ],
            Variant::Fixed(FixKind::Atomic) => vec![
                Stmt::cas(busy, 0, 1, "won"),
                Stmt::if_then(
                    local("won").ne(Expr::lit(0)),
                    vec![
                        Stmt::read(owners, "o"),
                        Stmt::write(owners, local("o") + Expr::lit(1)),
                        Stmt::read(owners, "o2"),
                        Stmt::assert(local("o2").eq(Expr::lit(1)), "region is exclusive"),
                        Stmt::write(owners, local("o2") - Expr::lit(1)),
                        Stmt::write(busy, 0),
                    ],
                ),
            ],
            Variant::Fixed(FixKind::Lock) => vec![
                Stmt::lock(m),
                Stmt::read(owners, "o"),
                Stmt::write(owners, local("o") + Expr::lit(1)),
                Stmt::read(owners, "o2"),
                Stmt::assert(local("o2").eq(Expr::lit(1)), "region is exclusive"),
                Stmt::write(owners, local("o2") - Expr::lit(1)),
                Stmt::unlock(m),
            ],
            Variant::Fixed(FixKind::Transaction) => vec![
                Stmt::TxBegin,
                Stmt::read(owners, "o"),
                Stmt::write(owners, local("o") + Expr::lit(1)),
                Stmt::read(owners, "o2"),
                Stmt::assert(local("o2").eq(Expr::lit(1)), "region is exclusive"),
                Stmt::write(owners, local("o2") - Expr::lit(1)),
                Stmt::TxCommit,
            ],
            Variant::Fixed(other) => unreachable!("toctou_flag has no {other} fix"),
        };
        b.thread(name, body);
    }
    b.build().expect("kernel builds")
}

/// A writer exposes a temporarily-inconsistent value between two writes.
fn intermediate_state(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("intermediate_state");
    let x = b.var("x", 0);
    let m = b.mutex();
    let writer = match variant {
        Variant::Buggy => vec![Stmt::write(x, -1), Stmt::write(x, 1)],
        Variant::Fixed(FixKind::CodeSwitch) => vec![
            // Compute the final value up front; never expose the scratch.
            Stmt::write(x, 1),
        ],
        Variant::Fixed(FixKind::Lock) => vec![
            Stmt::lock(m),
            Stmt::write(x, -1),
            Stmt::write(x, 1),
            Stmt::unlock(m),
        ],
        Variant::Fixed(FixKind::Transaction) => vec![
            Stmt::TxBegin,
            Stmt::write(x, -1),
            Stmt::write(x, 1),
            Stmt::TxCommit,
        ],
        Variant::Fixed(other) => unreachable!("intermediate_state has no {other} fix"),
    };
    b.thread("writer", writer);
    let reader = match variant {
        Variant::Fixed(FixKind::Lock) => vec![
            Stmt::lock(m),
            Stmt::read(x, "v"),
            Stmt::unlock(m),
            Stmt::assert(local("v").ge(Expr::lit(0)), "never sees scratch value"),
        ],
        _ => vec![
            Stmt::read(x, "v"),
            Stmt::assert(local("v").ge(Expr::lit(0)), "never sees scratch value"),
        ],
    };
    b.thread("reader", reader);
    b.build().expect("kernel builds")
}

/// The atomicity-family kernels.
pub(crate) fn kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            id: "counter_rmw",
            name: "racy load-add-store counter",
            family: Family::AtomicitySingleVar,
            description: "Two threads increment a shared statistic with a \
                          non-atomic load-add-store; an interleaving loses \
                          one update. Minimized from the buffer-pool and \
                          scoreboard counter bugs.",
            source_bug: Some("mozilla-52111"),
            fixes: &[FixKind::Lock, FixKind::Atomic, FixKind::Transaction],
            expected: ExpectedFailure::Assert,
            threads: 2,
            variables: 1,
            build_fn: counter_rmw,
        },
        Kernel {
            id: "check_then_act_null",
            name: "null-check then dereference vs concurrent free",
            family: Family::AtomicitySingleVar,
            description: "A thread checks a pointer for null and then uses \
                          it; another thread frees (nulls) it in between. \
                          Minimized from the nsSocketTransport mThread crash.",
            source_bug: Some("mozilla-79054"),
            fixes: &[FixKind::CondCheck, FixKind::Lock, FixKind::Transaction],
            expected: ExpectedFailure::Assert,
            threads: 2,
            variables: 1,
            build_fn: check_then_act_null,
        },
        Kernel {
            id: "double_check_init",
            name: "unsynchronized lazy initialization",
            family: Family::AtomicitySingleVar,
            description: "`if (!initialized) initialize()` run by two \
                          threads initializes twice. Minimized from the atom \
                          table double-initialization.",
            source_bug: Some("mozilla-99224"),
            fixes: &[FixKind::Lock, FixKind::Atomic, FixKind::Transaction],
            expected: ExpectedFailure::Assert,
            threads: 2,
            variables: 1,
            build_fn: double_check_init,
        },
        Kernel {
            id: "log_buffer_apache",
            name: "shared log buffer offset race (Apache #25520 shape)",
            family: Family::AtomicitySingleVar,
            description: "Two workers read the buffer offset, emit their \
                          record, and store offset+1; interleaving makes both \
                          records land on the same offset.",
            source_bug: Some("apache-25520"),
            fixes: &[FixKind::Lock, FixKind::Transaction],
            expected: ExpectedFailure::Assert,
            threads: 2,
            variables: 1,
            build_fn: log_buffer_apache,
        },
        Kernel {
            id: "stat_counter",
            name: "non-atomic refcount decrement with free-on-zero",
            family: Family::AtomicitySingleVar,
            description: "Two releases of a refcount==2 object interleave \
                          so the object is never freed (or doubly freed).",
            source_bug: Some("apache-21287"),
            fixes: &[FixKind::Atomic, FixKind::Lock, FixKind::Transaction],
            expected: ExpectedFailure::Assert,
            threads: 2,
            variables: 1,
            build_fn: stat_counter,
        },
        Kernel {
            id: "bank_withdraw",
            name: "check-balance-then-withdraw",
            family: Family::AtomicitySingleVar,
            description: "Two withdrawals both pass the balance check and \
                          both debit; money is created or the account \
                          overdrafts. The canonical check-then-act shape of \
                          the HANDLER/reslist bugs.",
            source_bug: Some("mysql-5014"),
            fixes: &[FixKind::Lock, FixKind::Atomic, FixKind::Transaction],
            expected: ExpectedFailure::Assert,
            threads: 2,
            variables: 1,
            build_fn: bank_withdraw,
        },
        Kernel {
            id: "read_frag_write",
            name: "log append torn across a rotation (MySQL #791 shape)",
            family: Family::AtomicitySingleVar,
            description: "An append reads the log generation, performs its \
                          I/O, and re-reads; a concurrent rotation in the \
                          window strands the entry in a closed log.",
            source_bug: Some("mysql-791"),
            fixes: &[FixKind::Lock],
            expected: ExpectedFailure::Assert,
            threads: 2,
            variables: 1,
            build_fn: read_frag_write,
        },
        Kernel {
            id: "toctou_flag",
            name: "busy-flag test-then-set",
            family: Family::AtomicitySingleVar,
            description: "Two threads test a busy flag and both enter the \
                          'exclusive' region; the exclusivity assertion \
                          fires. Minimized from the plugin-host busy flag.",
            source_bug: Some("mozilla-112418"),
            fixes: &[FixKind::Atomic, FixKind::Lock, FixKind::Transaction],
            expected: ExpectedFailure::Assert,
            threads: 2,
            variables: 1,
            build_fn: toctou_flag,
        },
        Kernel {
            id: "intermediate_state",
            name: "reader observes a scratch value between two writes",
            family: Family::AtomicitySingleVar,
            description: "A writer stores a temporary value then the final \
                          one; a reader between the stores sees the scratch \
                          state (the W-R-W unserializable case).",
            source_bug: None,
            fixes: &[FixKind::CodeSwitch, FixKind::Lock, FixKind::Transaction],
            expected: ExpectedFailure::Assert,
            threads: 2,
            variables: 1,
            build_fn: intermediate_state,
        },
    ]
}
