//! Deadlock kernels covering the study's deadlock shapes: 22% of
//! deadlocks involve a single resource (self-deadlock), 97% at most two.

use lfm_sim::{Expr, Program, ProgramBuilder, Stmt};

use crate::kernel::{ExpectedFailure, Family, FixKind, Kernel, Variant};

fn local(name: &'static str) -> Expr {
    Expr::local(name)
}

/// The classic two-mutex ABBA.
fn abba(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("abba");
    let work = b.var("work", 0);
    let m1 = b.mutex();
    let m2 = b.mutex();
    match variant {
        Variant::Buggy => {
            b.thread(
                "t1",
                vec![
                    Stmt::lock(m1),
                    Stmt::lock(m2),
                    Stmt::fetch_add(work, 1),
                    Stmt::unlock(m2),
                    Stmt::unlock(m1),
                ],
            );
            b.thread(
                "t2",
                vec![
                    Stmt::lock(m2),
                    Stmt::lock(m1),
                    Stmt::fetch_add(work, 1),
                    Stmt::unlock(m1),
                    Stmt::unlock(m2),
                ],
            );
        }
        Variant::Fixed(FixKind::AcquireInOrder) => {
            for name in ["t1", "t2"] {
                b.thread(
                    name,
                    vec![
                        Stmt::lock(m1),
                        Stmt::lock(m2),
                        Stmt::fetch_add(work, 1),
                        Stmt::unlock(m2),
                        Stmt::unlock(m1),
                    ],
                );
            }
        }
        Variant::Fixed(FixKind::GiveUp) => {
            b.thread(
                "t1",
                vec![
                    Stmt::lock(m1),
                    Stmt::lock(m2),
                    Stmt::fetch_add(work, 1),
                    Stmt::unlock(m2),
                    Stmt::unlock(m1),
                ],
            );
            // t2 gives up m2 when m1 is unavailable and retries (bounded).
            b.thread(
                "t2",
                vec![
                    Stmt::local("done", 0),
                    Stmt::local("attempts", 0),
                    Stmt::while_loop(
                        local("done")
                            .eq(Expr::lit(0))
                            .and(local("attempts").lt(Expr::lit(8))),
                        vec![
                            Stmt::lock(m2),
                            Stmt::TryLock {
                                mutex: m1,
                                into: "got",
                            },
                            Stmt::if_else(
                                local("got").ne(Expr::lit(0)),
                                vec![
                                    Stmt::fetch_add(work, 1),
                                    Stmt::unlock(m1),
                                    Stmt::unlock(m2),
                                    Stmt::local("done", 1),
                                ],
                                vec![
                                    // Give up the held resource and retry.
                                    Stmt::unlock(m2),
                                    Stmt::Yield,
                                ],
                            ),
                            Stmt::local("attempts", local("attempts") + Expr::lit(1)),
                        ],
                    ),
                ],
            );
        }
        Variant::Fixed(FixKind::Transaction) => {
            // Lock elision: the locks only protected the work counter.
            for name in ["t1", "t2"] {
                b.thread(
                    name,
                    vec![
                        Stmt::TxBegin,
                        Stmt::read(work, "w"),
                        Stmt::write(work, local("w") + Expr::lit(1)),
                        Stmt::TxCommit,
                    ],
                );
            }
        }
        Variant::Fixed(other) => unreachable!("abba has no {other} fix"),
    }
    b.build().expect("kernel builds")
}

/// Re-acquiring a non-recursive mutex the thread already holds.
fn self_relock(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("self_relock");
    let work = b.var("work", 0);
    let m = b.mutex();
    let body = match variant {
        Variant::Buggy => vec![
            Stmt::lock(m),
            // An error path re-enters a helper that locks again.
            Stmt::lock(m),
            Stmt::fetch_add(work, 1),
            Stmt::unlock(m),
            Stmt::unlock(m),
        ],
        Variant::Fixed(FixKind::GiveUp) => vec![
            Stmt::lock(m),
            Stmt::unlock(m), // release before the helper re-acquires
            Stmt::lock(m),
            Stmt::fetch_add(work, 1),
            Stmt::unlock(m),
        ],
        Variant::Fixed(FixKind::Transaction) => vec![
            // Transactions compose where non-recursive locks do not.
            Stmt::TxBegin,
            Stmt::read(work, "w"),
            Stmt::write(work, local("w") + Expr::lit(1)),
            Stmt::TxCommit,
        ],
        Variant::Fixed(other) => unreachable!("self_relock has no {other} fix"),
    };
    b.thread("t", body);
    b.build().expect("kernel builds")
}

/// A three-thread, three-lock cycle — the corpus's only >2-resource
/// deadlock.
fn lock_cycle_3(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("lock_cycle_3");
    let work = b.var("work", 0);
    let locks = [b.mutex(), b.mutex(), b.mutex()];
    for (i, name) in ["t1", "t2", "t3"].into_iter().enumerate() {
        if let Variant::Fixed(FixKind::Transaction) = variant {
            b.thread(
                name,
                vec![
                    Stmt::TxBegin,
                    Stmt::read(work, "w"),
                    Stmt::write(work, local("w") + Expr::lit(1)),
                    Stmt::TxCommit,
                ],
            );
            continue;
        }
        let (first, second) = match variant {
            Variant::Buggy => (locks[i], locks[(i + 1) % 3]),
            Variant::Fixed(FixKind::AcquireInOrder) => {
                let a = locks[i.min((i + 1) % 3)];
                let z = locks[i.max((i + 1) % 3)];
                (a, z)
            }
            Variant::Fixed(other) => unreachable!("lock_cycle_3 has no {other} fix"),
        };
        b.thread(
            name,
            vec![
                Stmt::lock(first),
                Stmt::lock(second),
                Stmt::fetch_add(work, 1),
                Stmt::unlock(second),
                Stmt::unlock(first),
            ],
        );
    }
    b.build().expect("kernel builds")
}

/// Blocking on a completion the peer can only deliver under the held lock.
fn wait_holding_lock(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("wait_holding_lock");
    let m = b.mutex();
    let done = b.semaphore(0);
    let waiter = match variant {
        Variant::Buggy => vec![
            Stmt::lock(m),
            Stmt::SemAcquire(done), // waits while holding m
            Stmt::unlock(m),
        ],
        Variant::Fixed(FixKind::GiveUp) => vec![
            Stmt::lock(m),
            Stmt::unlock(m), // give up the lock before blocking
            Stmt::SemAcquire(done),
        ],
        Variant::Fixed(other) => unreachable!("wait_holding_lock has no {other} fix"),
    };
    b.thread("waiter", waiter);
    b.thread(
        "worker",
        vec![Stmt::lock(m), Stmt::SemRelease(done), Stmt::unlock(m)],
    );
    b.build().expect("kernel builds")
}

/// Read-to-write upgrade on a non-upgradable rwlock.
fn rwlock_upgrade(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("rwlock_upgrade");
    let work = b.var("work", 0);
    let rw = b.rwlock();
    for name in ["t1", "t2"] {
        let body = match variant {
            Variant::Buggy => vec![
                Stmt::RwRead(rw),
                // Upgrade attempt: blocked by any reader, itself included.
                Stmt::RwWrite(rw),
                Stmt::fetch_add(work, 1),
                Stmt::RwUnlock(rw),
                Stmt::RwUnlock(rw),
            ],
            Variant::Fixed(FixKind::AcquireInOrder) => vec![
                // Take the write lock up front.
                Stmt::RwWrite(rw),
                Stmt::fetch_add(work, 1),
                Stmt::RwUnlock(rw),
            ],
            Variant::Fixed(FixKind::Transaction) => vec![
                // Optimistic read-then-write: no lock modes to upgrade.
                Stmt::TxBegin,
                Stmt::read(work, "w"),
                Stmt::write(work, local("w") + Expr::lit(1)),
                Stmt::TxCommit,
            ],
            Variant::Fixed(other) => unreachable!("rwlock_upgrade has no {other} fix"),
        };
        b.thread(name, body);
    }
    b.build().expect("kernel builds")
}

/// Joining a thread that needs the lock the joiner holds.
fn join_under_lock(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("join_under_lock");
    let work = b.var("work", 0);
    let m = b.mutex();
    let child = b.thread(
        "child",
        vec![Stmt::lock(m), Stmt::fetch_add(work, 1), Stmt::unlock(m)],
    );
    let parent = match variant {
        Variant::Buggy => vec![
            Stmt::lock(m),
            Stmt::Join(child), // child needs m to finish
            Stmt::unlock(m),
        ],
        Variant::Fixed(FixKind::GiveUp) => vec![
            Stmt::lock(m),
            Stmt::unlock(m), // release before joining
            Stmt::Join(child),
        ],
        Variant::Fixed(other) => unreachable!("join_under_lock has no {other} fix"),
    };
    b.thread("parent", parent);
    b.build().expect("kernel builds")
}

/// Two counting semaphores acquired in opposite orders.
fn semaphore_cycle(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("semaphore_cycle");
    let work = b.var("work", 0);
    let s1 = b.semaphore(1);
    let s2 = b.semaphore(1);
    match variant {
        Variant::Buggy => {
            b.thread(
                "t1",
                vec![
                    Stmt::SemAcquire(s1),
                    Stmt::SemAcquire(s2),
                    Stmt::fetch_add(work, 1),
                    Stmt::SemRelease(s2),
                    Stmt::SemRelease(s1),
                ],
            );
            b.thread(
                "t2",
                vec![
                    Stmt::SemAcquire(s2),
                    Stmt::SemAcquire(s1),
                    Stmt::fetch_add(work, 1),
                    Stmt::SemRelease(s1),
                    Stmt::SemRelease(s2),
                ],
            );
        }
        Variant::Fixed(FixKind::Split) => {
            // Each thread gets its own resource pair: the cycle cannot form.
            b.thread(
                "t1",
                vec![
                    Stmt::SemAcquire(s1),
                    Stmt::fetch_add(work, 1),
                    Stmt::SemRelease(s1),
                ],
            );
            b.thread(
                "t2",
                vec![
                    Stmt::SemAcquire(s2),
                    Stmt::fetch_add(work, 1),
                    Stmt::SemRelease(s2),
                ],
            );
        }
        Variant::Fixed(FixKind::AcquireInOrder) => {
            for name in ["t1", "t2"] {
                b.thread(
                    name,
                    vec![
                        Stmt::SemAcquire(s1),
                        Stmt::SemAcquire(s2),
                        Stmt::fetch_add(work, 1),
                        Stmt::SemRelease(s2),
                        Stmt::SemRelease(s1),
                    ],
                );
            }
        }
        Variant::Fixed(FixKind::Transaction) => {
            // The semaphores were binary locks around the work counter.
            for name in ["t1", "t2"] {
                b.thread(
                    name,
                    vec![
                        Stmt::TxBegin,
                        Stmt::read(work, "w"),
                        Stmt::write(work, local("w") + Expr::lit(1)),
                        Stmt::TxCommit,
                    ],
                );
            }
        }
        Variant::Fixed(other) => unreachable!("semaphore_cycle has no {other} fix"),
    }
    b.build().expect("kernel builds")
}

/// Bounded buffer with ONE condition variable shared by producers and
/// consumers, woken with `signal`: a wakeup can land on a same-role
/// thread and the system wedges with work still to do.
fn bounded_buffer(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("bounded_buffer");
    let count = b.var("count", 0); // buffer of capacity 1
    let m = b.mutex();
    let shared = b.cond();
    let not_full = b.cond();
    let not_empty = b.cond();

    let producer = |cv_wait, cv_notify, broadcast: bool| {
        let mut body = vec![
            Stmt::lock(m),
            Stmt::read(count, "c"),
            Stmt::while_loop(
                local("c").eq(Expr::lit(1)),
                vec![
                    Stmt::Wait {
                        cond: cv_wait,
                        mutex: m,
                    },
                    Stmt::read(count, "c"),
                ],
            ),
            Stmt::write(count, 1),
        ];
        body.push(if broadcast {
            Stmt::Broadcast(cv_notify)
        } else {
            Stmt::Signal(cv_notify)
        });
        body.push(Stmt::unlock(m));
        body
    };
    let consumer = |cv_wait, cv_notify, broadcast: bool| {
        let mut body = vec![
            Stmt::lock(m),
            Stmt::read(count, "c"),
            Stmt::while_loop(
                local("c").eq(Expr::lit(0)),
                vec![
                    Stmt::Wait {
                        cond: cv_wait,
                        mutex: m,
                    },
                    Stmt::read(count, "c"),
                ],
            ),
            Stmt::write(count, 0),
        ];
        body.push(if broadcast {
            Stmt::Broadcast(cv_notify)
        } else {
            Stmt::Signal(cv_notify)
        });
        body.push(Stmt::unlock(m));
        body
    };

    match variant {
        Variant::Buggy => {
            // One condvar, signal: a consumer's signal can wake the other
            // consumer instead of the waiting producer.
            b.thread("p1", producer(shared, shared, false));
            b.thread("p2", producer(shared, shared, false));
            b.thread("c1", consumer(shared, shared, false));
            b.thread("c2", consumer(shared, shared, false));
        }
        Variant::Fixed(FixKind::Split) => {
            // Split the condvar by role: producers wait on not_full,
            // consumers on not_empty; each notifies the other role.
            b.thread("p1", producer(not_full, not_empty, false));
            b.thread("p2", producer(not_full, not_empty, false));
            b.thread("c1", consumer(not_empty, not_full, false));
            b.thread("c2", consumer(not_empty, not_full, false));
        }
        Variant::Fixed(FixKind::CodeSwitch) => {
            // Switch signal -> broadcast on the shared condvar.
            b.thread("p1", producer(shared, shared, true));
            b.thread("p2", producer(shared, shared, true));
            b.thread("c1", consumer(shared, shared, true));
            b.thread("c2", consumer(shared, shared, true));
        }
        Variant::Fixed(other) => unreachable!("bounded_buffer has no {other} fix"),
    }
    b.final_assert(Expr::shared(count).eq(Expr::lit(0)), "buffer drained");
    b.build().expect("kernel builds")
}

/// The deadlock-family kernels.
pub(crate) fn kernels() -> Vec<Kernel> {
    vec![
        Kernel {
            id: "abba",
            name: "two mutexes acquired in opposite orders",
            family: Family::Deadlock,
            description: "Thread 1 locks A then B; thread 2 locks B then A. \
                          The canonical two-resource deadlock — the shape of \
                          most studied deadlocks.",
            source_bug: Some("mysql-dl-6634"),
            fixes: &[
                FixKind::AcquireInOrder,
                FixKind::GiveUp,
                FixKind::Transaction,
            ],
            expected: ExpectedFailure::Deadlock,
            threads: 2,
            variables: 0,
            build_fn: abba,
        },
        Kernel {
            id: "self_relock",
            name: "non-recursive mutex re-acquired by its owner",
            family: Family::Deadlock,
            description: "An error path re-enters a helper that takes the \
                          lock the caller already holds: one thread, one \
                          resource — the self-deadlock that is 22% of the \
                          studied deadlocks.",
            source_bug: Some("mysql-dl-3791"),
            fixes: &[FixKind::GiveUp, FixKind::Transaction],
            expected: ExpectedFailure::Deadlock,
            threads: 1,
            variables: 0,
            build_fn: self_relock,
        },
        Kernel {
            id: "lock_cycle_3",
            name: "three locks, three threads, one cycle",
            family: Family::Deadlock,
            description: "Each thread holds lock i and wants lock i+1 mod 3 \
                          — the corpus's only deadlock with more than two \
                          resources.",
            source_bug: Some("mozilla-dl-158629"),
            fixes: &[FixKind::AcquireInOrder, FixKind::Transaction],
            expected: ExpectedFailure::Deadlock,
            threads: 3,
            variables: 0,
            build_fn: lock_cycle_3,
        },
        Kernel {
            id: "wait_holding_lock",
            name: "blocking on a completion while holding its lock",
            family: Family::Deadlock,
            description: "The waiter blocks on a semaphore while holding \
                          the mutex the releasing worker needs.",
            source_bug: Some("mozilla-dl-101731"),
            fixes: &[FixKind::GiveUp],
            expected: ExpectedFailure::Deadlock,
            threads: 2,
            variables: 0,
            build_fn: wait_holding_lock,
        },
        Kernel {
            id: "rwlock_upgrade",
            name: "read-to-write upgrade deadlock",
            family: Family::Deadlock,
            description: "A reader upgrades to a write lock; the writer \
                          admission waits for all readers — including the \
                          upgrader itself.",
            source_bug: Some("mozilla-dl-130512"),
            fixes: &[FixKind::AcquireInOrder, FixKind::Transaction],
            expected: ExpectedFailure::Deadlock,
            threads: 1,
            variables: 0,
            build_fn: rwlock_upgrade,
        },
        Kernel {
            id: "join_under_lock",
            name: "join of a thread that needs the held lock",
            family: Family::Deadlock,
            description: "The parent joins the child while holding the \
                          mutex the child's last step acquires.",
            source_bug: Some("mozilla-dl-137748"),
            fixes: &[FixKind::GiveUp],
            expected: ExpectedFailure::Deadlock,
            threads: 2,
            variables: 0,
            build_fn: join_under_lock,
        },
        Kernel {
            id: "bounded_buffer",
            name: "one condvar for two roles, woken with signal",
            family: Family::Deadlock,
            description: "Producers and consumers share a single condition \
                          variable; `signal` can wake a same-role waiter, \
                          after which everyone waits forever — the classic \
                          lost-wakeup wedge fixed by splitting the condvar \
                          per role or broadcasting.",
            source_bug: Some("mozilla-dl-123904"),
            fixes: &[FixKind::Split, FixKind::CodeSwitch],
            expected: ExpectedFailure::Deadlock,
            threads: 4,
            variables: 1,
            build_fn: bounded_buffer,
        },
        Kernel {
            id: "semaphore_cycle",
            name: "two semaphores acquired in opposite orders",
            family: Family::Deadlock,
            description: "ABBA over counting semaphores; fixed by splitting \
                          the shared resource (the studied fix) or by \
                          ordering acquisition.",
            source_bug: Some("mozilla-dl-151176"),
            fixes: &[
                FixKind::Split,
                FixKind::AcquireInOrder,
                FixKind::Transaction,
            ],
            expected: ExpectedFailure::Deadlock,
            threads: 2,
            variables: 0,
            build_fn: semaphore_cycle,
        },
    ]
}
