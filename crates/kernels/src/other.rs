//! The study's "other" non-deadlock bucket: bugs that are neither
//! atomicity nor order violations — here, a flag-based livelock where two
//! threads repeatedly back off for each other.

use lfm_sim::{Expr, Program, ProgramBuilder, Stmt};

use crate::kernel::{ExpectedFailure, Family, FixKind, Kernel, Variant};

fn local(name: &'static str) -> Expr {
    Expr::local(name)
}

/// Dekker-style politeness livelock: each thread raises its flag, sees
/// the peer's flag, backs off — potentially forever (bounded here so the
/// starvation becomes an assertion failure).
fn livelock_retry(variant: Variant) -> Program {
    let mut b = ProgramBuilder::new("livelock_retry");
    let flags = [b.var("flag0", 0), b.var("flag1", 0)];
    let progress = b.var("progress", 0);
    let m = b.mutex();
    for (i, name) in ["t0", "t1"].into_iter().enumerate() {
        let mine = flags[i];
        let theirs = flags[1 - i];
        let body = match variant {
            Variant::Buggy => vec![
                Stmt::local("won", 0),
                Stmt::local("attempts", 0),
                Stmt::while_loop(
                    local("won")
                        .eq(Expr::lit(0))
                        .and(local("attempts").lt(Expr::lit(3))),
                    vec![
                        Stmt::write(mine, 1),
                        Stmt::read(theirs, "peer"),
                        Stmt::if_else(
                            local("peer").eq(Expr::lit(0)),
                            vec![
                                Stmt::fetch_add(progress, 1),
                                Stmt::write(mine, 0),
                                Stmt::local("won", 1),
                            ],
                            vec![
                                // Back off politely and retry.
                                Stmt::write(mine, 0),
                                Stmt::Yield,
                            ],
                        ),
                        Stmt::local("attempts", local("attempts") + Expr::lit(1)),
                    ],
                ),
                Stmt::assert(
                    local("won").eq(Expr::lit(1)),
                    "thread eventually makes progress",
                ),
            ],
            Variant::Fixed(FixKind::Lock) => {
                vec![Stmt::lock(m), Stmt::fetch_add(progress, 1), Stmt::unlock(m)]
            }
            Variant::Fixed(other) => unreachable!("livelock_retry has no {other} fix"),
        };
        b.thread(name, body);
    }
    b.build().expect("kernel builds")
}

/// The other-family kernels.
pub(crate) fn kernels() -> Vec<Kernel> {
    vec![Kernel {
        id: "livelock_retry",
        name: "mutual back-off livelock",
        family: Family::OtherNonDeadlock,
        description: "Two threads repeatedly raise a flag, observe the \
                      peer's flag, and back off in lockstep; under the \
                      pathological schedule neither makes progress within \
                      its retry budget. Neither an atomicity nor an order \
                      violation — the study's 'other' bucket.",
        source_bug: Some("mysql-24988"),
        fixes: &[FixKind::Lock],
        expected: ExpectedFailure::Assert,
        threads: 2,
        variables: 2,
        build_fn: livelock_retry,
    }]
}
