//! # lfm-kernels — executable minimized concurrency-bug kernels
//!
//! Every bug pattern the ASPLOS'08 study identifies, as a runnable
//! [`lfm_sim::Program`]: 29 kernels across five families (single-variable
//! atomicity, order violation, multi-variable, deadlock, other), each
//! with a faithful **buggy** variant and one or more **fixed** variants
//! whose repair strategy mirrors a category of the study's fix-strategy
//! tables (condition check, code switch, design change, add/change lock,
//! give up resource, acquire in order, split resource, transaction).
//!
//! The contract, verified by this crate's tests with the `lfm-sim` model
//! checker, is:
//!
//! - the buggy variant **manifests** (some interleaving fails an
//!   assertion or deadlocks), and
//! - every fixed variant is **correct** (exhaustive exploration finds no
//!   failure).
//!
//! # Example
//!
//! ```rust
//! use lfm_kernels::{registry, Variant, FixKind};
//! use lfm_sim::Explorer;
//!
//! let kernel = registry::by_id("counter_rmw").expect("known kernel");
//! let buggy = Explorer::new(&kernel.buggy()).run();
//! assert!(buggy.found_failure());
//!
//! let fixed = kernel.build(Variant::Fixed(FixKind::Lock));
//! assert!(Explorer::new(&fixed).run().proved_ok());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod atomicity;
mod deadlock;
mod kernel;
mod multivar;
mod order;
mod other;

pub use kernel::{ExpectedFailure, Family, FixKind, Kernel, Variant};

/// The kernel registry.
pub mod registry {
    use super::*;

    /// All kernels, grouped by family in a stable order.
    pub fn all() -> Vec<Kernel> {
        let mut v = atomicity::kernels();
        v.extend(order::kernels());
        v.extend(multivar::kernels());
        v.extend(deadlock::kernels());
        v.extend(other::kernels());
        v
    }

    /// Looks up one kernel by id.
    pub fn by_id(id: &str) -> Option<Kernel> {
        all().into_iter().find(|k| k.id == id)
    }

    /// All kernels of one family.
    pub fn by_family(family: Family) -> Vec<Kernel> {
        all().into_iter().filter(|k| k.family == family).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_29_unique_kernels() {
        let all = registry::all();
        assert_eq!(all.len(), 29);
        let mut ids: Vec<_> = all.iter().map(|k| k.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 29);
    }

    #[test]
    fn every_family_is_populated() {
        for family in Family::ALL {
            assert!(
                !registry::by_family(family).is_empty(),
                "family {family} has no kernels"
            );
        }
        assert_eq!(registry::by_family(Family::AtomicitySingleVar).len(), 9);
        assert_eq!(registry::by_family(Family::Order).len(), 6);
        assert_eq!(registry::by_family(Family::MultiVariable).len(), 5);
        assert_eq!(registry::by_family(Family::Deadlock).len(), 8);
        assert_eq!(registry::by_family(Family::OtherNonDeadlock).len(), 1);
    }

    #[test]
    fn lookup_by_id() {
        assert!(registry::by_id("abba").is_some());
        assert!(registry::by_id("missing_kernel").is_none());
    }

    #[test]
    fn all_variants_build() {
        for kernel in registry::all() {
            let buggy = kernel.buggy();
            assert!(buggy.n_threads() >= 1, "{}", kernel.id);
            for &fix in kernel.fixes {
                let fixed = kernel.build(Variant::Fixed(fix));
                assert!(fixed.n_threads() >= 1, "{} fix {fix}", kernel.id);
            }
        }
    }

    #[test]
    fn try_build_rejects_unsupported_fixes() {
        // read_frag_write has irrevocable I/O in its region and therefore
        // deliberately offers no transactional rewrite.
        let kernel = registry::by_id("read_frag_write").unwrap();
        assert!(kernel
            .try_build(Variant::Fixed(FixKind::Transaction))
            .is_none());
        assert!(kernel.try_build(Variant::Buggy).is_some());
    }

    #[test]
    #[should_panic(expected = "does not implement fix")]
    fn build_panics_on_unsupported_fix() {
        let kernel = registry::by_id("read_frag_write").unwrap();
        let _ = kernel.build(Variant::Fixed(FixKind::Transaction));
    }

    #[test]
    fn deadlock_kernels_are_marked() {
        for kernel in registry::by_family(Family::Deadlock) {
            assert!(kernel.is_deadlock());
            assert_eq!(kernel.expected, ExpectedFailure::Deadlock);
        }
    }

    #[test]
    fn thread_counts_match_program_shape() {
        for kernel in registry::all() {
            let program = kernel.buggy();
            assert!(
                program.n_threads() >= kernel.threads,
                "{}: {} program threads < {} declared",
                kernel.id,
                program.n_threads(),
                kernel.threads
            );
        }
    }
}
