//! Kernel metadata types and the registry plumbing.

use std::fmt;

use lfm_sim::Program;

/// The pattern family a kernel belongs to, mirroring the study's
/// classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Family {
    /// Single-variable atomicity violations.
    AtomicitySingleVar,
    /// Order violations.
    Order,
    /// Multi-variable (pair-invariant) violations.
    MultiVariable,
    /// Deadlocks.
    Deadlock,
    /// The study's "other" non-deadlock bucket (livelock/starvation).
    OtherNonDeadlock,
}

impl Family {
    /// All families.
    pub const ALL: [Family; 5] = [
        Family::AtomicitySingleVar,
        Family::Order,
        Family::MultiVariable,
        Family::Deadlock,
        Family::OtherNonDeadlock,
    ];
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Family::AtomicitySingleVar => "atomicity (single-variable)",
            Family::Order => "order violation",
            Family::MultiVariable => "multi-variable",
            Family::Deadlock => "deadlock",
            Family::OtherNonDeadlock => "other (non-deadlock)",
        })
    }
}

/// The fix strategies a kernel implements as `Fixed` variants. These map
/// onto the study's fix taxonomy (Table: fix strategies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FixKind {
    /// Add or widen a lock (paper: add/change lock).
    Lock,
    /// Replace the load/compute/store with one atomic instruction
    /// (paper: design change).
    Atomic,
    /// Add a condition re-check (paper: condition check).
    CondCheck,
    /// Reorder statements (paper: code switch).
    CodeSwitch,
    /// Restructure the algorithm (paper: design change).
    Design,
    /// Add order-enforcing synchronization — semaphore/condvar (paper:
    /// usually bucketed under condition check or other).
    AddSync,
    /// Wrap the region in a transaction (the TM retrofit of Section 7).
    Transaction,
    /// Release a held resource before blocking (paper deadlock fix:
    /// give up resource).
    GiveUp,
    /// Impose a global acquisition order (paper deadlock fix).
    AcquireInOrder,
    /// Split one resource into several (paper deadlock fix).
    Split,
}

impl fmt::Display for FixKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FixKind::Lock => "add/change lock",
            FixKind::Atomic => "atomic instruction",
            FixKind::CondCheck => "condition check",
            FixKind::CodeSwitch => "code switch",
            FixKind::Design => "design change",
            FixKind::AddSync => "add ordering sync",
            FixKind::Transaction => "transaction",
            FixKind::GiveUp => "give up resource",
            FixKind::AcquireInOrder => "acquire in order",
            FixKind::Split => "split resource",
        })
    }
}

/// Which program variant of a kernel to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// The faithful buggy version.
    Buggy,
    /// A repaired version using the given strategy. Panics inside
    /// [`Kernel::build`] if the kernel does not implement the strategy —
    /// check [`Kernel::fixes`] first or use [`Kernel::try_build`].
    Fixed(FixKind),
}

/// How the buggy variant manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExpectedFailure {
    /// An assertion fails (wrong result / crash).
    Assert,
    /// Threads deadlock.
    Deadlock,
}

/// One executable bug kernel.
pub struct Kernel {
    /// Stable identifier used in corpus links, e.g. `"counter_rmw"`.
    pub id: &'static str,
    /// Human-readable one-liner.
    pub name: &'static str,
    /// Pattern family.
    pub family: Family,
    /// What the kernel is minimized from.
    pub description: &'static str,
    /// Corpus bug id this kernel is representative of, when meaningful.
    pub source_bug: Option<&'static str>,
    /// Fix strategies implemented as `Fixed` variants.
    pub fixes: &'static [FixKind],
    /// How the buggy variant manifests under the right schedule.
    pub expected: ExpectedFailure,
    /// Threads in the minimal manifestation (matches the corpus axis).
    pub threads: usize,
    /// Variables involved (1 for single-variable kernels).
    pub variables: usize,
    pub(crate) build_fn: fn(Variant) -> Program,
}

impl Kernel {
    /// Builds the requested variant.
    ///
    /// # Panics
    ///
    /// Panics when asked for a [`Variant::Fixed`] strategy not listed in
    /// [`Kernel::fixes`]; use [`Kernel::try_build`] for a fallible
    /// version.
    pub fn build(&self, variant: Variant) -> Program {
        if let Variant::Fixed(fix) = variant {
            assert!(
                self.fixes.contains(&fix),
                "kernel {} does not implement fix {fix}",
                self.id
            );
        }
        (self.build_fn)(variant)
    }

    /// Builds the requested variant, or `None` when the fix strategy is
    /// not implemented by this kernel.
    pub fn try_build(&self, variant: Variant) -> Option<Program> {
        match variant {
            Variant::Fixed(fix) if !self.fixes.contains(&fix) => None,
            v => Some((self.build_fn)(v)),
        }
    }

    /// The buggy variant.
    pub fn buggy(&self) -> Program {
        self.build(Variant::Buggy)
    }

    /// `true` when the kernel is a deadlock kernel.
    pub fn is_deadlock(&self) -> bool {
        self.family == Family::Deadlock
    }
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("id", &self.id)
            .field("family", &self.family)
            .field("fixes", &self.fixes)
            .field("expected", &self.expected)
            .finish_non_exhaustive()
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}] — {}", self.id, self.family, self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_and_fix_display() {
        assert_eq!(Family::MultiVariable.to_string(), "multi-variable");
        assert_eq!(FixKind::GiveUp.to_string(), "give up resource");
        assert_eq!(Family::ALL.len(), 5);
    }
}
