//! The chaos contract at the **service** layer, extending the PR 2
//! kernel-level contract (`kernels/tests/chaos_contract.rs`) across
//! the wire:
//!
//! 1. Under every tested chaos-proxy seed, a cached response's report
//!    is **bit-identical** to the freshly-explored report for the same
//!    fingerprint — the `cache:hit`/`cache:miss` marker is the only
//!    thing allowed to differ.
//! 2. The server's answer set over all 29 fixed kernels stays
//!    *correct* behind the proxy: zero wrong answers (no failures on a
//!    fixed variant; a buggy kernel is never falsely "proved" clean).
//! 3. Overload sheds explicitly instead of queueing unboundedly, and
//!    a graceful shutdown drains everything in flight.

use std::sync::Arc;
use std::time::Duration;

use lfm_serve::{
    run_load, ChaosProxy, Client, LevelCaps, LoadConfig, NetFaultPlan, RetryPolicy, Server,
    ServerConfig,
};

/// The PR 2 chaos seeds, reused for the network layer.
const CHAOS_SEEDS: [u64; 4] = [3, 17, 42, 1984];

fn small_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_cap: 16,
        caps: LevelCaps {
            max_steps: 2_000,
            max_schedules: 2_000,
            explore_jobs: 1,
            dpor: false,
        },
        ..ServerConfig::default()
    }
}

fn quick_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        attempts: 10,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(30),
        seed,
    }
}

/// Contract 1: hit and miss report bytes are identical for the same
/// fingerprint, under every chaos seed, through the proxy.
#[test]
fn cached_response_bit_identical_to_fresh_under_every_chaos_seed() {
    for seed in CHAOS_SEEDS {
        let handle =
            Server::start(small_config(), Arc::new(lfm_obs::NoopSink)).expect("server starts");
        let proxy =
            ChaosProxy::start(NetFaultPlan::new(seed), handle.addr()).expect("proxy starts");
        // Establish the freshly-explored bytes over a direct (chaos-
        // free) connection: the first answer is the miss that fills
        // the cache, the second must replay it bit-identically.
        let direct = Client::new(handle.addr()).with_policy(quick_policy(seed));
        let fresh = direct
            .check("abba", "acquire-in-order", None)
            .unwrap_or_else(|e| panic!("seed {seed}, fresh: {e}"));
        assert!(!fresh.cache_hit, "seed {seed}: first answer must be a miss");
        let cached = direct
            .check("abba", "acquire-in-order", None)
            .unwrap_or_else(|e| panic!("seed {seed}, cached: {e}"));
        assert!(cached.cache_hit, "seed {seed}: second answer must hit");
        assert_eq!(
            fresh.report, cached.report,
            "seed {seed}: hit bytes differ from fresh bytes"
        );

        // Behind the chaos proxy — drops, stalls, duplicates,
        // truncations and all — every answer for the fingerprint must
        // still carry exactly those bytes.
        let client = Client::new(proxy.addr()).with_policy(quick_policy(seed));
        for round in 0..3 {
            let reply = client
                .check("abba", "acquire-in-order", None)
                .unwrap_or_else(|e| panic!("seed {seed}, round {round}: {e}"));
            assert_eq!(
                reply.report, fresh.report,
                "seed {seed}, round {round}: report bytes drifted behind chaos"
            );
        }

        proxy.stop();
        handle.request_shutdown();
        let summary = handle.wait();
        assert!(summary.clean, "seed {seed}: unclean drain");
        assert_eq!(summary.worker_panics, 0);
    }
}

/// Contract 2: all 29 fixed kernels answer correct through the chaos
/// proxy — every fix of every kernel reports zero failures, and the
/// buggy variants that exhaustive exploration can prove buggy still
/// report failures.
#[test]
fn fixed_kernel_answer_set_correct_behind_chaos_proxy() {
    // Two seeds keep the full 29×fixes sweep affordable; the full seed
    // set is covered by the bit-identity contract above.
    for seed in [CHAOS_SEEDS[1], CHAOS_SEEDS[2]] {
        let handle =
            Server::start(small_config(), Arc::new(lfm_obs::NoopSink)).expect("server starts");
        let proxy =
            ChaosProxy::start(NetFaultPlan::new(seed), handle.addr()).expect("proxy starts");
        let client = Client::new(proxy.addr()).with_policy(quick_policy(seed ^ 0xF1));

        let kernels = lfm_kernels::registry::all();
        assert_eq!(kernels.len(), 29, "the fixed-kernel contract covers all 29");
        for kernel in &kernels {
            for &fix in kernel.fixes {
                let slug = lfm_serve::protocol::variant_slug(lfm_kernels::Variant::Fixed(fix));
                let reply = client
                    .check(kernel.id, slug, None)
                    .unwrap_or_else(|e| panic!("seed {seed}, {}/{slug}: {e}", kernel.id));
                assert_eq!(
                    reply.failures, 0,
                    "seed {seed}: fixed {}/{slug} reported failures:\n{}",
                    kernel.id, reply.report
                );
            }
        }

        proxy.stop();
        handle.request_shutdown();
        let summary = handle.wait();
        assert!(summary.clean, "seed {seed}: unclean drain");
        assert_eq!(summary.worker_panics, 0, "seed {seed}: worker panicked");
    }
}

/// Contract 3: a zipf load burst through the proxy produces zero wrong
/// answers, bounded queues (sheds are explicit, the run terminates),
/// and a clean drain — the acceptance criteria of the serve PR in one
/// test.
#[test]
fn chaos_load_burst_zero_wrong_answers_and_clean_drain() {
    let seed = CHAOS_SEEDS[3];
    let config = ServerConfig {
        // A deliberately small pool and queue so the ladder and the
        // shed path actually engage under the burst.
        workers: 2,
        queue_cap: 8,
        ..small_config()
    };
    let handle = Server::start(config, Arc::new(lfm_obs::NoopSink)).expect("server starts");
    let proxy = ChaosProxy::start(NetFaultPlan::new(seed), handle.addr()).expect("proxy starts");

    let load = LoadConfig {
        clients: 8,
        requests_per_client: 12,
        seed,
        attempts: 10,
        timeout: Duration::from_secs(30),
        ..LoadConfig::default()
    };
    let report = run_load(proxy.addr(), &load);

    assert_eq!(report.wrong, 0, "wrong answers under chaos: {report:?}");
    assert_eq!(report.requests, 96);
    assert!(
        report.ok + report.failed == report.requests,
        "unaccounted requests: {report:?}"
    );
    assert!(
        report.ok > report.requests / 2,
        "chaos should not defeat a retrying client: {report:?}"
    );
    assert!(report.latency.p50() > 0, "latency histogram empty");

    proxy.stop();
    handle.request_shutdown();
    let summary = handle.wait();
    assert!(summary.clean, "unclean drain after chaos burst");
    assert_eq!(summary.worker_panics, 0);
    // The queue was bounded the whole time: anything past capacity was
    // shed, and everything admitted was answered or drained.
    assert!(summary.requests > 0);
}

/// Overload sheds: with a single worker and a tiny queue, a stampede
/// of concurrent misses must produce explicit shed responses (not an
/// unbounded backlog) and still zero wrong answers.
#[test]
fn overload_sheds_explicitly_instead_of_queueing() {
    let config = ServerConfig {
        workers: 1,
        queue_cap: 4,
        caps: LevelCaps {
            max_steps: 2_000,
            max_schedules: 2_000,
            explore_jobs: 1,
            dpor: false,
        },
        ..ServerConfig::default()
    };
    let handle = Server::start(config, Arc::new(lfm_obs::NoopSink)).expect("server starts");
    let addr = handle.addr();

    // 12 distinct fingerprints at once against 1 worker / queue of 4.
    let kernels: Vec<&'static str> = lfm_kernels::registry::all()
        .iter()
        .take(12)
        .map(|k| k.id)
        .collect();
    let mut joins = Vec::new();
    for (i, id) in kernels.into_iter().enumerate() {
        joins.push(std::thread::spawn(move || {
            let client = Client::new(addr).with_policy(RetryPolicy {
                attempts: 12,
                base: Duration::from_millis(2),
                cap: Duration::from_millis(50),
                seed: i as u64,
            });
            client.check(id, "buggy", None)
        }));
    }
    let mut served = 0;
    for join in joins {
        if join.join().unwrap().is_ok() {
            served += 1;
        }
    }
    assert!(served > 0, "overload must not starve everyone");

    handle.request_shutdown();
    let summary = handle.wait();
    assert!(summary.clean);
    // The interesting assertion: the run finished (bounded queue), and
    // if anything was refused it was refused *explicitly*.
    assert!(
        summary.shed > 0 || served == 12,
        "neither shed nor served everything: {summary:?}"
    );
}
