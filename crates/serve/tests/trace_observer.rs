//! Tracing is a strict observer, and the `stats` op is chaos-proof.
//!
//! 1. Check replies are **byte-identical** with tracing fully on vs
//!    fully off, per sim-chaos seed — the acceptance criterion of the
//!    tracing PR. The trace echo is a pure function of the request, so
//!    flipping every server-side tracing knob must not move a byte.
//! 2. `stats` frames survive the chaos proxy: truncated or duplicated
//!    frames never wedge a connection, and the server stays fully
//!    serviceable afterwards.
//! 3. Unknown request types (a future client's op) get a well-formed
//!    `error` reply on the same schema, and the connection remains
//!    usable — forward/backward protocol compatibility.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use lfm_obs::json::Json;
use lfm_serve::{
    ChaosProxy, Client, LevelCaps, NetFaultPlan, Server, ServerConfig, ServerHandle, StatsSnapshot,
    TraceContext, SERVE_SCHEMA,
};

const CHAOS_SEEDS: [u64; 4] = [3, 17, 42, 1984];

fn config(trace: bool, chaos: Option<u64>) -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_cap: 16,
        caps: LevelCaps {
            max_steps: 2_000,
            max_schedules: 2_000,
            explore_jobs: 1,
            dpor: false,
        },
        chaos,
        trace,
        trace_slow_ms: if trace { Some(0) } else { None },
        ..ServerConfig::default()
    }
}

/// One raw frame over its own connection; the reply line, verbatim
/// (trailing newline stripped).
fn raw_roundtrip(addr: SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(line.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send newline");
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reply");
    reply.trim_end().to_owned()
}

/// The acceptance criterion: identical request sequences against a
/// fully-traced server and an untraced one produce byte-identical
/// replies, for every chaos seed.
#[test]
fn check_replies_byte_identical_with_tracing_on_vs_off() {
    for seed in CHAOS_SEEDS {
        let traced = Server::start(config(true, Some(seed)), Arc::new(lfm_obs::NoopSink))
            .expect("traced server starts");
        let plain = Server::start(config(false, Some(seed)), Arc::new(lfm_obs::NoopSink))
            .expect("plain server starts");
        // The same sequence, in the same order (miss, hit, traced
        // request, ping), so cache state matches step for step.
        let trace = TraceContext::mint(seed, 0);
        let requests = [
            r#"{"schema":"lfm-serve/v1","op":"check","kernel":"abba","variant":"acquire-in-order"}"#.to_owned(),
            r#"{"schema":"lfm-serve/v1","op":"check","kernel":"abba","variant":"acquire-in-order"}"#.to_owned(),
            format!(
                r#"{{"schema":"lfm-serve/v1","op":"check","kernel":"toctou_flag","variant":"buggy","trace_id":"{:016x}","span_id":"{:016x}"}}"#,
                trace.trace_id, trace.span_id
            ),
            r#"{"schema":"lfm-serve/v1","op":"ping"}"#.to_owned(),
        ];
        for (i, request) in requests.iter().enumerate() {
            let with = raw_roundtrip(traced.addr(), request);
            let without = raw_roundtrip(plain.addr(), request);
            assert_eq!(
                with, without,
                "seed {seed}, request {i}: tracing moved reply bytes"
            );
            if i == 2 {
                // The echo is there — determined by the request alone.
                assert!(
                    with.contains(&format!("{:016x}", trace.trace_id)),
                    "seed {seed}: trace echo missing: {with}"
                );
            }
        }
        // The traced server actually captured timelines; the plain one
        // captured none — yet the wire bytes above were identical.
        assert!(traced.tracer().captured() > 0, "seed {seed}");
        assert_eq!(plain.tracer().captured(), 0, "seed {seed}");
        for handle in [traced, plain] {
            handle.request_shutdown();
            assert!(handle.wait().clean, "seed {seed}: unclean drain");
        }
    }
}

fn shutdown_clean(handle: ServerHandle) {
    handle.request_shutdown();
    assert!(handle.wait().clean);
}

/// Satellite: `stats` frames through the chaos proxy. Truncation,
/// duplication, drops and stalls may cost individual attempts, but
/// they never wedge a connection or the server — a fresh direct
/// `stats` afterwards answers with consistent counters.
#[test]
fn stats_frames_survive_the_chaos_proxy() {
    for seed in [CHAOS_SEEDS[1], CHAOS_SEEDS[3]] {
        let handle =
            Server::start(config(false, None), Arc::new(lfm_obs::NoopSink)).expect("server starts");
        let proxy =
            ChaosProxy::start(NetFaultPlan::new(seed), handle.addr()).expect("proxy starts");
        let chaos_client = Client::new(proxy.addr()).with_timeout(Duration::from_secs(2));
        let mut answered = 0u32;
        for _ in 0..24 {
            // Each attempt either yields a parseable snapshot or a
            // described transport failure — never a hang (the timeout
            // above bounds every read) and never a malformed success.
            if let Ok(snapshot) = chaos_client.stats() {
                assert_eq!(snapshot.queue_cap, 16);
                answered += 1;
            }
        }
        assert!(
            answered > 0,
            "seed {seed}: chaos defeated every stats attempt"
        );
        // The server came through unwedged: direct stats and checks
        // still work, and the chaos rounds were all counted.
        let direct = Client::new(handle.addr());
        let snapshot = direct.stats().expect("direct stats");
        assert!(snapshot.requests >= u64::from(answered));
        assert!(direct.ping(), "seed {seed}: server wedged after chaos");
        proxy.stop();
        shutdown_clean(handle);
    }
}

/// Satellite: frames from the future — ops this server has never heard
/// of — get a well-formed `error` reply on the lfm-serve/v1 schema,
/// and the connection keeps serving. Old clients talking to new
/// servers rely on exactly this.
#[test]
fn unknown_request_types_get_well_formed_error_replies() {
    let handle =
        Server::start(config(false, None), Arc::new(lfm_obs::NoopSink)).expect("server starts");
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut send_recv = |frame: &str| -> String {
        stream.write_all(frame.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply");
        reply.trim_end().to_owned()
    };
    let unknown = [
        // A future op on the current schema.
        r#"{"schema":"lfm-serve/v1","op":"frobnicate","target":"everything"}"#,
        // A missing op.
        r#"{"schema":"lfm-serve/v1"}"#,
        // A foreign schema entirely.
        r#"{"schema":"acme-rpc/v9","op":"check"}"#,
        // Not even JSON.
        "definitely not json",
    ];
    for frame in unknown {
        let reply = send_recv(frame);
        let doc = Json::parse(&reply)
            .unwrap_or_else(|e| panic!("error reply not JSON for {frame:?}: {e}"));
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(SERVE_SCHEMA),
            "{frame:?} -> {reply}"
        );
        assert_eq!(
            doc.get("status").and_then(Json::as_str),
            Some("error"),
            "{frame:?} -> {reply}"
        );
    }
    // Same connection, still alive: a current-schema stats request and
    // a ping both answer.
    let stats_reply = send_recv(r#"{"schema":"lfm-serve/v1","op":"stats"}"#);
    let snapshot = StatsSnapshot::parse(&stats_reply).expect("stats after errors");
    assert_eq!(snapshot.errors, unknown.len() as u64);
    let pong = send_recv(r#"{"schema":"lfm-serve/v1","op":"ping"}"#);
    assert!(pong.contains("\"status\":\"pong\""), "{pong}");
    // Close our long-lived connection before asking for a clean drain.
    drop(send_recv);
    drop(reader);
    drop(stream);
    shutdown_clean(handle);
}
