//! The closed-loop load generator behind `lfm bench-serve`.
//!
//! N client threads issue requests back-to-back (closed loop: each
//! waits for its answer before the next request) over a zipf mix of
//! the kernel×variant universe — a few hot fingerprints dominate, a
//! long tail stays fresh, which is what exercises both the cache and
//! the admission ladder at once. Everything is seeded: the mix, the
//! per-client retry jitter, and (when enabled) the chaos proxy, so a
//! load run is a reproducible experiment, not weather.
//!
//! Correctness is tallied *while* measuring: a fixed variant reporting
//! failures, or a buggy kernel "proved" clean, is a **wrong answer** —
//! the one thing no amount of shedding, degrading, or chaos excuses.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use lfm_obs::{Histogram, HistogramSnapshot, Stopwatch};
use lfm_sim::splitmix64;

use crate::client::{Client, ClientError, RetryPolicy};
use crate::protocol::variant_slug;

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Seed for the mix and the retry jitter.
    pub seed: u64,
    /// Zipf skew (higher = hotter head). 0 would be uniform.
    pub zipf_s: f64,
    /// Per-request deadline passed to the server.
    pub deadline_ms: Option<u64>,
    /// Per-attempt client I/O timeout.
    pub timeout: Duration,
    /// Retry attempts per request.
    pub attempts: u32,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            clients: 16,
            requests_per_client: 25,
            seed: 42,
            zipf_s: 1.1,
            deadline_ms: None,
            timeout: Duration::from_secs(30),
            attempts: 8,
        }
    }
}

/// What one load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Requests issued (clients × requests_per_client).
    pub requests: u64,
    /// Requests that got an `ok` answer (possibly after retries).
    pub ok: u64,
    /// Requests that exhausted their retries.
    pub failed: u64,
    /// Requests whose answer was **wrong** (see module docs). Must be
    /// zero, always, under any chaos.
    pub wrong: u64,
    /// `ok` answers served from the cache.
    pub hits: u64,
    /// Shed responses absorbed across all attempts.
    pub sheds: u64,
    /// Transport failures absorbed across all attempts.
    pub transport_errors: u64,
    /// Total attempts across all requests.
    pub attempts: u64,
    /// Retries across all requests (attempts beyond each request's
    /// first try, exhausted requests included).
    pub retries_total: u64,
    /// The worst single request's retry count.
    pub max_retries: u64,
    /// Answers per degrade level (from the reports' `level` field).
    pub degrade: [u64; 4],
    /// Per-request latency (microseconds), retries included — the
    /// user-visible number.
    pub latency: HistogramSnapshot,
    /// Wall time of the whole run.
    pub wall: Duration,
}

impl LoadReport {
    /// Cache hit rate over `ok` answers.
    pub fn hit_rate(&self) -> f64 {
        if self.ok == 0 {
            0.0
        } else {
            self.hits as f64 / self.ok as f64
        }
    }

    /// Fraction of attempts answered with a shed.
    pub fn shed_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.sheds as f64 / self.attempts as f64
        }
    }

    /// Completed requests per wall second.
    pub fn requests_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.ok as f64 / secs
        }
    }
}

/// One entry of the request universe.
#[derive(Debug, Clone)]
struct Target {
    kernel: &'static str,
    variant: &'static str,
    /// `true` when the variant is the buggy one (failures expected
    /// *when coverage suffices*).
    buggy: bool,
}

/// The kernel×variant universe in registry order: every kernel's buggy
/// variant and every implemented fix.
fn universe() -> Vec<Target> {
    let mut targets = Vec::new();
    for kernel in lfm_kernels::registry::all() {
        targets.push(Target {
            kernel: kernel.id,
            variant: "buggy",
            buggy: true,
        });
        for &fix in kernel.fixes {
            targets.push(Target {
                kernel: kernel.id,
                variant: variant_slug(lfm_kernels::Variant::Fixed(fix)),
                buggy: false,
            });
        }
    }
    targets
}

/// Cumulative zipf weights over `n` ranks with skew `s`.
fn zipf_cdf(n: usize, s: f64) -> Vec<f64> {
    let mut acc = 0.0;
    let mut cdf = Vec::with_capacity(n);
    for rank in 0..n {
        acc += 1.0 / ((rank + 1) as f64).powf(s);
        cdf.push(acc);
    }
    for w in &mut cdf {
        *w /= acc;
    }
    cdf
}

/// Draws a rank from the zipf CDF with a unit uniform from splitmix64.
fn draw(cdf: &[f64], state: u64) -> usize {
    let unit = (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64;
    cdf.partition_point(|&w| w < unit).min(cdf.len() - 1)
}

/// Is this answer wrong? A fixed variant must never report failures at
/// any level (a false alarm is always wrong). A buggy kernel must not
/// be "proved" clean — sampled or partial coverage missing a bug is
/// honest, a proof that misses it is a lie.
fn is_wrong(buggy: bool, failures: u64, confidence: &str) -> bool {
    if !buggy {
        failures > 0
    } else {
        failures == 0 && confidence == "proved"
    }
}

/// Runs the closed loop against `addr` and tallies.
pub fn run_load(addr: SocketAddr, config: &LoadConfig) -> LoadReport {
    let targets = Arc::new(universe());
    let cdf = Arc::new(zipf_cdf(targets.len(), config.zipf_s));
    let latency = Arc::new(Histogram::new());
    let stopwatch = Stopwatch::start();
    let mut joins = Vec::new();
    for client_index in 0..config.clients {
        let targets = Arc::clone(&targets);
        let cdf = Arc::clone(&cdf);
        let latency = Arc::clone(&latency);
        let config = config.clone();
        joins.push(std::thread::spawn(move || {
            let policy = RetryPolicy {
                attempts: config.attempts,
                base: Duration::from_millis(2),
                cap: Duration::from_millis(100),
                seed: splitmix64(config.seed ^ ((client_index as u64) << 32) ^ 0xC1),
            };
            let client = Client::new(addr)
                .with_policy(policy)
                .with_timeout(config.timeout)
                // Every bench request carries a deterministic trace
                // context end to end (client → proxy → server).
                .with_trace(splitmix64(
                    config.seed ^ ((client_index as u64) << 16) ^ 0x7ACE,
                ));
            let mut tally = Tally::default();
            for request_index in 0..config.requests_per_client {
                let state = config.seed
                    ^ ((client_index as u64) << 40)
                    ^ ((request_index as u64) << 8)
                    ^ 0x10AD;
                let target = &targets[draw(&cdf, state)];
                let request_watch = Stopwatch::start();
                match client.check(target.kernel, target.variant, config.deadline_ms) {
                    Ok(reply) => {
                        latency.record(request_watch.elapsed().as_micros() as u64);
                        tally.ok += 1;
                        tally.attempts += u64::from(reply.attempts);
                        tally.note_retries(u64::from(reply.retries()));
                        tally.sheds += u64::from(reply.sheds);
                        tally.transport_errors += u64::from(reply.transport_errors);
                        if reply.cache_hit {
                            tally.hits += 1;
                        }
                        if let Some(index) = level_slot(&reply.level) {
                            tally.degrade[index] += 1;
                        }
                        if is_wrong(target.buggy, reply.failures, &reply.confidence) {
                            tally.wrong += 1;
                        }
                    }
                    Err(ClientError::Fatal(_)) => {
                        // A semantic error under pure load is a wrong
                        // answer too: the universe only names kernels
                        // and fixes that exist.
                        tally.failed += 1;
                        tally.wrong += 1;
                    }
                    Err(ClientError::Exhausted { attempts, .. }) => {
                        tally.failed += 1;
                        tally.attempts += u64::from(attempts);
                        tally.note_retries(u64::from(attempts.saturating_sub(1)));
                    }
                }
            }
            tally
        }));
    }
    let mut total = Tally::default();
    for join in joins {
        if let Ok(tally) = join.join() {
            total.merge(&tally);
        }
    }
    LoadReport {
        requests: (config.clients * config.requests_per_client) as u64,
        ok: total.ok,
        failed: total.failed,
        wrong: total.wrong,
        hits: total.hits,
        sheds: total.sheds,
        transport_errors: total.transport_errors,
        attempts: total.attempts,
        retries_total: total.retries_total,
        max_retries: total.max_retries,
        degrade: total.degrade,
        latency: latency.snapshot(),
        wall: stopwatch.elapsed(),
    }
}

fn level_slot(level: &str) -> Option<usize> {
    match level {
        "exhaustive" => Some(0),
        "sleep-set" => Some(1),
        "preemption-bounded" => Some(2),
        "pct-sampling" => Some(3),
        _ => None,
    }
}

#[derive(Debug, Default)]
struct Tally {
    ok: u64,
    failed: u64,
    wrong: u64,
    hits: u64,
    sheds: u64,
    transport_errors: u64,
    attempts: u64,
    retries_total: u64,
    max_retries: u64,
    degrade: [u64; 4],
}

impl Tally {
    fn note_retries(&mut self, retries: u64) {
        self.retries_total += retries;
        self.max_retries = self.max_retries.max(retries);
    }

    fn merge(&mut self, other: &Tally) {
        self.ok += other.ok;
        self.failed += other.failed;
        self.wrong += other.wrong;
        self.hits += other.hits;
        self.sheds += other.sheds;
        self.transport_errors += other.transport_errors;
        self.attempts += other.attempts;
        self.retries_total += other.retries_total;
        self.max_retries = self.max_retries.max(other.max_retries);
        for (mine, theirs) in self.degrade.iter_mut().zip(other.degrade.iter()) {
            *mine += theirs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_covers_all_kernels_and_fixes() {
        let targets = universe();
        let kernels = lfm_kernels::registry::all();
        let buggy = targets.iter().filter(|t| t.buggy).count();
        assert_eq!(buggy, kernels.len(), "one buggy entry per kernel");
        let fixes: usize = kernels.iter().map(|k| k.fixes.len()).sum();
        assert_eq!(targets.len(), kernels.len() + fixes);
    }

    #[test]
    fn zipf_draws_are_deterministic_and_skewed() {
        let cdf = zipf_cdf(90, 1.1);
        let a: Vec<usize> = (0..500).map(|i| draw(&cdf, 42 ^ i)).collect();
        let b: Vec<usize> = (0..500).map(|i| draw(&cdf, 42 ^ i)).collect();
        assert_eq!(a, b, "same seed, same mix");
        let head = a.iter().filter(|&&rank| rank < 9).count();
        assert!(
            head > a.len() / 4,
            "zipf head too cold: {head}/{} in top 10%",
            a.len()
        );
        assert!(a.iter().any(|&rank| rank >= 30), "no tail at all");
    }

    #[test]
    fn wrongness_is_level_aware() {
        // Fixed variant with any failures: wrong at every confidence.
        assert!(is_wrong(false, 1, "proved"));
        assert!(is_wrong(false, 1, "sampled"));
        assert!(!is_wrong(false, 0, "sampled"));
        // Buggy kernel: only a false *proof* is wrong.
        assert!(is_wrong(true, 0, "proved"));
        assert!(!is_wrong(true, 0, "sampled"));
        assert!(!is_wrong(true, 0, "partial"));
        assert!(!is_wrong(true, 3, "proved"));
    }
}
