//! Running one exploration at one degrade level.
//!
//! The admission controller picks a [`DegradeLevel`]; this module runs
//! exactly that rung with the same limits the PR 2 `BudgetedExplorer`
//! ladder would use for it, so a served report means the same thing a
//! budgeted one does. Unlike the ladder, a service worker never climbs
//! back up — the level was chosen from queue pressure, and the point is
//! bounded per-request work.

use std::time::Duration;

use lfm_sim::random::PctScheduler;
use lfm_sim::{
    Confidence, DegradeLevel, ExploreLimits, Explorer, FaultPlan, OutcomeCounts, ParExplorer,
    Program, Truncation,
};

/// Preemption bound of the `preemption-bounded` rung (mirrors the
/// budget ladder).
pub const PREEMPTION_BOUND: u32 = 2;
/// PCT priority-change depth (mirrors the budget ladder).
pub const PCT_DEPTH: u32 = 3;
/// PCT trials per deadline re-check batch.
pub const PCT_BATCH: u64 = 32;
/// PCT trial cap when no deadline bounds the rung.
pub const PCT_DEFAULT_TRIALS: u64 = 512;

/// Exploration size caps shared by every rung of one server.
#[derive(Debug, Clone, Copy)]
pub struct LevelCaps {
    /// Per-execution step cap.
    pub max_steps: usize,
    /// Schedule cap per exploration.
    pub max_schedules: u64,
    /// Worker threads *inside* one exploration (`ParExplorer` when
    /// above 1). Service throughput usually wants pool-level
    /// parallelism instead, so the default is 1.
    pub explore_jobs: usize,
    /// Source-set DPOR on the DFS rungs. The explorer resolves the
    /// unsound combinations itself: chaos requests and the
    /// preemption-bounded rung fall back to the classic search.
    pub dpor: bool,
}

impl Default for LevelCaps {
    fn default() -> LevelCaps {
        LevelCaps {
            max_steps: 4_000,
            max_schedules: 50_000,
            explore_jobs: 1,
            dpor: false,
        }
    }
}

/// The deterministic result of one rung run — everything the canonical
/// report renders, and nothing wall-clock-dependent.
#[derive(Debug, Clone)]
pub struct CheckOutcome {
    /// Rung that produced the result.
    pub level: DegradeLevel,
    /// Coverage meaning of the result at this rung.
    pub confidence: Confidence,
    /// Outcome histogram.
    pub counts: OutcomeCounts,
    /// Schedules (or PCT trials) executed.
    pub schedules: u64,
    /// Why the run stopped early, if it did. `WallDeadline` here is the
    /// per-request deadline doing its job, not an error.
    pub truncation: Option<Truncation>,
    /// Display form of the first failing outcome, when one manifested.
    pub first_failure: Option<String>,
}

/// Runs `program` at exactly `level`.
///
/// `deadline` is the *remaining* per-request wall budget (measured by
/// the caller from admission time); expiry surfaces as
/// `Truncation::WallDeadline` in the outcome, reusing the explorer's
/// truncation contract rather than inventing a service-side timeout.
///
/// Chaos note: the sleep-set reduction is unsound under fault
/// injection (`Explorer::chaos` documents why), so with a `FaultPlan`
/// the sleep-set rung falls back to plain dedup — same pruning the
/// budget ladder applies when it skips that rung.
pub fn check_at_level(
    program: &Program,
    level: DegradeLevel,
    caps: LevelCaps,
    chaos: Option<FaultPlan>,
    deadline: Option<Duration>,
) -> CheckOutcome {
    if level == DegradeLevel::PctSampling {
        return run_pct(program, caps, chaos, deadline);
    }
    let limits = ExploreLimits {
        max_steps: caps.max_steps,
        max_schedules: caps.max_schedules,
        max_preemptions: (level == DegradeLevel::PreemptionBounded).then_some(PREEMPTION_BOUND),
        stop_on_first_failure: false,
        dedup_states: true,
        sleep_sets: level == DegradeLevel::SleepSet && chaos.is_none(),
        dpor: caps.dpor,
        fuse: true,
        deadline,
    };
    let report = if caps.explore_jobs > 1 {
        let mut explorer = ParExplorer::new(program)
            .limits(limits)
            .jobs(caps.explore_jobs);
        if let Some(plan) = chaos {
            explorer = explorer.chaos(plan);
        }
        explorer.run()
    } else {
        let mut explorer = Explorer::new(program).limits(limits);
        if let Some(plan) = chaos {
            explorer = explorer.chaos(plan);
        }
        explorer.run()
    };
    let confidence = match level {
        DegradeLevel::Exhaustive | DegradeLevel::SleepSet => {
            if report.truncation.is_none() {
                Confidence::Proved
            } else {
                Confidence::Partial
            }
        }
        DegradeLevel::PreemptionBounded => {
            if matches!(report.truncation, None | Some(Truncation::PreemptionBound)) {
                Confidence::Bounded
            } else {
                Confidence::Partial
            }
        }
        DegradeLevel::PctSampling => Confidence::Sampled,
    };
    CheckOutcome {
        level,
        confidence,
        counts: report.counts,
        schedules: report.schedules_run,
        truncation: report.truncation,
        first_failure: report.first_failure.as_ref().map(|(_, o)| o.to_string()),
    }
}

/// The PCT rung: seeded sampling in small batches, re-checking the
/// deadline between batches so a deadline can only overshoot by one
/// batch. At least one batch always runs.
fn run_pct(
    program: &Program,
    caps: LevelCaps,
    chaos: Option<FaultPlan>,
    deadline: Option<Duration>,
) -> CheckOutcome {
    let stopwatch = lfm_obs::Stopwatch::start();
    let seed_base = chaos.map_or(0x5EED, |p| p.seed);
    let trial_cap = match deadline {
        Some(_) => caps.max_schedules,
        None => PCT_DEFAULT_TRIALS.min(caps.max_schedules),
    };
    let mut counts = OutcomeCounts::default();
    let mut first_failure = None;
    let mut trials = 0u64;
    let mut batch = 0u64;
    let mut truncation = None;
    loop {
        let batch_trials = PCT_BATCH.min(trial_cap.saturating_sub(trials)).max(1);
        let seed = seed_base ^ batch.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut scheduler = PctScheduler::new(program, seed, PCT_DEPTH).max_steps(caps.max_steps);
        if let Some(plan) = chaos {
            scheduler = scheduler.with_faults(plan);
        }
        let r = scheduler.run_trials(batch_trials);
        counts.ok += r.counts.ok;
        counts.assert_failed += r.counts.assert_failed;
        counts.deadlock += r.counts.deadlock;
        counts.step_limit += r.counts.step_limit;
        counts.tx_retry_limit += r.counts.tx_retry_limit;
        counts.misuse += r.counts.misuse;
        trials += r.trials;
        if first_failure.is_none() {
            first_failure = r.first_failure.map(|(_, o)| o.to_string());
        }
        batch += 1;
        if trials >= trial_cap {
            break;
        }
        if deadline.is_some_and(|d| stopwatch.elapsed() >= d) {
            truncation = Some(Truncation::WallDeadline);
            break;
        }
    }
    CheckOutcome {
        level: DegradeLevel::PctSampling,
        confidence: Confidence::Sampled,
        counts,
        schedules: trials,
        truncation,
        first_failure,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_kernels::registry;

    #[test]
    fn exhaustive_proves_a_fixed_kernel() {
        let kernel = registry::by_id("toctou_flag").expect("kernel exists");
        let fix = kernel.fixes[0];
        let program = kernel.build(lfm_kernels::Variant::Fixed(fix));
        let out = check_at_level(
            &program,
            DegradeLevel::Exhaustive,
            LevelCaps::default(),
            None,
            None,
        );
        assert_eq!(out.confidence, Confidence::Proved);
        assert_eq!(out.counts.failures(), 0);
        assert!(out.first_failure.is_none());
    }

    #[test]
    fn every_level_finds_the_toctou_bug() {
        let kernel = registry::by_id("toctou_flag").expect("kernel exists");
        let program = kernel.buggy();
        for level in [
            DegradeLevel::Exhaustive,
            DegradeLevel::SleepSet,
            DegradeLevel::PreemptionBounded,
            DegradeLevel::PctSampling,
        ] {
            let out = check_at_level(&program, level, LevelCaps::default(), None, None);
            assert_eq!(out.level, level);
            assert!(
                out.counts.failures() > 0,
                "{level} missed the bug: {}",
                out.counts
            );
            assert!(out.first_failure.is_some());
        }
    }

    #[test]
    fn outcome_is_deterministic_per_level() {
        let kernel = registry::by_id("abba").expect("kernel exists");
        let program = kernel.buggy();
        for level in [DegradeLevel::Exhaustive, DegradeLevel::PctSampling] {
            let a = check_at_level(&program, level, LevelCaps::default(), None, None);
            let b = check_at_level(&program, level, LevelCaps::default(), None, None);
            assert_eq!(a.counts, b.counts);
            assert_eq!(a.schedules, b.schedules);
            assert_eq!(a.first_failure, b.first_failure);
        }
    }

    #[test]
    fn dpor_caps_preserve_verdicts_on_every_dfs_rung() {
        let kernel = registry::by_id("toctou_flag").expect("kernel exists");
        let caps = LevelCaps {
            dpor: true,
            ..LevelCaps::default()
        };
        for level in [
            DegradeLevel::Exhaustive,
            DegradeLevel::SleepSet,
            DegradeLevel::PreemptionBounded,
        ] {
            let buggy = check_at_level(&kernel.buggy(), level, caps, None, None);
            assert!(
                buggy.counts.failures() > 0,
                "{level} with DPOR missed the bug: {}",
                buggy.counts
            );
            let fix = kernel.fixes[0];
            let fixed = kernel.build(lfm_kernels::Variant::Fixed(fix));
            let ok = check_at_level(&fixed, level, caps, None, None);
            assert_eq!(ok.counts.failures(), 0, "{level} with DPOR false positive");
        }
    }

    #[test]
    fn tight_deadline_truncates_with_wall_deadline() {
        let kernel = registry::by_id("livelock_retry").expect("kernel exists");
        let program = kernel.buggy();
        let caps = LevelCaps {
            max_schedules: u64::MAX / 2,
            ..LevelCaps::default()
        };
        let out = check_at_level(
            &program,
            DegradeLevel::Exhaustive,
            caps,
            None,
            Some(Duration::from_millis(1)),
        );
        // The deepest kernel cannot be exhausted in a millisecond: the
        // run must be truncated (the wall deadline, unless the step
        // budget happened to trip first) and downgraded to partial.
        assert!(
            matches!(
                out.truncation,
                Some(Truncation::WallDeadline) | Some(Truncation::StepBudget)
            ),
            "expected a truncated run, got {:?}",
            out.truncation
        );
        assert_eq!(out.confidence, Confidence::Partial);
    }
}
