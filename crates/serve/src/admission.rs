//! Queue-pressure admission control: the budget ladder as an overload
//! policy.
//!
//! The PR 2 degradation ladder trades coverage for latency when a
//! *deadline* is tight; here the same ladder trades coverage for
//! throughput when the *queue* is deep. An idle server explores
//! exhaustively; as the worker queue fills, new misses are admitted at
//! progressively cheaper rungs; past the last threshold they are shed
//! outright with a retry hint. The queue can therefore never grow past
//! its bound — overload degrades answers first and availability last,
//! instead of growing an unbounded backlog (the failure shape the
//! paper's corpus keeps finding under load).

use lfm_sim::DegradeLevel;

/// Default client backoff hint attached to shed responses, in
/// milliseconds.
pub const RETRY_AFTER_MS: u64 = 25;

/// What the controller decided for one incoming miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Admit, exploring at the given rung.
    Accept(DegradeLevel),
    /// Refuse: the caller should answer `shed` with this retry hint.
    Shed {
        /// Backoff hint in milliseconds.
        retry_after_ms: u64,
    },
}

/// Maps queue depth to a degrade level (or a shed decision).
#[derive(Debug, Clone, Copy)]
pub struct AdmissionLadder {
    /// Depths strictly below this run exhaustive.
    pub exhaustive_below: usize,
    /// Depths strictly below this run sleep-set.
    pub sleep_below: usize,
    /// Depths strictly below this run preemption-bounded.
    pub bounded_below: usize,
    /// Depths strictly below this run PCT; at or past it, shed.
    pub shed_at: usize,
}

impl AdmissionLadder {
    /// A ladder for a worker queue of capacity `queue_cap`: the four
    /// rungs split the depth range evenly, and shedding starts exactly
    /// when the queue is full.
    pub fn for_queue(queue_cap: usize) -> AdmissionLadder {
        let cap = queue_cap.max(4);
        AdmissionLadder {
            exhaustive_below: cap / 4,
            sleep_below: cap / 2,
            bounded_below: cap * 3 / 4,
            shed_at: cap,
        }
    }

    /// Decides admission for a miss arriving at queue depth `depth`.
    pub fn admit(&self, depth: usize) -> Admission {
        if depth < self.exhaustive_below {
            Admission::Accept(DegradeLevel::Exhaustive)
        } else if depth < self.sleep_below {
            Admission::Accept(DegradeLevel::SleepSet)
        } else if depth < self.bounded_below {
            Admission::Accept(DegradeLevel::PreemptionBounded)
        } else if depth < self.shed_at {
            Admission::Accept(DegradeLevel::PctSampling)
        } else {
            Admission::Shed {
                retry_after_ms: RETRY_AFTER_MS,
            }
        }
    }
}

/// Histogram index of a degrade level (for per-level counters).
pub fn level_index(level: DegradeLevel) -> usize {
    match level {
        DegradeLevel::Exhaustive => 0,
        DegradeLevel::SleepSet => 1,
        DegradeLevel::PreemptionBounded => 2,
        DegradeLevel::PctSampling => 3,
    }
}

/// The four degrade levels in histogram order.
pub const LEVELS: [DegradeLevel; 4] = [
    DegradeLevel::Exhaustive,
    DegradeLevel::SleepSet,
    DegradeLevel::PreemptionBounded,
    DegradeLevel::PctSampling,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_degrades_monotonically_and_sheds_at_capacity() {
        let ladder = AdmissionLadder::for_queue(32);
        let mut last = 0usize;
        for depth in 0..64 {
            match ladder.admit(depth) {
                Admission::Accept(level) => {
                    assert!(depth < 32, "accepted past capacity at {depth}");
                    let idx = level_index(level);
                    assert!(idx >= last, "ladder climbed back up at {depth}");
                    last = idx;
                }
                Admission::Shed { retry_after_ms } => {
                    assert!(depth >= 32, "shed below capacity at {depth}");
                    assert!(retry_after_ms > 0);
                }
            }
        }
        assert_eq!(ladder.admit(0), Admission::Accept(DegradeLevel::Exhaustive));
        assert_eq!(
            ladder.admit(31),
            Admission::Accept(DegradeLevel::PctSampling)
        );
    }

    #[test]
    fn tiny_queues_still_have_all_rungs_reachable_or_shed() {
        let ladder = AdmissionLadder::for_queue(1);
        // Clamped to 4: depth 0 exhaustive, 1 sleep, 2 bounded, 3 pct.
        assert_eq!(ladder.admit(0), Admission::Accept(DegradeLevel::Exhaustive));
        assert!(matches!(ladder.admit(4), Admission::Shed { .. }));
    }
}
