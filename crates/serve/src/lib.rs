//! # lfm-serve
//!
//! A fault-tolerant, fingerprint-keyed model-checking **service**: the
//! "millions of users" face of the reproduction. A long-running,
//! std-only JSONL-over-TCP server accepts kernel-checking requests,
//! dedups them by the lfm-trace/v1 program fingerprint, returns cached
//! reports on hit, and shards misses across a persistent explorer
//! worker pool — degrading down the PR 2 budget ladder
//! (exhaustive → sleep-set → preemption-bounded → PCT) under queue
//! pressure instead of queueing unboundedly.
//!
//! The paper's core lesson is that concurrency failures manifest under
//! load and rare timings; a service built on that corpus has no excuse
//! to fail the same way. Robustness is therefore the headline:
//!
//! - **Admission control** ([`admission`]): queue depth picks the
//!   exploration rung; past the last rung the request is *shed* with an
//!   explicit retry-after response, never queued unboundedly.
//! - **Per-request wall deadlines** reusing the `WallDeadline`
//!   truncation contract — a slow exploration is truncated and labeled,
//!   not hung.
//! - **Single-flight caching** ([`cache`]): concurrent requests for one
//!   fingerprint coalesce onto one exploration; hits are byte-identical
//!   to the fill that populated them, by construction.
//! - **Chaos proxy** ([`chaos`]): seeded deterministic network faults
//!   (drops, stalls, truncations, duplicates, mid-frame resets) in the
//!   style of `sim/fault.rs`, for testing the client/server loop under
//!   the message-level failure modes of the actor-bugs literature.
//! - **Retrying client** ([`client`]): capped, seeded decorrelated-
//!   jitter backoff; retries transport failures and sheds, never
//!   semantic errors.
//! - **Load harness** ([`load`]): a closed-loop zipf-mixed generator
//!   reporting p50/p99 latency, hit rate, shed rate, and the
//!   degrade-level histogram.
//!
//! Everything is std-only: hand-rolled framing (one JSON object per
//! line), `TcpListener`/`TcpStream`, threads and condvars.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;
pub mod cache;
pub mod chaos;
pub mod client;
pub mod level;
pub mod load;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod trace;

pub use admission::{Admission, AdmissionLadder};
pub use cache::{Lookup, ReportCache};
pub use chaos::{ChaosProxy, NetFault, NetFaultPlan, ProxyHandle, ProxyStats};
pub use client::{decorrelated_jitter, CheckReply, Client, ClientError, RetryPolicy};
pub use level::{check_at_level, CheckOutcome, LevelCaps};
pub use load::{run_load, LoadConfig, LoadReport};
pub use protocol::{
    parse_request, report_raw, Request, Response, TraceContext, SERVE_SCHEMA, STATS_SCHEMA,
};
pub use server::{
    DrainSummary, QuantileRow, ServeStats, Server, ServerConfig, ServerHandle, StatsSnapshot,
};
pub use trace::{SpanRec, Stage, Tracer, STAGES, TRACE_DUMP_SCHEMA};
