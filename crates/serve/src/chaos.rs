//! The seeded deterministic chaos proxy: `sim/fault.rs` for the wire.
//!
//! A TCP proxy in front of the server that injects the message-level
//! failure modes catalogued by the actor-bugs literature — lost
//! (dropped), delayed (stalled), duplicated, and corrupted-in-transit
//! (truncated / mid-frame reset) messages. Every decision is a pure
//! `splitmix64` function of `(seed, fault kind, connection index)`,
//! exactly the `FaultPlan::fires` discipline: same seed, same faults,
//! forever — which is what makes chaos runs replayable and the
//! contract tests meaningful.
//!
//! The proxy is transparent to correctness by construction: it never
//! rewrites bytes, it only drops, delays, duplicates, or cuts them.
//! A client behind it sees transport failures; what it must **never**
//! see is a wrong answer.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use lfm_obs::Counter;
use lfm_sim::splitmix64;

/// The network fault kinds the proxy can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Close the client connection immediately; the request is lost.
    DropConn,
    /// Hold the request for `stall_ms` before forwarding.
    StallConn,
    /// Forward the request twice on two upstream connections
    /// (a duplicated message; the server must stay idempotent).
    DupRequest,
    /// Forward the response but cut it at half its bytes.
    TruncateResponse,
    /// Cut the response inside its first few bytes (a reset mid-frame).
    MidFrameReset,
}

impl NetFault {
    /// All kinds, in salt order.
    pub const ALL: [NetFault; 5] = [
        NetFault::DropConn,
        NetFault::StallConn,
        NetFault::DupRequest,
        NetFault::TruncateResponse,
        NetFault::MidFrameReset,
    ];

    fn salt(self) -> u64 {
        match self {
            NetFault::DropConn => 0x11,
            NetFault::StallConn => 0x22,
            NetFault::DupRequest => 0x33,
            NetFault::TruncateResponse => 0x44,
            NetFault::MidFrameReset => 0x55,
        }
    }
}

/// Seeded per-connection fault probabilities (percent, like
/// `FaultPlan`).
#[derive(Debug, Clone, Copy)]
pub struct NetFaultPlan {
    /// Seed for every decision.
    pub seed: u64,
    /// Probability of dropping a connection outright.
    pub drop_pct: u8,
    /// Probability of stalling a request.
    pub stall_pct: u8,
    /// Probability of duplicating a request.
    pub dup_pct: u8,
    /// Probability of truncating a response at half its bytes.
    pub truncate_pct: u8,
    /// Probability of resetting inside the response's first bytes.
    pub reset_pct: u8,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
}

impl NetFaultPlan {
    /// Moderate defaults: roughly one connection in two experiences
    /// some fault.
    pub fn new(seed: u64) -> NetFaultPlan {
        NetFaultPlan {
            seed,
            drop_pct: 10,
            stall_pct: 15,
            dup_pct: 10,
            truncate_pct: 10,
            reset_pct: 5,
            stall_ms: 20,
        }
    }

    /// Whether `kind` fires for proxy connection number `conn`.
    /// Pure: same inputs, same answer, forever.
    pub fn fires(&self, kind: NetFault, conn: u64) -> bool {
        let pct = match kind {
            NetFault::DropConn => self.drop_pct,
            NetFault::StallConn => self.stall_pct,
            NetFault::DupRequest => self.dup_pct,
            NetFault::TruncateResponse => self.truncate_pct,
            NetFault::MidFrameReset => self.reset_pct,
        };
        if pct == 0 {
            return false;
        }
        let mut h = splitmix64(self.seed ^ kind.salt());
        h = splitmix64(h ^ conn);
        (h % 100) < u64::from(pct)
    }
}

/// Counters of injected faults, in [`NetFault::ALL`] order.
#[derive(Debug, Default)]
pub struct ProxyStats {
    /// Injections per fault kind.
    pub injected: [Counter; 5],
    /// Connections proxied (faulted or not).
    pub connections: Counter,
}

impl ProxyStats {
    /// Total faults injected.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().map(Counter::get).sum()
    }
}

/// The running proxy.
#[derive(Debug)]
pub struct ProxyHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stats: Arc<ProxyStats>,
    accept: Option<JoinHandle<()>>,
}

impl ProxyHandle {
    /// The proxy's listen address — point clients here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Fault counters.
    pub fn stats(&self) -> Arc<ProxyStats> {
        Arc::clone(&self.stats)
    }

    /// Stops accepting and joins the accept loop. In-flight proxied
    /// connections finish on their own detached threads.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

/// Constructor namespace for the proxy.
#[derive(Debug)]
pub struct ChaosProxy;

impl ChaosProxy {
    /// Binds a fresh local port and proxies every connection to
    /// `upstream`, injecting `plan`'s faults.
    pub fn start(plan: NetFaultPlan, upstream: SocketAddr) -> std::io::Result<ProxyHandle> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ProxyStats::default());
        let accept_stop = Arc::clone(&stop);
        let accept_stats = Arc::clone(&stats);
        let conn_index = Arc::new(AtomicU64::new(0));
        let accept = std::thread::Builder::new()
            .name("lfm-chaos-proxy".to_owned())
            .spawn(move || loop {
                let stream = match listener.accept() {
                    Ok((stream, _)) => stream,
                    Err(_) => {
                        if accept_stop.load(Ordering::SeqCst) {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(10));
                        continue;
                    }
                };
                if accept_stop.load(Ordering::SeqCst) {
                    return;
                }
                let conn = conn_index.fetch_add(1, Ordering::SeqCst);
                let stats = Arc::clone(&accept_stats);
                let _ = std::thread::Builder::new()
                    .name("lfm-chaos-conn".to_owned())
                    .spawn(move || proxy_conn(stream, upstream, plan, conn, &stats));
            })
            .expect("spawn proxy accept thread");
        Ok(ProxyHandle {
            addr,
            stop,
            stats,
            accept: Some(accept),
        })
    }
}

/// Proxies one client connection: one request line in, one response
/// line out, with the connection's deterministic faults applied.
fn proxy_conn(
    client: TcpStream,
    upstream: SocketAddr,
    plan: NetFaultPlan,
    conn: u64,
    stats: &ProxyStats,
) {
    stats.connections.inc();
    let _ = client.set_read_timeout(Some(Duration::from_secs(30)));
    if plan.fires(NetFault::DropConn, conn) {
        stats.injected[0].inc();
        return; // Dropped: the client sees an immediate close.
    }
    let mut writer = match client.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(client);
    let mut request = String::new();
    match reader.read_line(&mut request) {
        Ok(0) | Err(_) => return,
        Ok(_) => {}
    }
    if plan.fires(NetFault::StallConn, conn) {
        stats.injected[1].inc();
        std::thread::sleep(Duration::from_millis(plan.stall_ms));
    }
    if plan.fires(NetFault::DupRequest, conn) {
        stats.injected[2].inc();
        // The duplicate rides its own upstream connection; its
        // response is read and discarded. The server must treat the
        // repeat as just another (cache-absorbed) request.
        if let Ok(response) = forward(&request, upstream) {
            let _ = response;
        }
    }
    let response = match forward(&request, upstream) {
        Ok(response) => response,
        Err(_) => return, // Upstream gone: client sees a close.
    };
    let bytes = response.as_bytes();
    if plan.fires(NetFault::MidFrameReset, conn) {
        stats.injected[4].inc();
        let cut = bytes.len().min(3);
        let _ = writer.write_all(&bytes[..cut]);
        return; // Closed inside the frame header.
    }
    if plan.fires(NetFault::TruncateResponse, conn) {
        stats.injected[3].inc();
        let cut = bytes.len() / 2;
        let _ = writer.write_all(&bytes[..cut]);
        return; // Closed mid-frame, newline never sent.
    }
    let _ = writer
        .write_all(bytes)
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush());
}

/// One upstream round trip: send the request line, read one response
/// line (without its newline).
fn forward(request: &str, upstream: SocketAddr) -> std::io::Result<String> {
    let stream = TcpStream::connect_timeout(&upstream, Duration::from_secs(10))?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    let mut writer = stream.try_clone()?;
    writer.write_all(request.as_bytes())?;
    if !request.ends_with('\n') {
        writer.write_all(b"\n")?;
    }
    writer.flush()?;
    let mut reader = BufReader::new(stream);
    let mut response = String::new();
    let n = reader.read_line(&mut response)?;
    if n == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "upstream closed",
        ));
    }
    Ok(response.trim_end_matches('\n').to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let plan = NetFaultPlan::new(42);
        let again = NetFaultPlan::new(42);
        let other = NetFaultPlan::new(43);
        let mut diverged = false;
        for conn in 0..512 {
            for kind in NetFault::ALL {
                assert_eq!(plan.fires(kind, conn), again.fires(kind, conn));
                diverged |= plan.fires(kind, conn) != other.fires(kind, conn);
            }
        }
        assert!(diverged, "seeds 42 and 43 never diverged in 512 conns");
    }

    #[test]
    fn fault_rates_are_roughly_calibrated() {
        let plan = NetFaultPlan::new(7);
        let conns = 2_000u64;
        let drops = (0..conns)
            .filter(|&c| plan.fires(NetFault::DropConn, c))
            .count() as f64;
        let rate = drops / conns as f64;
        assert!(
            (0.05..=0.15).contains(&rate),
            "drop rate {rate} far from 10%"
        );
    }

    #[test]
    fn zero_percent_never_fires() {
        let plan = NetFaultPlan {
            drop_pct: 0,
            stall_pct: 0,
            dup_pct: 0,
            truncate_pct: 0,
            reset_pct: 0,
            ..NetFaultPlan::new(3)
        };
        for conn in 0..256 {
            for kind in NetFault::ALL {
                assert!(!plan.fires(kind, conn));
            }
        }
    }
}
