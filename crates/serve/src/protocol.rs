//! The lfm-serve/v1 wire protocol: one JSON object per line, both ways.
//!
//! Requests name a kernel and variant; the server answers with a
//! `status` of `ok` (carrying a canonical report object), `shed`
//! (explicit load-shedding with a retry hint), `error` (semantic
//! failure — never retried), `pong`, or `bye`.
//!
//! Determinism contract: the `report` object is rendered once, by the
//! worker that explored the miss, from deterministic report fields only
//! (no wall times, no host state) and cached verbatim. A cache hit
//! replays those exact bytes, so hit and originating miss are
//! byte-identical — [`report_raw`] exists so tests can assert that
//! without re-parsing. The `cache` marker lives *outside* the report
//! object for the same reason.

use lfm_obs::json::{self, Json};
use lfm_sim::Truncation;

use crate::level::CheckOutcome;

/// Schema tag carried by every request and response line.
pub const SERVE_SCHEMA: &str = "lfm-serve/v1";

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Model-check one kernel variant.
    Check {
        /// Kernel id from the registry (e.g. `ww_double_free`).
        kernel: String,
        /// Variant selector: `buggy` or a fix slug (see
        /// [`parse_variant`]).
        variant: String,
        /// Optional per-request wall deadline in milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Liveness probe.
    Ping,
    /// Graceful shutdown: stop accepting, drain, exit.
    Shutdown,
}

/// Renders a [`Request`] as its wire line (no trailing newline).
pub fn render_request(request: &Request) -> String {
    match request {
        Request::Check {
            kernel,
            variant,
            deadline_ms,
        } => {
            let mut line = format!(
                "{{\"schema\":{},\"op\":\"check\",\"kernel\":{},\"variant\":{}",
                json::quote(SERVE_SCHEMA),
                json::quote(kernel),
                json::quote(variant)
            );
            if let Some(ms) = deadline_ms {
                line.push_str(&format!(",\"deadline_ms\":{ms}"));
            }
            line.push('}');
            line
        }
        Request::Ping => format!(
            "{{\"schema\":{},\"op\":\"ping\"}}",
            json::quote(SERVE_SCHEMA)
        ),
        Request::Shutdown => format!(
            "{{\"schema\":{},\"op\":\"shutdown\"}}",
            json::quote(SERVE_SCHEMA)
        ),
    }
}

/// Parses one request line. Unknown ops, missing fields, or a foreign
/// schema tag are errors — the server answers them with `status:error`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != SERVE_SCHEMA {
        return Err(format!("schema must be {SERVE_SCHEMA:?}, got {schema:?}"));
    }
    match doc.get("op").and_then(Json::as_str) {
        Some("check") => {
            let kernel = doc
                .get("kernel")
                .and_then(Json::as_str)
                .ok_or("check needs a string `kernel`")?
                .to_owned();
            let variant = doc
                .get("variant")
                .and_then(Json::as_str)
                .unwrap_or("buggy")
                .to_owned();
            let deadline_ms = doc.get("deadline_ms").and_then(Json::as_u64);
            Ok(Request::Check {
                kernel,
                variant,
                deadline_ms,
            })
        }
        Some("ping") => Ok(Request::Ping),
        Some("shutdown") => Ok(Request::Shutdown),
        Some(op) => Err(format!("unknown op {op:?}")),
        None => Err("missing `op`".to_owned()),
    }
}

/// A parsed server response (the client-side view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A completed check; `report` holds the canonical report object's
    /// raw bytes exactly as sent.
    Ok {
        /// `true` when the report came from the fingerprint cache.
        cache_hit: bool,
        /// Raw bytes of the `report` JSON object.
        report: String,
    },
    /// The server refused the request under load; retry later.
    Shed {
        /// Why: `admission`, `queue-full`, `busy`, `connections`, or
        /// `draining`.
        reason: String,
        /// Client backoff hint in milliseconds.
        retry_after_ms: u64,
    },
    /// Semantic failure (unknown kernel, bad request). Not retryable.
    Error {
        /// Human-readable cause.
        reason: String,
    },
    /// Answer to `ping`.
    Pong,
    /// Answer to `shutdown`: the server is draining.
    Bye,
}

/// Renders the `ok` response line around pre-rendered report bytes.
/// The report object is the **last** field so that [`report_raw`] can
/// recover its exact bytes without a parser.
pub fn render_ok(cache_hit: bool, report: &str) -> String {
    format!(
        "{{\"schema\":{},\"status\":\"ok\",\"cache\":\"{}\",\"report\":{}}}",
        json::quote(SERVE_SCHEMA),
        if cache_hit { "hit" } else { "miss" },
        report
    )
}

/// Renders a `shed` response line.
pub fn render_shed(reason: &str, retry_after_ms: u64) -> String {
    format!(
        "{{\"schema\":{},\"status\":\"shed\",\"reason\":{},\"retry_after_ms\":{}}}",
        json::quote(SERVE_SCHEMA),
        json::quote(reason),
        retry_after_ms
    )
}

/// Renders an `error` response line.
pub fn render_error(reason: &str) -> String {
    format!(
        "{{\"schema\":{},\"status\":\"error\",\"reason\":{}}}",
        json::quote(SERVE_SCHEMA),
        json::quote(reason)
    )
}

/// Renders the `pong` response line.
pub fn render_pong() -> String {
    format!(
        "{{\"schema\":{},\"status\":\"pong\"}}",
        json::quote(SERVE_SCHEMA)
    )
}

/// Renders the `bye` response line.
pub fn render_bye() -> String {
    format!(
        "{{\"schema\":{},\"status\":\"bye\"}}",
        json::quote(SERVE_SCHEMA)
    )
}

/// Extracts the raw bytes of the `report` object from an `ok` response
/// line, without parsing. Relies on [`render_ok`] placing the report
/// last; used by the chaos contract tests to assert hit/miss
/// byte-identity.
pub fn report_raw(line: &str) -> Option<&str> {
    let start = line.find("\"report\":")? + "\"report\":".len();
    let line = line.trim_end();
    if !line.ends_with('}') || start >= line.len() {
        return None;
    }
    Some(&line[start..line.len() - 1])
}

/// Parses one response line into a [`Response`].
pub fn parse_response(line: &str) -> Result<Response, String> {
    let doc = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != SERVE_SCHEMA {
        return Err(format!("schema must be {SERVE_SCHEMA:?}, got {schema:?}"));
    }
    match doc.get("status").and_then(Json::as_str) {
        Some("ok") => {
            let cache_hit = match doc.get("cache").and_then(Json::as_str) {
                Some("hit") => true,
                Some("miss") => false,
                other => return Err(format!("bad cache marker {other:?}")),
            };
            let report = report_raw(line).ok_or("ok response without report bytes")?;
            // Cross-check that the raw slice is well-formed JSON.
            Json::parse(report).map_err(|e| format!("bad report object: {e}"))?;
            Ok(Response::Ok {
                cache_hit,
                report: report.to_owned(),
            })
        }
        Some("shed") => Ok(Response::Shed {
            reason: doc
                .get("reason")
                .and_then(Json::as_str)
                .unwrap_or("unspecified")
                .to_owned(),
            retry_after_ms: doc
                .get("retry_after_ms")
                .and_then(Json::as_u64)
                .unwrap_or(25),
        }),
        Some("error") => Ok(Response::Error {
            reason: doc
                .get("reason")
                .and_then(Json::as_str)
                .unwrap_or("unspecified")
                .to_owned(),
        }),
        Some("pong") => Ok(Response::Pong),
        Some("bye") => Ok(Response::Bye),
        other => Err(format!("unknown status {other:?}")),
    }
}

/// Renders the canonical report object for one completed check.
///
/// Every field is a deterministic function of the program and the
/// exploration parameters — counts, level, confidence, truncation —
/// and **never** wall-clock time, so the bytes are stable across runs
/// and safe to cache and replay as hits.
pub fn render_report(kernel: &str, variant: &str, fingerprint: u64, out: &CheckOutcome) -> String {
    let truncation = match out.truncation {
        None => "null".to_owned(),
        Some(t) => json::quote(&truncation_tag(t)),
    };
    let first_failure = match &out.first_failure {
        None => "null".to_owned(),
        Some(text) => json::quote(text),
    };
    format!(
        concat!(
            "{{\"kernel\":{},\"variant\":{},\"fingerprint\":\"{:016x}\",",
            "\"level\":\"{}\",\"confidence\":\"{}\",\"truncation\":{},",
            "\"schedules\":{},\"counts\":{{\"ok\":{},\"assert\":{},\"deadlock\":{},",
            "\"step_limit\":{},\"tx_retry\":{},\"misuse\":{}}},\"failures\":{},",
            "\"first_failure\":{}}}"
        ),
        json::quote(kernel),
        json::quote(variant),
        fingerprint,
        out.level,
        out.confidence,
        truncation,
        out.schedules,
        out.counts.ok,
        out.counts.assert_failed,
        out.counts.deadlock,
        out.counts.step_limit,
        out.counts.tx_retry_limit,
        out.counts.misuse,
        out.counts.failures(),
        first_failure
    )
}

fn truncation_tag(t: Truncation) -> String {
    match t {
        Truncation::ScheduleBudget => "schedule-budget",
        Truncation::StepBudget => "step-budget",
        Truncation::PreemptionBound => "preemption-bound",
        Truncation::WallDeadline => "wall-deadline",
    }
    .to_owned()
}

/// Stable wire slug for a kernel variant.
pub fn variant_slug(variant: lfm_kernels::Variant) -> &'static str {
    use lfm_kernels::{FixKind, Variant};
    match variant {
        Variant::Buggy => "buggy",
        Variant::Fixed(FixKind::Lock) => "lock",
        Variant::Fixed(FixKind::Atomic) => "atomic",
        Variant::Fixed(FixKind::CondCheck) => "cond-check",
        Variant::Fixed(FixKind::CodeSwitch) => "code-switch",
        Variant::Fixed(FixKind::Design) => "design",
        Variant::Fixed(FixKind::AddSync) => "add-sync",
        Variant::Fixed(FixKind::Transaction) => "transaction",
        Variant::Fixed(FixKind::GiveUp) => "give-up",
        Variant::Fixed(FixKind::AcquireInOrder) => "acquire-in-order",
        Variant::Fixed(FixKind::Split) => "split",
    }
}

/// Parses a wire slug back into a kernel variant.
pub fn parse_variant(slug: &str) -> Option<lfm_kernels::Variant> {
    use lfm_kernels::{FixKind, Variant};
    Some(match slug {
        "buggy" => Variant::Buggy,
        "lock" => Variant::Fixed(FixKind::Lock),
        "atomic" => Variant::Fixed(FixKind::Atomic),
        "cond-check" => Variant::Fixed(FixKind::CondCheck),
        "code-switch" => Variant::Fixed(FixKind::CodeSwitch),
        "design" => Variant::Fixed(FixKind::Design),
        "add-sync" => Variant::Fixed(FixKind::AddSync),
        "transaction" => Variant::Fixed(FixKind::Transaction),
        "give-up" => Variant::Fixed(FixKind::GiveUp),
        "acquire-in-order" => Variant::Fixed(FixKind::AcquireInOrder),
        "split" => Variant::Fixed(FixKind::Split),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        for request in [
            Request::Check {
                kernel: "abba".to_owned(),
                variant: "acquire-in-order".to_owned(),
                deadline_ms: Some(250),
            },
            Request::Check {
                kernel: "toctou_flag".to_owned(),
                variant: "buggy".to_owned(),
                deadline_ms: None,
            },
            Request::Ping,
            Request::Shutdown,
        ] {
            let line = render_request(&request);
            assert_eq!(parse_request(&line).unwrap(), request);
        }
    }

    #[test]
    fn foreign_schema_and_bad_ops_are_rejected() {
        assert!(parse_request("{\"schema\":\"lfm-serve/v2\",\"op\":\"ping\"}").is_err());
        assert!(parse_request("{\"schema\":\"lfm-serve/v1\",\"op\":\"fry\"}").is_err());
        assert!(parse_request("{\"schema\":\"lfm-serve/v1\"}").is_err());
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"schema\":\"lfm-serve/v1\",\"op\":\"check\"}").is_err());
    }

    #[test]
    fn report_raw_recovers_exact_bytes() {
        let report = "{\"kernel\":\"x\",\"nested\":{\"a\":1}}";
        let hit = render_ok(true, report);
        let miss = render_ok(false, report);
        assert_eq!(report_raw(&hit), Some(report));
        assert_eq!(report_raw(&miss), Some(report));
        assert_ne!(hit, miss, "cache marker must differ outside the report");
    }

    #[test]
    fn response_round_trips() {
        let ok = render_ok(false, "{\"kernel\":\"abba\"}");
        match parse_response(&ok).unwrap() {
            Response::Ok { cache_hit, report } => {
                assert!(!cache_hit);
                assert_eq!(report, "{\"kernel\":\"abba\"}");
            }
            other => panic!("unexpected: {other:?}"),
        }
        match parse_response(&render_shed("queue-full", 40)).unwrap() {
            Response::Shed {
                reason,
                retry_after_ms,
            } => {
                assert_eq!(reason, "queue-full");
                assert_eq!(retry_after_ms, 40);
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(parse_response(&render_pong()).unwrap(), Response::Pong);
        assert_eq!(parse_response(&render_bye()).unwrap(), Response::Bye);
        match parse_response(&render_error("unknown kernel")).unwrap() {
            Response::Error { reason } => assert_eq!(reason, "unknown kernel"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn truncated_ok_lines_fail_to_parse() {
        let line = render_ok(false, "{\"kernel\":\"abba\",\"counts\":{\"ok\":3}}");
        // Every strict prefix must be rejected, not half-understood —
        // this is what makes chaos truncation safe for the client.
        for cut in 1..line.len() {
            assert!(
                parse_response(&line[..cut]).is_err(),
                "prefix of len {cut} parsed"
            );
        }
    }

    #[test]
    fn variant_slugs_round_trip() {
        use lfm_kernels::{FixKind, Variant};
        let all = [
            Variant::Buggy,
            Variant::Fixed(FixKind::Lock),
            Variant::Fixed(FixKind::Atomic),
            Variant::Fixed(FixKind::CondCheck),
            Variant::Fixed(FixKind::CodeSwitch),
            Variant::Fixed(FixKind::Design),
            Variant::Fixed(FixKind::AddSync),
            Variant::Fixed(FixKind::Transaction),
            Variant::Fixed(FixKind::GiveUp),
            Variant::Fixed(FixKind::AcquireInOrder),
            Variant::Fixed(FixKind::Split),
        ];
        for v in all {
            assert_eq!(parse_variant(variant_slug(v)), Some(v));
        }
        assert_eq!(parse_variant("nope"), None);
    }
}
