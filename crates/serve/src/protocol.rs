//! The lfm-serve/v1 wire protocol: one JSON object per line, both ways.
//!
//! Requests name a kernel and variant; the server answers with a
//! `status` of `ok` (carrying a canonical report object), `shed`
//! (explicit load-shedding with a retry hint), `error` (semantic
//! failure — never retried), `pong`, or `bye`.
//!
//! Determinism contract: the `report` object is rendered once, by the
//! worker that explored the miss, from deterministic report fields only
//! (no wall times, no host state) and cached verbatim. A cache hit
//! replays those exact bytes, so hit and originating miss are
//! byte-identical — [`report_raw`] exists so tests can assert that
//! without re-parsing. The `cache` marker lives *outside* the report
//! object for the same reason.

use lfm_obs::json::{self, Json};
use lfm_sim::{splitmix64, Truncation};

use crate::level::CheckOutcome;

/// Schema tag carried by every request and response line.
pub const SERVE_SCHEMA: &str = "lfm-serve/v1";

/// Schema tag of the `stats` snapshot reply (see
/// [`StatsSnapshot`](crate::server::StatsSnapshot)).
pub const STATS_SCHEMA: &str = "lfm-serve-stats/v1";

/// A request-scoped trace identity, minted by the client and echoed
/// verbatim by the server on every reply to that request.
///
/// Both ids are deterministic `splitmix64` mixes of a client seed and
/// a per-client request sequence number — no wall clock, no host
/// entropy — so chaos contract runs reproduce the same ids forever.
/// On the wire they ride as *optional* `trace_id`/`span_id` fields
/// (16-hex-digit strings, like fingerprints); servers and clients that
/// predate them ignore unknown fields, which is the whole
/// backward-compatibility story.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Identity of the whole request (stable across transport retries).
    pub trace_id: u64,
    /// Identity of this attempt's root span.
    pub span_id: u64,
}

impl TraceContext {
    /// Mints the deterministic context for request number `seq` of the
    /// client seeded with `seed`.
    pub fn mint(seed: u64, seq: u64) -> TraceContext {
        let trace_id = splitmix64(seed ^ splitmix64(seq ^ 0x007A_CE1D));
        TraceContext {
            trace_id,
            span_id: splitmix64(trace_id),
        }
    }

    fn render_fields(self, line: &mut String) {
        line.push_str(&format!(
            ",\"trace_id\":\"{:016x}\",\"span_id\":\"{:016x}\"",
            self.trace_id, self.span_id
        ));
    }
}

fn parse_hex_u64(doc: &Json, key: &str) -> Option<u64> {
    doc.get(key)
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
}

/// Extracts the optional trace context from a parsed frame.
fn parse_trace(doc: &Json) -> Option<TraceContext> {
    let trace_id = parse_hex_u64(doc, "trace_id")?;
    let span_id = parse_hex_u64(doc, "span_id")?;
    Some(TraceContext { trace_id, span_id })
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Model-check one kernel variant.
    Check {
        /// Kernel id from the registry (e.g. `ww_double_free`).
        kernel: String,
        /// Variant selector: `buggy` or a fix slug (see
        /// [`parse_variant`]).
        variant: String,
        /// Optional per-request wall deadline in milliseconds.
        deadline_ms: Option<u64>,
        /// Optional client-minted trace identity, echoed on the reply.
        trace: Option<TraceContext>,
    },
    /// Rolling-window service snapshot (`lfm-serve-stats/v1` reply).
    Stats,
    /// Liveness probe.
    Ping,
    /// Graceful shutdown: stop accepting, drain, exit.
    Shutdown,
}

/// Renders a [`Request`] as its wire line (no trailing newline).
pub fn render_request(request: &Request) -> String {
    match request {
        Request::Check {
            kernel,
            variant,
            deadline_ms,
            trace,
        } => {
            let mut line = format!(
                "{{\"schema\":{},\"op\":\"check\",\"kernel\":{},\"variant\":{}",
                json::quote(SERVE_SCHEMA),
                json::quote(kernel),
                json::quote(variant)
            );
            if let Some(ms) = deadline_ms {
                line.push_str(&format!(",\"deadline_ms\":{ms}"));
            }
            if let Some(trace) = trace {
                trace.render_fields(&mut line);
            }
            line.push('}');
            line
        }
        Request::Stats => format!(
            "{{\"schema\":{},\"op\":\"stats\"}}",
            json::quote(SERVE_SCHEMA)
        ),
        Request::Ping => format!(
            "{{\"schema\":{},\"op\":\"ping\"}}",
            json::quote(SERVE_SCHEMA)
        ),
        Request::Shutdown => format!(
            "{{\"schema\":{},\"op\":\"shutdown\"}}",
            json::quote(SERVE_SCHEMA)
        ),
    }
}

/// Parses one request line. Unknown ops, missing fields, or a foreign
/// schema tag are errors — the server answers them with `status:error`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != SERVE_SCHEMA {
        return Err(format!("schema must be {SERVE_SCHEMA:?}, got {schema:?}"));
    }
    match doc.get("op").and_then(Json::as_str) {
        Some("check") => {
            let kernel = doc
                .get("kernel")
                .and_then(Json::as_str)
                .ok_or("check needs a string `kernel`")?
                .to_owned();
            let variant = doc
                .get("variant")
                .and_then(Json::as_str)
                .unwrap_or("buggy")
                .to_owned();
            let deadline_ms = doc.get("deadline_ms").and_then(Json::as_u64);
            Ok(Request::Check {
                kernel,
                variant,
                deadline_ms,
                trace: parse_trace(&doc),
            })
        }
        Some("stats") => Ok(Request::Stats),
        Some("ping") => Ok(Request::Ping),
        Some("shutdown") => Ok(Request::Shutdown),
        Some(op) => Err(format!("unknown op {op:?}")),
        None => Err("missing `op`".to_owned()),
    }
}

/// A parsed server response (the client-side view).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// A completed check; `report` holds the canonical report object's
    /// raw bytes exactly as sent.
    Ok {
        /// `true` when the report came from the fingerprint cache.
        cache_hit: bool,
        /// Raw bytes of the `report` JSON object.
        report: String,
    },
    /// The server refused the request under load; retry later.
    Shed {
        /// Why: `admission`, `queue-full`, `busy`, `connections`, or
        /// `draining`.
        reason: String,
        /// Client backoff hint in milliseconds.
        retry_after_ms: u64,
    },
    /// Semantic failure (unknown kernel, bad request). Not retryable.
    Error {
        /// Human-readable cause.
        reason: String,
    },
    /// Answer to `ping`.
    Pong,
    /// Answer to `shutdown`: the server is draining.
    Bye,
}

/// Renders the `ok` response line around pre-rendered report bytes.
/// The report object is the **last** field so that [`report_raw`] can
/// recover its exact bytes without a parser; the trace echo (when the
/// *request* carried one) therefore renders before it. The echo is a
/// pure function of the request — never of server tracing config —
/// which is what keeps replies byte-identical with tracing on or off.
pub fn render_ok(cache_hit: bool, trace: Option<TraceContext>, report: &str) -> String {
    let mut line = format!(
        "{{\"schema\":{},\"status\":\"ok\",\"cache\":\"{}\"",
        json::quote(SERVE_SCHEMA),
        if cache_hit { "hit" } else { "miss" },
    );
    if let Some(trace) = trace {
        trace.render_fields(&mut line);
    }
    line.push_str(&format!(",\"report\":{report}}}"));
    line
}

/// Renders a `shed` response line (trace echo rules as [`render_ok`]).
pub fn render_shed(reason: &str, retry_after_ms: u64, trace: Option<TraceContext>) -> String {
    let mut line = format!(
        "{{\"schema\":{},\"status\":\"shed\",\"reason\":{},\"retry_after_ms\":{}",
        json::quote(SERVE_SCHEMA),
        json::quote(reason),
        retry_after_ms
    );
    if let Some(trace) = trace {
        trace.render_fields(&mut line);
    }
    line.push('}');
    line
}

/// Renders an `error` response line (trace echo rules as [`render_ok`]).
pub fn render_error(reason: &str, trace: Option<TraceContext>) -> String {
    let mut line = format!(
        "{{\"schema\":{},\"status\":\"error\",\"reason\":{}",
        json::quote(SERVE_SCHEMA),
        json::quote(reason)
    );
    if let Some(trace) = trace {
        trace.render_fields(&mut line);
    }
    line.push('}');
    line
}

/// Renders the `pong` response line.
pub fn render_pong() -> String {
    format!(
        "{{\"schema\":{},\"status\":\"pong\"}}",
        json::quote(SERVE_SCHEMA)
    )
}

/// Renders the `bye` response line.
pub fn render_bye() -> String {
    format!(
        "{{\"schema\":{},\"status\":\"bye\"}}",
        json::quote(SERVE_SCHEMA)
    )
}

/// Extracts the raw bytes of the `report` object from an `ok` response
/// line, without parsing. Relies on [`render_ok`] placing the report
/// last; used by the chaos contract tests to assert hit/miss
/// byte-identity.
pub fn report_raw(line: &str) -> Option<&str> {
    let start = line.find("\"report\":")? + "\"report\":".len();
    let line = line.trim_end();
    if !line.ends_with('}') || start >= line.len() {
        return None;
    }
    Some(&line[start..line.len() - 1])
}

/// Parses one response line into a [`Response`].
pub fn parse_response(line: &str) -> Result<Response, String> {
    let doc = Json::parse(line).map_err(|e| format!("bad JSON: {e}"))?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != SERVE_SCHEMA {
        return Err(format!("schema must be {SERVE_SCHEMA:?}, got {schema:?}"));
    }
    match doc.get("status").and_then(Json::as_str) {
        Some("ok") => {
            let cache_hit = match doc.get("cache").and_then(Json::as_str) {
                Some("hit") => true,
                Some("miss") => false,
                other => return Err(format!("bad cache marker {other:?}")),
            };
            let report = report_raw(line).ok_or("ok response without report bytes")?;
            // Cross-check that the raw slice is well-formed JSON.
            Json::parse(report).map_err(|e| format!("bad report object: {e}"))?;
            Ok(Response::Ok {
                cache_hit,
                report: report.to_owned(),
            })
        }
        Some("shed") => Ok(Response::Shed {
            reason: doc
                .get("reason")
                .and_then(Json::as_str)
                .unwrap_or("unspecified")
                .to_owned(),
            retry_after_ms: doc
                .get("retry_after_ms")
                .and_then(Json::as_u64)
                .unwrap_or(25),
        }),
        Some("error") => Ok(Response::Error {
            reason: doc
                .get("reason")
                .and_then(Json::as_str)
                .unwrap_or("unspecified")
                .to_owned(),
        }),
        Some("pong") => Ok(Response::Pong),
        Some("bye") => Ok(Response::Bye),
        other => Err(format!("unknown status {other:?}")),
    }
}

/// Renders the canonical report object for one completed check.
///
/// Every field is a deterministic function of the program and the
/// exploration parameters — counts, level, confidence, truncation —
/// and **never** wall-clock time, so the bytes are stable across runs
/// and safe to cache and replay as hits.
pub fn render_report(kernel: &str, variant: &str, fingerprint: u64, out: &CheckOutcome) -> String {
    let truncation = match out.truncation {
        None => "null".to_owned(),
        Some(t) => json::quote(&truncation_tag(t)),
    };
    let first_failure = match &out.first_failure {
        None => "null".to_owned(),
        Some(text) => json::quote(text),
    };
    format!(
        concat!(
            "{{\"kernel\":{},\"variant\":{},\"fingerprint\":\"{:016x}\",",
            "\"level\":\"{}\",\"confidence\":\"{}\",\"truncation\":{},",
            "\"schedules\":{},\"counts\":{{\"ok\":{},\"assert\":{},\"deadlock\":{},",
            "\"step_limit\":{},\"tx_retry\":{},\"misuse\":{}}},\"failures\":{},",
            "\"first_failure\":{}}}"
        ),
        json::quote(kernel),
        json::quote(variant),
        fingerprint,
        out.level,
        out.confidence,
        truncation,
        out.schedules,
        out.counts.ok,
        out.counts.assert_failed,
        out.counts.deadlock,
        out.counts.step_limit,
        out.counts.tx_retry_limit,
        out.counts.misuse,
        out.counts.failures(),
        first_failure
    )
}

fn truncation_tag(t: Truncation) -> String {
    match t {
        Truncation::ScheduleBudget => "schedule-budget",
        Truncation::StepBudget => "step-budget",
        Truncation::PreemptionBound => "preemption-bound",
        Truncation::WallDeadline => "wall-deadline",
    }
    .to_owned()
}

/// Stable wire slug for a kernel variant.
pub fn variant_slug(variant: lfm_kernels::Variant) -> &'static str {
    use lfm_kernels::{FixKind, Variant};
    match variant {
        Variant::Buggy => "buggy",
        Variant::Fixed(FixKind::Lock) => "lock",
        Variant::Fixed(FixKind::Atomic) => "atomic",
        Variant::Fixed(FixKind::CondCheck) => "cond-check",
        Variant::Fixed(FixKind::CodeSwitch) => "code-switch",
        Variant::Fixed(FixKind::Design) => "design",
        Variant::Fixed(FixKind::AddSync) => "add-sync",
        Variant::Fixed(FixKind::Transaction) => "transaction",
        Variant::Fixed(FixKind::GiveUp) => "give-up",
        Variant::Fixed(FixKind::AcquireInOrder) => "acquire-in-order",
        Variant::Fixed(FixKind::Split) => "split",
    }
}

/// Parses a wire slug back into a kernel variant.
pub fn parse_variant(slug: &str) -> Option<lfm_kernels::Variant> {
    use lfm_kernels::{FixKind, Variant};
    Some(match slug {
        "buggy" => Variant::Buggy,
        "lock" => Variant::Fixed(FixKind::Lock),
        "atomic" => Variant::Fixed(FixKind::Atomic),
        "cond-check" => Variant::Fixed(FixKind::CondCheck),
        "code-switch" => Variant::Fixed(FixKind::CodeSwitch),
        "design" => Variant::Fixed(FixKind::Design),
        "add-sync" => Variant::Fixed(FixKind::AddSync),
        "transaction" => Variant::Fixed(FixKind::Transaction),
        "give-up" => Variant::Fixed(FixKind::GiveUp),
        "acquire-in-order" => Variant::Fixed(FixKind::AcquireInOrder),
        "split" => Variant::Fixed(FixKind::Split),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        for request in [
            Request::Check {
                kernel: "abba".to_owned(),
                variant: "acquire-in-order".to_owned(),
                deadline_ms: Some(250),
                trace: None,
            },
            Request::Check {
                kernel: "toctou_flag".to_owned(),
                variant: "buggy".to_owned(),
                deadline_ms: None,
                trace: Some(TraceContext::mint(42, 7)),
            },
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ] {
            let line = render_request(&request);
            assert_eq!(parse_request(&line).unwrap(), request);
        }
    }

    #[test]
    fn trace_ids_are_deterministic_and_distinct() {
        assert_eq!(TraceContext::mint(42, 0), TraceContext::mint(42, 0));
        assert_ne!(TraceContext::mint(42, 0), TraceContext::mint(42, 1));
        assert_ne!(TraceContext::mint(42, 0), TraceContext::mint(43, 0));
        let t = TraceContext::mint(1, 2);
        assert_ne!(t.trace_id, t.span_id);
    }

    #[test]
    fn trace_fields_are_optional_and_ignored_by_old_parsers() {
        // A frame with trace fields parses on a server that knows them…
        let line = "{\"schema\":\"lfm-serve/v1\",\"op\":\"check\",\"kernel\":\"abba\",\
                    \"variant\":\"buggy\",\"trace_id\":\"00000000000000ff\",\
                    \"span_id\":\"0000000000000001\"}";
        match parse_request(line).unwrap() {
            Request::Check { trace, .. } => {
                let trace = trace.expect("trace parsed");
                assert_eq!(trace.trace_id, 0xff);
                assert_eq!(trace.span_id, 1);
            }
            other => panic!("unexpected: {other:?}"),
        }
        // …and a malformed/absent trace degrades to None, never an error.
        let line = "{\"schema\":\"lfm-serve/v1\",\"op\":\"check\",\"kernel\":\"abba\",\
                    \"trace_id\":\"not-hex\",\"span_id\":\"1\"}";
        match parse_request(line).unwrap() {
            Request::Check { trace, .. } => assert_eq!(trace, None),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn trace_echo_renders_before_the_report() {
        let trace = TraceContext::mint(3, 9);
        let line = render_ok(false, Some(trace), "{\"kernel\":\"abba\"}");
        let echo = format!("\"trace_id\":\"{:016x}\"", trace.trace_id);
        assert!(line.contains(&echo), "{line}");
        assert!(
            line.find(&echo).unwrap() < line.find("\"report\":").unwrap(),
            "echo must precede the report so report_raw stays exact: {line}"
        );
        assert_eq!(report_raw(&line), Some("{\"kernel\":\"abba\"}"));
        // Shed and error replies echo too.
        assert!(render_shed("busy", 25, Some(trace)).contains(&echo));
        assert!(render_error("bad", Some(trace)).contains(&echo));
    }

    #[test]
    fn foreign_schema_and_bad_ops_are_rejected() {
        assert!(parse_request("{\"schema\":\"lfm-serve/v2\",\"op\":\"ping\"}").is_err());
        assert!(parse_request("{\"schema\":\"lfm-serve/v1\",\"op\":\"fry\"}").is_err());
        assert!(parse_request("{\"schema\":\"lfm-serve/v1\"}").is_err());
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"schema\":\"lfm-serve/v1\",\"op\":\"check\"}").is_err());
    }

    #[test]
    fn report_raw_recovers_exact_bytes() {
        let report = "{\"kernel\":\"x\",\"nested\":{\"a\":1}}";
        let hit = render_ok(true, None, report);
        let miss = render_ok(false, None, report);
        assert_eq!(report_raw(&hit), Some(report));
        assert_eq!(report_raw(&miss), Some(report));
        assert_ne!(hit, miss, "cache marker must differ outside the report");
    }

    #[test]
    fn response_round_trips() {
        let ok = render_ok(false, None, "{\"kernel\":\"abba\"}");
        match parse_response(&ok).unwrap() {
            Response::Ok { cache_hit, report } => {
                assert!(!cache_hit);
                assert_eq!(report, "{\"kernel\":\"abba\"}");
            }
            other => panic!("unexpected: {other:?}"),
        }
        match parse_response(&render_shed("queue-full", 40, None)).unwrap() {
            Response::Shed {
                reason,
                retry_after_ms,
            } => {
                assert_eq!(reason, "queue-full");
                assert_eq!(retry_after_ms, 40);
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(parse_response(&render_pong()).unwrap(), Response::Pong);
        assert_eq!(parse_response(&render_bye()).unwrap(), Response::Bye);
        match parse_response(&render_error("unknown kernel", None)).unwrap() {
            Response::Error { reason } => assert_eq!(reason, "unknown kernel"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn truncated_ok_lines_fail_to_parse() {
        let line = render_ok(false, None, "{\"kernel\":\"abba\",\"counts\":{\"ok\":3}}");
        // Every strict prefix must be rejected, not half-understood —
        // this is what makes chaos truncation safe for the client.
        for cut in 1..line.len() {
            assert!(
                parse_response(&line[..cut]).is_err(),
                "prefix of len {cut} parsed"
            );
        }
    }

    #[test]
    fn variant_slugs_round_trip() {
        use lfm_kernels::{FixKind, Variant};
        let all = [
            Variant::Buggy,
            Variant::Fixed(FixKind::Lock),
            Variant::Fixed(FixKind::Atomic),
            Variant::Fixed(FixKind::CondCheck),
            Variant::Fixed(FixKind::CodeSwitch),
            Variant::Fixed(FixKind::Design),
            Variant::Fixed(FixKind::AddSync),
            Variant::Fixed(FixKind::Transaction),
            Variant::Fixed(FixKind::GiveUp),
            Variant::Fixed(FixKind::AcquireInOrder),
            Variant::Fixed(FixKind::Split),
        ];
        for v in all {
            assert_eq!(parse_variant(variant_slug(v)), Some(v));
        }
        assert_eq!(parse_variant("nope"), None);
    }
}
