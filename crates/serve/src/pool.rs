//! The persistent explorer worker pool and its bounded job queue.
//!
//! Workers are spawned once at server start and live until shutdown —
//! no per-request thread spawning on the exploration path. The queue
//! is strictly bounded: a full queue rejects the push and the caller
//! sheds, which together with the admission ladder is what keeps the
//! backlog finite under any load.
//!
//! A panicking exploration is contained with `catch_unwind`: the
//! worker abandons the cache claim (so waiters can reclaim), replies
//! with an error, counts the panic, and goes back to the queue. One
//! poisoned kernel never wedges a worker or the pool.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lfm_obs::{Event, Sink, Value};
use lfm_sim::{DegradeLevel, FaultPlan, Program, Truncation};

use crate::cache::ReportCache;
use crate::level::{check_at_level, LevelCaps};
use crate::protocol;
use crate::server::ServeStats;
use crate::trace::{push_span, SpanRec, Stage, Tracer};

/// One admitted check, queued for a worker.
#[derive(Debug)]
pub struct Job {
    /// Cache key (fingerprint mixed with the chaos seed).
    pub key: u64,
    /// Kernel id, echoed into the report.
    pub kernel: String,
    /// Variant slug, echoed into the report.
    pub variant: String,
    /// Program fingerprint, echoed into the report.
    pub fingerprint: u64,
    /// The program to explore.
    pub program: Program,
    /// Rung chosen by admission.
    pub level: DegradeLevel,
    /// Per-request wall budget, measured from `accepted_at`.
    pub deadline: Option<Duration>,
    /// When admission accepted the job (queue wait counts against the
    /// deadline — a deadline is a promise to the client, not to us).
    pub accepted_at: Instant,
    /// Where the connection handler waits for the outcome.
    pub reply: SyncSender<JobReply>,
}

/// What a worker hands back to the waiting connection handler: the
/// outcome plus the worker-side stage spans (queue wait, claim,
/// explore), so the handler can assemble one full request timeline
/// and decide — knowing the final total — whether to capture it.
#[derive(Debug)]
pub struct JobReply {
    /// The canonical report bytes, or the failure text.
    pub result: Result<Arc<str>, String>,
    /// Worker-side spans, `pid = 1 + worker index`. Empty when the
    /// tracer is fully inactive.
    pub spans: Vec<SpanRec>,
}

/// A bounded MPMC job queue with explicit close.
#[derive(Debug)]
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    takeable: Condvar,
    cap: usize,
}

#[derive(Debug)]
struct QueueInner {
    jobs: VecDeque<Job>,
    closed: bool,
}

impl JobQueue {
    /// An empty queue holding at most `cap` jobs.
    pub fn new(cap: usize) -> JobQueue {
        JobQueue {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            takeable: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Capacity bound.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Current depth (racy by nature; admission uses it as a signal,
    /// not an invariant — the push itself re-checks the bound).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().jobs.len()
    }

    /// `true` when no job is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues, or returns the job when the queue is full or closed —
    /// the caller sheds, it never blocks. The `Err` variant carries the
    /// whole job back on purpose: shedding must hand the rejected work
    /// to the caller, and boxing it would add an allocation to the one
    /// path that exists to stay cheap under overload.
    #[allow(clippy::result_large_err)]
    pub fn push(&self, job: Job) -> Result<(), Job> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed || inner.jobs.len() >= self.cap {
            return Err(job);
        }
        inner.jobs.push_back(job);
        self.takeable.notify_one();
        Ok(())
    }

    /// Blocks for the next job. `None` means the queue was closed and
    /// fully drained — the worker should exit. Jobs queued before the
    /// close are still handed out (that is the drain).
    pub fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.takeable.wait(inner).unwrap();
        }
    }

    /// Closes the queue: pushes fail from now on, pops drain what is
    /// left and then return `None`.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        self.takeable.notify_all();
    }
}

/// Everything a worker thread needs, bundled once at pool start.
#[derive(Debug)]
pub struct WorkerCtx {
    /// The bounded job queue workers consume.
    pub queue: Arc<JobQueue>,
    /// The single-flight report cache workers fill.
    pub cache: Arc<ReportCache>,
    /// Shared serve counters and stage histograms.
    pub stats: Arc<ServeStats>,
    /// Session event sink (job / worker_panic events).
    pub sink: Arc<dyn Sink>,
    /// Sim-layer fault plan applied to every exploration.
    pub chaos: Option<FaultPlan>,
    /// Per-rung exploration budgets.
    pub caps: LevelCaps,
    /// Request tracer (worker-side spans share its epoch).
    pub tracer: Arc<Tracer>,
}

/// The worker threads.
#[derive(Debug)]
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` persistent threads consuming `ctx.queue`.
    pub fn start(workers: usize, ctx: WorkerCtx) -> WorkerPool {
        let ctx = Arc::new(ctx);
        let handles = (0..workers.max(1))
            .map(|index| {
                let ctx = Arc::clone(&ctx);
                std::thread::Builder::new()
                    .name(format!("lfm-serve-worker-{index}"))
                    .spawn(move || worker_loop(index, &ctx))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Waits for every worker to exit (close the queue first).
    pub fn join(self) {
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

fn worker_loop(index: usize, ctx: &WorkerCtx) {
    // Trace track 0 belongs to the connection handlers.
    let pid = index as u64 + 1;
    while let Some(job) = ctx.queue.pop() {
        run_job(job, pid, ctx);
    }
}

/// Executes one job end to end. Never panics outward.
fn run_job(job: Job, pid: u64, ctx: &WorkerCtx) {
    let WorkerCtx {
        cache,
        stats,
        sink,
        chaos,
        caps,
        tracer,
        ..
    } = ctx;
    let (chaos, caps) = (*chaos, *caps);
    stats.jobs_executed.inc();
    let claimed = Instant::now();
    let mut spans = Vec::new();
    push_span(
        stats,
        tracer,
        &mut spans,
        Stage::QueueWait,
        pid,
        job.accepted_at,
        claimed,
    );
    // Time spent queued counts against the request's wall budget.
    let remaining = job
        .deadline
        .map(|d| d.saturating_sub(job.accepted_at.elapsed()));
    let explore_start = Instant::now();
    push_span(
        stats,
        tracer,
        &mut spans,
        Stage::WorkerClaim,
        pid,
        claimed,
        explore_start,
    );
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        check_at_level(&job.program, job.level, caps, chaos, remaining)
    }));
    push_span(
        stats,
        tracer,
        &mut spans,
        Stage::Explore,
        pid,
        explore_start,
        Instant::now(),
    );
    match outcome {
        Ok(out) => {
            let body = protocol::render_report(&job.kernel, &job.variant, job.fingerprint, &out);
            if sink.enabled() {
                sink.emit(&Event {
                    scope: "serve",
                    name: "job",
                    fields: &[
                        ("kernel", Value::Str(&job.kernel)),
                        ("variant", Value::Str(&job.variant)),
                        (
                            "level",
                            Value::U64(crate::admission::level_index(job.level) as u64),
                        ),
                        ("schedules", Value::U64(out.schedules)),
                        ("failures", Value::U64(out.counts.failures())),
                    ],
                });
            }
            // A deadline-truncated report reflects this request's wall
            // budget, not the program — caching it would serve one
            // caller's truncation to everyone forever. Reply with it,
            // but release the claim unfilled.
            let body = if out.truncation == Some(Truncation::WallDeadline) {
                stats.uncacheable.inc();
                cache.abandon(job.key);
                Arc::from(body)
            } else {
                cache.fill(job.key, body)
            };
            let _ = job.reply.send(JobReply {
                result: Ok(body),
                spans,
            });
        }
        Err(payload) => {
            stats.worker_panics.inc();
            cache.abandon(job.key);
            let reason = panic_text(payload.as_ref());
            if sink.enabled() {
                sink.emit(&Event {
                    scope: "serve",
                    name: "worker_panic",
                    fields: &[
                        ("kernel", Value::Str(&job.kernel)),
                        ("variant", Value::Str(&job.variant)),
                        ("reason", Value::Str(&reason)),
                    ],
                });
            }
            let _ = job.reply.send(JobReply {
                result: Err(format!("exploration panicked: {reason}")),
                spans,
            });
        }
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    fn dummy_job(key: u64, reply: SyncSender<JobReply>) -> Job {
        let kernel = lfm_kernels::registry::by_id("toctou_flag").expect("kernel exists");
        let program = kernel.buggy();
        let fingerprint = lfm_sim::fingerprint(&program);
        Job {
            key,
            kernel: "toctou_flag".to_owned(),
            variant: "buggy".to_owned(),
            fingerprint,
            program,
            level: DegradeLevel::Exhaustive,
            deadline: None,
            accepted_at: Instant::now(),
            reply,
        }
    }

    #[test]
    fn queue_bounds_and_close_drain() {
        let queue = JobQueue::new(2);
        let (tx, _rx) = sync_channel(1);
        assert!(queue.push(dummy_job(1, tx.clone())).is_ok());
        assert!(queue.push(dummy_job(2, tx.clone())).is_ok());
        assert!(queue.push(dummy_job(3, tx.clone())).is_err(), "bounded");
        queue.close();
        assert!(queue.push(dummy_job(4, tx)).is_err(), "closed");
        assert!(queue.pop().is_some(), "drains job 1");
        assert!(queue.pop().is_some(), "drains job 2");
        assert!(queue.pop().is_none(), "then reports closed");
    }

    #[test]
    fn pool_executes_fills_cache_and_replies() {
        let queue = Arc::new(JobQueue::new(8));
        let cache = Arc::new(ReportCache::new());
        let stats = Arc::new(ServeStats::new());
        let sink: Arc<dyn Sink> = Arc::new(lfm_obs::NoopSink);
        let tracer = Arc::new(Tracer::new(true, None, Arc::clone(&sink)));
        let pool = WorkerPool::start(
            2,
            WorkerCtx {
                queue: Arc::clone(&queue),
                cache: Arc::clone(&cache),
                stats: Arc::clone(&stats),
                sink,
                chaos: None,
                caps: LevelCaps::default(),
                tracer,
            },
        );
        let (tx, rx) = sync_channel(1);
        // Claim like a handler would, then enqueue.
        assert!(matches!(
            cache.lookup_or_claim(77, Duration::from_secs(1)),
            crate::cache::Lookup::Claimed
        ));
        queue.push(dummy_job(77, tx)).unwrap();
        let reply = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("worker replies");
        let body = reply.result.expect("no panic");
        // The worker attributed its side of the timeline.
        let worker_stages: Vec<Stage> = reply.spans.iter().map(|s| s.stage).collect();
        assert_eq!(
            worker_stages,
            vec![Stage::QueueWait, Stage::WorkerClaim, Stage::Explore]
        );
        assert!(reply.spans.iter().all(|s| s.pid >= 1), "worker track");
        assert!(stats.stages[Stage::Explore.index()].count() >= 1);
        assert!(body.contains("\"kernel\":\"toctou_flag\""), "{body}");
        assert!(body.contains("\"failures\":"), "{body}");
        // The same bytes are now cached.
        match cache.lookup_or_claim(77, Duration::from_secs(1)) {
            crate::cache::Lookup::Hit(cached) => assert_eq!(&*cached, &*body),
            other => panic!("expected hit, got {other:?}"),
        }
        queue.close();
        pool.join();
        assert_eq!(stats.jobs_executed.get(), 1);
        assert_eq!(stats.worker_panics.get(), 0);
    }
}
