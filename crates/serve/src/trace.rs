//! Request-scoped tracing: stage timelines for recent requests.
//!
//! Every request handled by the server is attributed, stage by stage,
//! to the pipeline it flowed through (frame read, parse, cache probe,
//! admission, queue, worker, exploration, reply write). Stage
//! durations always feed the `lfm_serve_stage_us` histograms; the full
//! per-request *timeline* is additionally captured — as `lfm-obs/v1`
//! `span` events in a bounded [`FlightRecorder`] ring, teed to the
//! session sink — when tracing is enabled or the request is slower
//! than the `--trace-slow-ms` threshold (slow requests are always
//! captured, even with tracing otherwise off).
//!
//! Tracing is a **strict observer**: nothing here touches the bytes of
//! a reply. The trace context echoed in replies is a pure function of
//! the request (see `protocol::TraceContext`), so replies are
//! byte-identical with tracing on or off — the contract tests assert
//! exactly that.
//!
//! The ring tail converts to a Perfetto-loadable Chrome trace via
//! [`Tracer::dump_chrome`]: one `pid` per track (0 = connection
//! handlers, `1 + N` = worker `N`), one `tid` per request sequence
//! number, one `"X"` complete event per stage span.

use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lfm_obs::{ChromeTraceSink, Event, FlightRecorder, OwnedValue, Sink, Value};

use crate::protocol::TraceContext;

/// Schema tag spliced into the Chrome trace dump document.
pub const TRACE_DUMP_SCHEMA: &str = "lfm-serve-trace/v1";

/// Spans (not requests) the trace ring retains; at nine stages per
/// request this keeps the last ~220 request timelines.
const TRACE_RING_CAPACITY: usize = 2048;

/// The pipeline stages a request's wall time is attributed to, in
/// pipeline order. [`Stage::index`] is the `ServeStats::stages` slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Waiting for the request frame on an accepted connection.
    Accept,
    /// Parsing and validating the frame.
    Parse,
    /// Cache probe that answered without waiting (hit or fresh claim).
    CacheLookup,
    /// Cache probe that waited on another caller's in-flight fill.
    CoalesceWait,
    /// Admission-ladder verdict.
    Admission,
    /// Between enqueue and a worker claiming the job.
    QueueWait,
    /// Worker-side setup between claim and exploration start.
    WorkerClaim,
    /// The exploration itself.
    Explore,
    /// Writing the reply frame.
    ReplyWrite,
}

/// Every stage, in pipeline order.
pub const STAGES: [Stage; 9] = [
    Stage::Accept,
    Stage::Parse,
    Stage::CacheLookup,
    Stage::CoalesceWait,
    Stage::Admission,
    Stage::QueueWait,
    Stage::WorkerClaim,
    Stage::Explore,
    Stage::ReplyWrite,
];

impl Stage {
    /// Stable label used in events, metrics and the stats reply.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Accept => "accept",
            Stage::Parse => "parse",
            Stage::CacheLookup => "cache_lookup",
            Stage::CoalesceWait => "coalesce_wait",
            Stage::Admission => "admission",
            Stage::QueueWait => "queue_wait",
            Stage::WorkerClaim => "worker_claim",
            Stage::Explore => "explore",
            Stage::ReplyWrite => "reply_write",
        }
    }

    /// The stage's slot in [`STAGES`] and `ServeStats::stages`.
    pub fn index(self) -> usize {
        match self {
            Stage::Accept => 0,
            Stage::Parse => 1,
            Stage::CacheLookup => 2,
            Stage::CoalesceWait => 3,
            Stage::Admission => 4,
            Stage::QueueWait => 5,
            Stage::WorkerClaim => 6,
            Stage::Explore => 7,
            Stage::ReplyWrite => 8,
        }
    }
}

/// One recorded stage span. Timestamps are microsecond offsets from
/// the tracer epoch (server start), so spans recorded by the handler
/// and by a worker line up on one timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRec {
    /// Which stage this span covers.
    pub stage: Stage,
    /// Trace track: 0 = connection handlers, `1 + N` = worker `N`.
    pub pid: u64,
    /// Start offset from the tracer epoch, microseconds.
    pub ts_us: u64,
    /// Span duration, microseconds.
    pub dur_us: u64,
}

/// Attributes `from..to` to `stage`: always into the stage histogram,
/// and into `spans` (for possible timeline capture) only when the
/// tracer is active — inactive tracing costs two `Instant` reads and
/// one histogram record per stage, nothing else.
pub fn push_span(
    stats: &crate::server::ServeStats,
    tracer: &Tracer,
    spans: &mut Vec<SpanRec>,
    stage: Stage,
    pid: u64,
    from: Instant,
    to: Instant,
) {
    let dur_us = to.saturating_duration_since(from).as_micros() as u64;
    stats.stages[stage.index()].record(dur_us);
    if tracer.active() {
        spans.push(SpanRec {
            stage,
            pid,
            ts_us: tracer.offset_us(from),
            dur_us,
        });
    }
}

/// Captures recent request timelines without ever touching replies.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    slow: Option<Duration>,
    epoch: Instant,
    ring: FlightRecorder,
    sink: Arc<dyn Sink>,
}

impl Tracer {
    /// A tracer. `enabled` captures every request; `slow_ms` captures
    /// requests at or above the threshold even when `enabled` is off.
    pub fn new(enabled: bool, slow_ms: Option<u64>, sink: Arc<dyn Sink>) -> Tracer {
        Tracer {
            enabled,
            slow: slow_ms.map(Duration::from_millis),
            epoch: Instant::now(),
            ring: FlightRecorder::with_capacity(TRACE_RING_CAPACITY),
            sink,
        }
    }

    /// `true` when some request could be captured — span collection
    /// can be skipped entirely otherwise.
    pub fn active(&self) -> bool {
        self.enabled || self.slow.is_some()
    }

    /// Keep this request's timeline? Slow requests are always kept
    /// once a threshold is set, even with tracing otherwise off.
    pub fn should_capture(&self, total: Duration) -> bool {
        self.enabled || self.slow.is_some_and(|t| total >= t)
    }

    /// The timeline origin (server start).
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Microseconds from the tracer epoch to `at`.
    pub fn offset_us(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch).as_micros() as u64
    }

    /// Span events captured so far (lifetime, not ring occupancy).
    pub fn captured(&self) -> u64 {
        self.ring.recorded()
    }

    /// Records one request's timeline: one `span` event per stage into
    /// the trace ring, teed to the session sink.
    pub fn record(&self, trace: Option<TraceContext>, seq: u64, spans: &[SpanRec]) {
        let ids = trace.map(|t| {
            (
                format!("{:016x}", t.trace_id),
                format!("{:016x}", t.span_id),
            )
        });
        for span in spans {
            let mut fields: Vec<(&str, Value<'_>)> = vec![
                ("seq", Value::U64(seq)),
                ("pid", Value::U64(span.pid)),
                ("stage", Value::Str(span.stage.name())),
                ("ts_us", Value::U64(span.ts_us)),
                ("dur_us", Value::U64(span.dur_us)),
            ];
            if let Some((trace_hex, span_hex)) = &ids {
                fields.push(("trace_id", Value::Str(trace_hex)));
                fields.push(("span_id", Value::Str(span_hex)));
            }
            let event = Event {
                scope: "serve",
                name: "span",
                fields: &fields,
            };
            self.ring.emit(&event);
            if self.sink.enabled() {
                self.sink.emit(&event);
            }
        }
    }

    /// Converts the ring tail to a Chrome trace-event document tagged
    /// [`TRACE_DUMP_SCHEMA`] and writes it to `path`. Returns the
    /// number of span events dumped. Perfetto ignores the extra
    /// top-level `schema` key.
    ///
    /// # Errors
    ///
    /// Propagates file creation and write failures.
    pub fn dump_chrome(&self, path: impl AsRef<Path>) -> std::io::Result<usize> {
        let sink = ChromeTraceSink::new();
        let tail = self.ring.tail();
        let spans: Vec<_> = tail
            .iter()
            .filter(|(_, event)| event.name == "span")
            .map(|(_, event)| event)
            .collect();
        // One process_name metadata record per track, so Perfetto
        // shows "worker-N" instead of bare pids.
        let mut pids: Vec<u64> = spans
            .iter()
            .filter_map(|event| event.field("pid").and_then(OwnedValue::as_u64))
            .collect();
        pids.sort_unstable();
        pids.dedup();
        for &pid in &pids {
            let label = if pid == 0 {
                "lfm-serve conn".to_owned()
            } else {
                format!("lfm-serve worker-{}", pid - 1)
            };
            sink.emit(&Event {
                scope: "trace",
                name: "process_name",
                fields: &[
                    ("ph", Value::Str("M")),
                    ("pid", Value::U64(pid)),
                    ("name", Value::Str(&label)),
                ],
            });
        }
        for event in &spans {
            let get = |key: &str| event.field(key).and_then(OwnedValue::as_u64).unwrap_or(0);
            let stage = event
                .field("stage")
                .and_then(OwnedValue::as_str)
                .unwrap_or("span");
            let trace_id = event.field("trace_id").and_then(OwnedValue::as_str);
            let mut fields: Vec<(&str, Value<'_>)> = vec![
                ("ph", Value::Str("X")),
                ("pid", Value::U64(get("pid"))),
                ("tid", Value::U64(get("seq"))),
                ("ts", Value::U64(get("ts_us"))),
                ("dur", Value::U64(get("dur_us"))),
            ];
            if let Some(id) = trace_id {
                fields.push(("trace_id", Value::Str(id)));
            }
            sink.emit(&Event {
                scope: "trace",
                name: stage,
                fields: &fields,
            });
        }
        let rendered = sink.render();
        // Splice the schema tag in as the first top-level key; the
        // rest of the document is untouched ChromeTraceSink output.
        let doc = format!("{{\"schema\":\"{TRACE_DUMP_SCHEMA}\",{}", &rendered[1..]);
        std::fs::write(path, doc)?;
        Ok(spans.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_obs::json::Json;
    use lfm_obs::{MemorySink, NoopSink};

    fn spans() -> Vec<SpanRec> {
        vec![
            SpanRec {
                stage: Stage::Accept,
                pid: 0,
                ts_us: 10,
                dur_us: 5,
            },
            SpanRec {
                stage: Stage::Explore,
                pid: 2,
                ts_us: 20,
                dur_us: 400,
            },
        ]
    }

    #[test]
    fn stage_indices_match_pipeline_order() {
        for (index, stage) in STAGES.iter().enumerate() {
            assert_eq!(stage.index(), index, "{stage:?}");
        }
        let names: std::collections::HashSet<_> = STAGES.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), STAGES.len(), "stage names are distinct");
    }

    #[test]
    fn slow_threshold_always_captures_even_when_disabled() {
        let tracer = Tracer::new(false, Some(50), Arc::new(NoopSink));
        assert!(tracer.active());
        assert!(!tracer.should_capture(Duration::from_millis(10)));
        assert!(tracer.should_capture(Duration::from_millis(50)));
        let off = Tracer::new(false, None, Arc::new(NoopSink));
        assert!(!off.active());
        assert!(!off.should_capture(Duration::from_secs(3600)));
        let on = Tracer::new(true, None, Arc::new(NoopSink));
        assert!(on.should_capture(Duration::ZERO));
    }

    #[test]
    fn record_tees_span_events_to_the_session_sink() {
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::new(true, None, Arc::clone(&sink) as Arc<dyn Sink>);
        let trace = crate::protocol::TraceContext::mint(42, 7);
        tracer.record(Some(trace), 3, &spans());
        assert_eq!(tracer.captured(), 2);
        let events = sink.events_named("serve", "span");
        assert_eq!(events.len(), 2);
        let first = &events[0];
        assert_eq!(
            first.field("stage").and_then(OwnedValue::as_str),
            Some("accept")
        );
        assert_eq!(first.field("seq").and_then(OwnedValue::as_u64), Some(3));
        assert_eq!(
            first.field("trace_id").and_then(OwnedValue::as_str),
            Some(format!("{:016x}", trace.trace_id).as_str())
        );
    }

    #[test]
    fn dump_chrome_writes_a_tagged_perfetto_document() {
        let tracer = Tracer::new(true, None, Arc::new(NoopSink));
        tracer.record(Some(crate::protocol::TraceContext::mint(1, 1)), 1, &spans());
        tracer.record(None, 2, &spans()[..1]);
        let dir = std::env::temp_dir().join(format!("lfm-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.json");
        let dumped = tracer.dump_chrome(&path).unwrap();
        assert_eq!(dumped, 3);
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = Json::parse(&text).expect("dump parses");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(TRACE_DUMP_SCHEMA)
        );
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        // 2 tracks (pid 0 and pid 2) => 2 metadata records + 3 spans.
        assert_eq!(events.len(), 5);
        let explore = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("explore"))
            .expect("explore span present");
        assert_eq!(explore.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(explore.get("pid").and_then(Json::as_u64), Some(2));
        assert_eq!(explore.get("tid").and_then(Json::as_u64), Some(1));
        assert_eq!(explore.get("dur").and_then(Json::as_u64), Some(400));
        let meta = events
            .iter()
            .find(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    == Some("lfm-serve worker-1")
            })
            .expect("worker track named");
        assert_eq!(meta.get("pid").and_then(Json::as_u64), Some(2));
        std::fs::remove_dir_all(&dir).ok();
    }
}
