//! The retrying client: capped, seeded, decorrelated-jitter backoff.
//!
//! Transport failures (connect refused, reset, truncated or garbled
//! response — everything the chaos proxy injects) and explicit `shed`
//! responses are retried up to a cap. Semantic `error` responses are
//! **never** retried: the server said no, and asking again will not
//! change its mind.
//!
//! The backoff schedule is *decorrelated jitter*:
//! `delay = clamp(base, uniform(base, prev * 3), cap)`, with the
//! uniform draw derived from `splitmix64(seed ^ attempt)` — fully
//! deterministic for a given seed (testable), while a fleet of clients
//! with different seeds spreads retries instead of thundering back in
//! lockstep.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use lfm_obs::json::Json;
use lfm_sim::splitmix64;

use crate::protocol::{parse_response, render_request, Request, Response, TraceContext};
use crate::server::StatsSnapshot;

/// Retry schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). At least 1.
    pub attempts: u32,
    /// Minimum delay between attempts, and the first retry's delay.
    pub base: Duration,
    /// Hard cap on any single delay.
    pub cap: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 6,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(200),
            seed: 0x00C1_1E27,
        }
    }
}

impl RetryPolicy {
    /// The delay before retry number `attempt` (1-based), given the
    /// previous delay. Deterministic in `(seed, attempt, prev)`, and
    /// always within `[base, cap]`.
    pub fn delay(&self, attempt: u32, prev: Duration) -> Duration {
        decorrelated_jitter(self.base, self.cap, self.seed, attempt, prev)
    }

    /// The full delay sequence for `n` retries — what the tests assert
    /// determinism and boundedness over.
    pub fn delays(&self, n: u32) -> Vec<Duration> {
        let mut prev = self.base;
        (1..=n)
            .map(|attempt| {
                prev = self.delay(attempt, prev);
                prev
            })
            .collect()
    }
}

/// `clamp(base, uniform(base, prev * 3), cap)` with the uniform draw
/// taken from a splitmix64 stream — the AWS-described "decorrelated
/// jitter" schedule, made reproducible.
pub fn decorrelated_jitter(
    base: Duration,
    cap: Duration,
    seed: u64,
    attempt: u32,
    prev: Duration,
) -> Duration {
    let base_us = base.as_micros().max(1) as u64;
    let cap_us = cap.as_micros().max(u128::from(base_us)) as u64;
    let prev_us = prev.as_micros().max(u128::from(base_us)) as u64;
    let hi = prev_us.saturating_mul(3).max(base_us + 1);
    let span = hi - base_us;
    let draw = splitmix64(seed ^ (u64::from(attempt) << 32) ^ prev_us);
    let delay_us = (base_us + draw % span).min(cap_us);
    Duration::from_micros(delay_us)
}

/// Why a check ultimately failed.
#[derive(Debug, Clone)]
pub enum ClientError {
    /// Every attempt failed on transport or shed; `last` describes the
    /// final failure.
    Exhausted {
        /// Attempts made.
        attempts: u32,
        /// Description of the last failure.
        last: String,
    },
    /// The server answered `error` — a semantic refusal, not retried.
    Fatal(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Exhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempt(s): {last}")
            }
            ClientError::Fatal(reason) => write!(f, "server error: {reason}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A successful check, with the fields the load harness tallies.
#[derive(Debug, Clone)]
pub struct CheckReply {
    /// `true` when served from the fingerprint cache.
    pub cache_hit: bool,
    /// Raw bytes of the canonical report object.
    pub report: String,
    /// Degrade level recorded in the report.
    pub level: String,
    /// Confidence recorded in the report.
    pub confidence: String,
    /// Failure count recorded in the report.
    pub failures: u64,
    /// Program fingerprint recorded in the report (hex).
    pub fingerprint: String,
    /// Attempts used (1 = first try succeeded).
    pub attempts: u32,
    /// Shed responses absorbed along the way.
    pub sheds: u32,
    /// Transport failures absorbed along the way.
    pub transport_errors: u32,
}

impl CheckReply {
    /// Retries this request needed: attempts minus the first try.
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }
}

/// A one-request-per-connection JSONL client.
#[derive(Debug, Clone)]
pub struct Client {
    addr: SocketAddr,
    policy: RetryPolicy,
    timeout: Duration,
    trace_seed: Option<u64>,
    trace_seq: Arc<AtomicU64>,
}

impl Client {
    /// A client for `addr` with default policy and a 10 s I/O timeout.
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            policy: RetryPolicy::default(),
            timeout: Duration::from_secs(10),
            trace_seed: None,
            trace_seq: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Replaces the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Client {
        self.policy = policy;
        self
    }

    /// Replaces the per-attempt I/O timeout (connect, read, write).
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    /// Mints a deterministic trace context for every subsequent check
    /// (seeded — request N of seed S always gets the same ids). The
    /// context is rendered once per request, so retries of one request
    /// share one `trace_id`.
    pub fn with_trace(mut self, seed: u64) -> Client {
        self.trace_seed = Some(seed);
        self
    }

    /// Checks one kernel variant, retrying per the policy.
    pub fn check(
        &self,
        kernel: &str,
        variant: &str,
        deadline_ms: Option<u64>,
    ) -> Result<CheckReply, ClientError> {
        let trace = self
            .trace_seed
            .map(|seed| TraceContext::mint(seed, self.trace_seq.fetch_add(1, Ordering::Relaxed)));
        let request = Request::Check {
            kernel: kernel.to_owned(),
            variant: variant.to_owned(),
            deadline_ms,
            trace,
        };
        let line = render_request(&request);
        let mut sheds = 0u32;
        let mut transport_errors = 0u32;
        let mut prev = self.policy.base;
        let mut last = String::from("no attempt made");
        let attempts = self.policy.attempts.max(1);
        for attempt in 1..=attempts {
            if attempt > 1 {
                let delay = self.policy.delay(attempt - 1, prev);
                prev = delay;
                std::thread::sleep(delay);
            }
            match self.roundtrip(&line) {
                Err(reason) => {
                    transport_errors += 1;
                    last = reason;
                }
                Ok(Response::Shed {
                    reason,
                    retry_after_ms,
                }) => {
                    sheds += 1;
                    last = format!("shed: {reason}");
                    // Honor the server's hint when it is longer than
                    // our own schedule would wait.
                    prev = prev.max(Duration::from_millis(retry_after_ms));
                }
                Ok(Response::Error { reason }) => return Err(ClientError::Fatal(reason)),
                Ok(Response::Ok { cache_hit, report }) => {
                    return Ok(finish_reply(
                        cache_hit,
                        report,
                        attempt,
                        sheds,
                        transport_errors,
                    ));
                }
                Ok(other) => {
                    transport_errors += 1;
                    last = format!("unexpected response {other:?}");
                }
            }
        }
        Err(ClientError::Exhausted { attempts, last })
    }

    /// Liveness probe; `true` on a pong.
    pub fn ping(&self) -> bool {
        matches!(
            self.roundtrip(&render_request(&Request::Ping)),
            Ok(Response::Pong)
        )
    }

    /// Fetches the server's rolling stats snapshot (one attempt; the
    /// caller polls, so the next tick is the retry).
    ///
    /// # Errors
    ///
    /// Transport failures and malformed replies, described.
    pub fn stats(&self) -> Result<StatsSnapshot, String> {
        let line = self.raw_roundtrip(&render_request(&Request::Stats))?;
        StatsSnapshot::parse(&line)
    }

    /// Requests a graceful shutdown; `Ok` on the `bye` ack.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        match self.roundtrip(&render_request(&Request::Shutdown)) {
            Ok(Response::Bye) => Ok(()),
            Ok(other) => Err(ClientError::Fatal(format!("expected bye, got {other:?}"))),
            Err(reason) => Err(ClientError::Exhausted {
                attempts: 1,
                last: reason,
            }),
        }
    }

    /// One connection, one request line, one parsed response line.
    fn roundtrip(&self, line: &str) -> Result<Response, String> {
        let response = self.raw_roundtrip(line)?;
        parse_response(&response).map_err(|e| format!("parse: {e}"))
    }

    /// One connection, one request line, one raw response line.
    fn raw_roundtrip(&self, line: &str) -> Result<String, String> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)
            .map_err(|e| format!("connect: {e}"))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(|e| format!("set timeout: {e}"))?;
        stream
            .set_write_timeout(Some(self.timeout))
            .map_err(|e| format!("set timeout: {e}"))?;
        let _ = stream.set_nodelay(true);
        let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        match reader.read_line(&mut response) {
            Ok(0) => Err("connection closed before a response".to_owned()),
            Err(e) => Err(format!("recv: {e}")),
            Ok(_) => {
                if !response.ends_with('\n') {
                    // A frame without its terminator is a truncated
                    // response (chaos mid-frame cut) — never trust it.
                    return Err("truncated response frame".to_owned());
                }
                Ok(response.trim_end().to_owned())
            }
        }
    }
}

fn finish_reply(
    cache_hit: bool,
    report: String,
    attempts: u32,
    sheds: u32,
    transport_errors: u32,
) -> CheckReply {
    // The report was schema-checked by parse_response; pull the tally
    // fields out of it.
    let doc = Json::parse(&report).unwrap_or(Json::Null);
    CheckReply {
        cache_hit,
        level: doc
            .get("level")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_owned(),
        confidence: doc
            .get("confidence")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_owned(),
        failures: doc.get("failures").and_then(Json::as_u64).unwrap_or(0),
        fingerprint: doc
            .get("fingerprint")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_owned(),
        report,
        attempts,
        sheds,
        transport_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.delays(8), policy.delays(8));
        let other = RetryPolicy {
            seed: policy.seed ^ 1,
            ..policy
        };
        assert_ne!(
            policy.delays(8),
            other.delays(8),
            "different seeds must spread differently"
        );
    }

    #[test]
    fn jitter_is_bounded_by_base_and_cap() {
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            let policy = RetryPolicy {
                attempts: 16,
                base: Duration::from_millis(2),
                cap: Duration::from_millis(50),
                seed,
            };
            for (i, delay) in policy.delays(16).iter().enumerate() {
                assert!(
                    *delay >= policy.base && *delay <= policy.cap,
                    "seed {seed}, retry {i}: {delay:?} outside [{:?}, {:?}]",
                    policy.base,
                    policy.cap
                );
            }
        }
    }

    #[test]
    fn jitter_actually_varies() {
        let policy = RetryPolicy {
            attempts: 16,
            base: Duration::from_millis(1),
            cap: Duration::from_secs(1),
            seed: 7,
        };
        let delays = policy.delays(12);
        let distinct: std::collections::HashSet<_> = delays.iter().collect();
        assert!(
            distinct.len() > 3,
            "expected jittered spread, got {delays:?}"
        );
    }

    #[test]
    fn connect_refused_exhausts_with_transport_errors() {
        // Bind-then-drop to get a port that refuses connections.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let client = Client::new(addr).with_policy(RetryPolicy {
            attempts: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(5),
            seed: 9,
        });
        match client.check("toctou_flag", "buggy", None) {
            Err(ClientError::Exhausted { attempts, last }) => {
                assert_eq!(attempts, 3);
                assert!(last.contains("connect"), "{last}");
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }
}
