//! Fingerprint-keyed, single-flight report cache.
//!
//! Keys are `lfm-trace/v1` program fingerprints (mixed with the
//! sim-chaos seed when fault injection is on — the same program under
//! a different fault plan is a different result). Values are the
//! canonical report bytes rendered once by the worker that explored
//! the miss; a hit hands those bytes back verbatim, which is the whole
//! determinism argument — a hit cannot differ from the exploration
//! that filled it because it *is* that exploration's bytes.
//!
//! Single-flight: concurrent misses for one key coalesce. The first
//! claims the slot and explores; the rest block (bounded) on the
//! condvar and wake to the filled value. A claimer that fails —
//! worker panic, shed after claim, uncacheable result — *abandons* the
//! slot so a waiter can reclaim instead of waiting forever.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use lfm_obs::Counter;

/// What a cache probe produced.
#[derive(Debug, Clone)]
pub enum Lookup {
    /// The canonical report bytes, ready to send.
    Hit(Arc<str>),
    /// This caller claimed the slot and must explore, then either
    /// [`ReportCache::fill`] or [`ReportCache::abandon`] the key.
    Claimed,
    /// Another caller holds the claim and did not finish within the
    /// wait bound; treat as overload (shed).
    Busy,
}

#[derive(Debug, Clone)]
enum Slot {
    Pending,
    Ready(Arc<str>),
}

/// The cache. All waiting is bounded; all counters are monotonic.
#[derive(Debug, Default)]
pub struct ReportCache {
    slots: Mutex<HashMap<u64, Slot>>,
    changed: Condvar,
    /// Probes answered from a filled slot (immediately or after a
    /// coalesced wait).
    pub hits: Counter,
    /// Probes that claimed the slot (led an exploration).
    pub misses: Counter,
    /// Probes that waited on another caller's in-flight exploration.
    pub coalesced: Counter,
    /// Probes that gave up waiting (surfaced as shed).
    pub busy: Counter,
}

impl ReportCache {
    /// An empty cache.
    pub fn new() -> ReportCache {
        ReportCache::default()
    }

    /// Number of filled entries.
    pub fn len(&self) -> usize {
        self.slots
            .lock()
            .unwrap()
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// `true` when no entry is filled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Probes `key`, claiming it on a cold miss. Waits at most `wait`
    /// for another caller's in-flight fill.
    pub fn lookup_or_claim(&self, key: u64, wait: Duration) -> Lookup {
        self.lookup_or_claim_observed(key, wait).0
    }

    /// Like [`ReportCache::lookup_or_claim`], also reporting whether
    /// the probe waited on another caller's in-flight fill — the serve
    /// tracer uses the flag to attribute the probe's duration to the
    /// coalesce-wait stage instead of the plain lookup.
    pub fn lookup_or_claim_observed(&self, key: u64, wait: Duration) -> (Lookup, bool) {
        let deadline = Instant::now() + wait;
        let mut slots = self.slots.lock().unwrap();
        let mut waited = false;
        loop {
            match slots.get(&key) {
                None => {
                    slots.insert(key, Slot::Pending);
                    self.misses.inc();
                    return (Lookup::Claimed, waited);
                }
                Some(Slot::Ready(body)) => {
                    let body = Arc::clone(body);
                    self.hits.inc();
                    return (Lookup::Hit(body), waited);
                }
                Some(Slot::Pending) => {
                    if !waited {
                        waited = true;
                        self.coalesced.inc();
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        self.busy.inc();
                        return (Lookup::Busy, waited);
                    }
                    let (guard, _timeout) =
                        self.changed.wait_timeout(slots, deadline - now).unwrap();
                    slots = guard;
                }
            }
        }
    }

    /// Fills a claimed `key` with the canonical bytes and wakes all
    /// coalesced waiters. Returns the shared value.
    pub fn fill(&self, key: u64, body: String) -> Arc<str> {
        let body: Arc<str> = Arc::from(body);
        let mut slots = self.slots.lock().unwrap();
        slots.insert(key, Slot::Ready(Arc::clone(&body)));
        self.changed.notify_all();
        body
    }

    /// Releases a claimed `key` without filling it (the exploration
    /// panicked, was shed, or produced an uncacheable result). Wakes
    /// waiters so one of them can reclaim. Filled entries are never
    /// evicted by this.
    pub fn abandon(&self, key: u64) {
        let mut slots = self.slots.lock().unwrap();
        if matches!(slots.get(&key), Some(Slot::Pending)) {
            slots.remove(&key);
        }
        self.changed.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    const WAIT: Duration = Duration::from_secs(5);

    #[test]
    fn miss_fill_hit() {
        let cache = ReportCache::new();
        assert!(matches!(cache.lookup_or_claim(7, WAIT), Lookup::Claimed));
        cache.fill(7, "{\"x\":1}".to_owned());
        match cache.lookup_or_claim(7, WAIT) {
            Lookup::Hit(body) => assert_eq!(&*body, "{\"x\":1}"),
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(cache.hits.get(), 1);
        assert_eq!(cache.misses.get(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_probes_single_flight() {
        let cache = Arc::new(ReportCache::new());
        assert!(matches!(cache.lookup_or_claim(3, WAIT), Lookup::Claimed));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let cache = Arc::clone(&cache);
            joins.push(thread::spawn(move || cache.lookup_or_claim(3, WAIT)));
        }
        // Give the waiters time to park, then fill.
        thread::sleep(Duration::from_millis(30));
        cache.fill(3, "body".to_owned());
        for join in joins {
            match join.join().unwrap() {
                Lookup::Hit(body) => assert_eq!(&*body, "body"),
                other => panic!("waiter got {other:?}"),
            }
        }
        assert_eq!(cache.misses.get(), 1, "only one exploration led");
        assert_eq!(cache.hits.get(), 4);
        assert!(cache.coalesced.get() >= 1);
    }

    #[test]
    fn abandon_lets_a_waiter_reclaim() {
        let cache = Arc::new(ReportCache::new());
        assert!(matches!(cache.lookup_or_claim(9, WAIT), Lookup::Claimed));
        let waiter = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || cache.lookup_or_claim(9, WAIT))
        };
        thread::sleep(Duration::from_millis(30));
        cache.abandon(9);
        match waiter.join().unwrap() {
            Lookup::Claimed => {}
            other => panic!("waiter got {other:?}"),
        }
        assert_eq!(cache.misses.get(), 2);
    }

    #[test]
    fn bounded_wait_reports_busy() {
        let cache = ReportCache::new();
        assert!(matches!(cache.lookup_or_claim(1, WAIT), Lookup::Claimed));
        let verdict = cache.lookup_or_claim(1, Duration::from_millis(20));
        assert!(matches!(verdict, Lookup::Busy), "got {verdict:?}");
        assert_eq!(cache.busy.get(), 1);
    }

    #[test]
    fn observed_flag_distinguishes_coalesced_probes() {
        let cache = Arc::new(ReportCache::new());
        let (lookup, waited) = cache.lookup_or_claim_observed(11, WAIT);
        assert!(matches!(lookup, Lookup::Claimed));
        assert!(!waited, "cold claim never waits");
        let waiter = {
            let cache = Arc::clone(&cache);
            thread::spawn(move || cache.lookup_or_claim_observed(11, WAIT))
        };
        thread::sleep(Duration::from_millis(30));
        cache.fill(11, "body".to_owned());
        let (lookup, waited) = waiter.join().unwrap();
        assert!(matches!(lookup, Lookup::Hit(_)));
        assert!(waited, "probe parked on the pending fill");
        let (_, waited) = cache.lookup_or_claim_observed(11, WAIT);
        assert!(!waited, "warm hit answers immediately");
    }

    #[test]
    fn abandon_never_evicts_a_filled_entry() {
        let cache = ReportCache::new();
        assert!(matches!(cache.lookup_or_claim(5, WAIT), Lookup::Claimed));
        cache.fill(5, "kept".to_owned());
        cache.abandon(5);
        assert!(matches!(cache.lookup_or_claim(5, WAIT), Lookup::Hit(_)));
    }
}
