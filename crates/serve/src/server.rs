//! The TCP server: accept loop, connection handlers, drain choreography.
//!
//! Thread model: one accept thread, one detached handler thread per
//! connection (capped by `max_conns`), and a persistent worker pool
//! ([`crate::pool`]). Handlers never explore — they parse, consult the
//! cache, get an admission verdict, enqueue, and wait for the worker's
//! reply; the exploration capacity of the server is exactly the pool.
//!
//! Graceful shutdown (`shutdown` op on the wire, or
//! [`ServerHandle::request_shutdown`] — the SIGTERM equivalent): stop
//! accepting, let open connections finish their in-flight request,
//! drain the queued jobs through the pool, join the workers, flush the
//! sink. [`ServerHandle::wait`] blocks through all of it and reports a
//! [`DrainSummary`].
//!
//! Response writing reuses the `JsonlSink` accounting discipline: a
//! client that disconnects mid-response is a counted, logged
//! `write_errors` increment — never a panic, never a wedged worker
//! (the worker already replied through the channel; only the handler's
//! final write fails).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lfm_obs::json::{self, Json};
use lfm_obs::{Counter, Event, Histogram, HistogramSnapshot, Registry, Sink, Value};
use lfm_sim::{fingerprint, splitmix64, FaultPlan};

use crate::admission::{level_index, Admission, AdmissionLadder, LEVELS};
use crate::cache::{Lookup, ReportCache};
use crate::level::LevelCaps;
use crate::pool::{Job, JobQueue, WorkerCtx, WorkerPool};
use crate::protocol::{
    self, parse_request, render_bye, render_error, render_ok, render_pong, render_shed, Request,
    TraceContext, STATS_SCHEMA,
};
use crate::trace::{push_span, SpanRec, Stage, Tracer, STAGES};

/// How long a coalesced probe waits on another request's in-flight
/// exploration when the request carries no deadline.
const COALESCE_WAIT: Duration = Duration::from_secs(10);
/// Slack added to the reply wait beyond the request deadline: the
/// worker truncates at the deadline itself, this only covers queue
/// hand-off and rendering.
const REPLY_GRACE: Duration = Duration::from_secs(60);
/// How long the drain waits for open connections before giving up and
/// reporting an unclean drain.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(30);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port.
    pub addr: String,
    /// Worker pool size.
    pub workers: usize,
    /// Job queue bound; also the shed threshold of the admission
    /// ladder.
    pub queue_cap: usize,
    /// Maximum simultaneously open connections; excess connections get
    /// an immediate shed response.
    pub max_conns: usize,
    /// Exploration size caps per rung.
    pub caps: LevelCaps,
    /// Seeded sim-level fault plan injected into every exploration
    /// (the `--chaos` flag), part of the cache key.
    pub chaos: Option<u64>,
    /// Default per-request wall deadline when the request carries none.
    pub default_deadline: Option<Duration>,
    /// Per-connection read timeout (idle connections are closed).
    pub read_timeout: Duration,
    /// Capture every request's stage timeline into the trace ring.
    pub trace: bool,
    /// Always capture requests at or above this total latency, even
    /// when `trace` is off (the slow-request flight recorder).
    pub trace_slow_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get().saturating_sub(1).clamp(1, 4))
                .unwrap_or(1),
            queue_cap: 32,
            max_conns: 256,
            caps: LevelCaps::default(),
            chaos: None,
            default_deadline: None,
            read_timeout: Duration::from_secs(30),
            trace: false,
            trace_slow_ms: None,
        }
    }
}

/// Monotonic service counters, rendered into OpenMetrics on demand.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Request lines parsed (any op).
    pub requests: Counter,
    /// `check` requests.
    pub checks: Counter,
    /// Requests refused with a `shed` response (admission, queue-full,
    /// busy, draining, or connection cap).
    pub shed: Counter,
    /// `error` responses (bad request, unknown kernel, worker failure).
    pub errors: Counter,
    /// Response lines that failed to write (client gone mid-response).
    /// The `JsonlSink::write_errors` discipline at the service edge.
    pub write_errors: Counter,
    /// Explorations that panicked and were contained.
    pub worker_panics: Counter,
    /// Results served but not cached (deadline-truncated).
    pub uncacheable: Counter,
    /// Jobs executed by the pool.
    pub jobs_executed: Counter,
    /// Connections accepted.
    pub conns_opened: Counter,
    /// Connections refused at the cap.
    pub conns_rejected: Counter,
    /// Admissions per degrade level (histogram order:
    /// exhaustive, sleep-set, preemption-bounded, pct-sampling).
    pub degrade: [Counter; 4],
    /// Per-check service latency in microseconds (cache hits and
    /// completed misses).
    pub latency_us: Histogram,
    /// Stage-attributed durations in microseconds, indexed by
    /// [`Stage::index`] (pipeline order, see [`STAGES`]).
    pub stages: [Histogram; 9],
    /// Completed-miss latency per admitted degrade level (histogram
    /// order: exhaustive, sleep-set, preemption-bounded, pct-sampling).
    pub latency_by_level: [Histogram; 4],
}

impl ServeStats {
    /// Fresh zeroed stats.
    pub fn new() -> ServeStats {
        ServeStats::default()
    }

    /// Renders every family into `registry` (the `--metrics` surface).
    pub fn fill_registry(&self, registry: &mut Registry, cache: &ReportCache) {
        registry.counter(
            "lfm_serve_requests_total",
            "Request lines parsed",
            self.requests.get(),
        );
        registry.counter(
            "lfm_serve_checks_total",
            "check requests",
            self.checks.get(),
        );
        registry.counter(
            "lfm_serve_cache_hits_total",
            "Checks answered from the fingerprint cache",
            cache.hits.get(),
        );
        registry.counter(
            "lfm_serve_cache_misses_total",
            "Checks that led a fresh exploration",
            cache.misses.get(),
        );
        registry.counter(
            "lfm_serve_coalesced_total",
            "Checks that waited on another request's exploration",
            cache.coalesced.get(),
        );
        registry.counter(
            "lfm_serve_shed_total",
            "Requests refused under load",
            self.shed.get(),
        );
        registry.counter(
            "lfm_serve_errors_total",
            "error responses",
            self.errors.get(),
        );
        registry.counter(
            "lfm_serve_write_errors_total",
            "Responses lost to client disconnects",
            self.write_errors.get(),
        );
        registry.counter(
            "lfm_serve_worker_panics_total",
            "Contained exploration panics",
            self.worker_panics.get(),
        );
        registry.counter(
            "lfm_serve_uncacheable_total",
            "Deadline-truncated results served but not cached",
            self.uncacheable.get(),
        );
        registry.counter(
            "lfm_serve_jobs_total",
            "Explorations executed by the pool",
            self.jobs_executed.get(),
        );
        registry.counter(
            "lfm_serve_connections_total",
            "Connections accepted",
            self.conns_opened.get(),
        );
        registry.counter(
            "lfm_serve_connections_rejected_total",
            "Connections refused at the cap",
            self.conns_rejected.get(),
        );
        for (i, level) in LEVELS.iter().enumerate() {
            registry.counter_with(
                "lfm_serve_degrade_total",
                "Admissions per degrade level",
                &[("level", &level.to_string())],
                self.degrade[i].get(),
            );
        }
        registry.gauge(
            "lfm_serve_cache_entries",
            "Filled fingerprint-cache entries",
            cache.len() as f64,
        );
        // Histogram families are exported unconditionally — a scrape
        // must see them exist from startup, not only after the first
        // check populates them.
        registry.histogram(
            "lfm_serve_latency_us",
            "Per-check service latency (microseconds)",
            &self.latency_us.snapshot(),
        );
        for stage in STAGES {
            registry.histogram_with(
                "lfm_serve_stage_us",
                "Stage-attributed request time (microseconds)",
                &[("stage", stage.name())],
                &self.stages[stage.index()].snapshot(),
            );
        }
        for (i, level) in LEVELS.iter().enumerate() {
            registry.histogram_with(
                "lfm_serve_latency_by_level_us",
                "Completed-miss latency per admitted degrade level (microseconds)",
                &[("level", &level.to_string())],
                &self.latency_by_level[i].snapshot(),
            );
        }
    }

    /// Degrade counters as a plain array.
    pub fn degrade_histogram(&self) -> [u64; 4] {
        [
            self.degrade[0].get(),
            self.degrade[1].get(),
            self.degrade[2].get(),
            self.degrade[3].get(),
        ]
    }
}

/// A count/p50/p99 triple for one histogram in the stats reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuantileRow {
    /// Values recorded.
    pub count: u64,
    /// Median, microseconds (0 when empty).
    pub p50_us: u64,
    /// 99th percentile, microseconds (0 when empty).
    pub p99_us: u64,
}

impl QuantileRow {
    fn of(snap: &HistogramSnapshot) -> QuantileRow {
        QuantileRow {
            count: snap.count,
            p50_us: snap.p50(),
            p99_us: snap.p99(),
        }
    }

    fn render_fields(&self) -> String {
        format!(
            "\"count\":{},\"p50_us\":{},\"p99_us\":{}",
            self.count, self.p50_us, self.p99_us
        )
    }

    fn parse(doc: &Json) -> QuantileRow {
        let field = |key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or(0);
        QuantileRow {
            count: field("count"),
            p50_us: field("p50_us"),
            p99_us: field("p99_us"),
        }
    }
}

/// The rolling service snapshot answered to a `stats` wire request
/// (`lfm-serve-stats/v1`): counters, rates, queue/connection gauges,
/// and p50/p99 per stage and per degrade level. Quantiles come from
/// the lifetime histograms — cheap, lock-free, and monotone, which is
/// what a polling `lfm top` wants.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// `check` requests currently inside the handler.
    pub in_flight: u64,
    /// Jobs queued right now.
    pub queue_depth: u64,
    /// Queue bound.
    pub queue_cap: u64,
    /// Open connections.
    pub conns: u64,
    /// Request lines parsed (any op).
    pub requests: u64,
    /// `check` requests.
    pub checks: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses (explorations led).
    pub misses: u64,
    /// Probes that waited on another request's exploration.
    pub coalesced: u64,
    /// Shed responses.
    pub shed: u64,
    /// Error responses.
    pub errors: u64,
    /// Responses lost to client disconnects.
    pub write_errors: u64,
    /// Contained exploration panics.
    pub worker_panics: u64,
    /// Filled cache entries.
    pub cache_entries: u64,
    /// `hits / checks` (0 when no checks yet).
    pub hit_rate: f64,
    /// `shed / requests` (0 when no requests yet).
    pub shed_rate: f64,
    /// Admissions per degrade level.
    pub degrade: [u64; 4],
    /// End-to-end check latency.
    pub latency: QuantileRow,
    /// Per-stage durations, `(stage name, row)` in pipeline order.
    pub stages: Vec<(String, QuantileRow)>,
    /// Per-level completed-miss latency, `(level name, row)`.
    pub levels: Vec<(String, QuantileRow)>,
}

impl StatsSnapshot {
    /// Renders the one-line wire reply.
    pub fn render(&self) -> String {
        let mut line = format!(
            concat!(
                "{{\"schema\":{},\"status\":\"stats\",\"uptime_ms\":{},",
                "\"in_flight\":{},\"queue_depth\":{},\"queue_cap\":{},\"conns\":{},",
                "\"requests\":{},\"checks\":{},\"hits\":{},\"misses\":{},\"coalesced\":{},",
                "\"shed\":{},\"errors\":{},\"write_errors\":{},\"worker_panics\":{},",
                "\"cache_entries\":{},\"hit_rate\":{},\"shed_rate\":{},",
                "\"degrade\":[{},{},{},{}]"
            ),
            json::quote(STATS_SCHEMA),
            self.uptime_ms,
            self.in_flight,
            self.queue_depth,
            self.queue_cap,
            self.conns,
            self.requests,
            self.checks,
            self.hits,
            self.misses,
            self.coalesced,
            self.shed,
            self.errors,
            self.write_errors,
            self.worker_panics,
            self.cache_entries,
            json::number_f64(self.hit_rate),
            json::number_f64(self.shed_rate),
            self.degrade[0],
            self.degrade[1],
            self.degrade[2],
            self.degrade[3],
        );
        line.push_str(&format!(
            ",\"latency\":{{{}}}",
            self.latency.render_fields()
        ));
        line.push_str(",\"stages\":[");
        for (i, (stage, row)) in self.stages.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!(
                "{{\"stage\":{},{}}}",
                json::quote(stage),
                row.render_fields()
            ));
        }
        line.push_str("],\"levels\":[");
        for (i, (level, row)) in self.levels.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!(
                "{{\"level\":{},{}}}",
                json::quote(level),
                row.render_fields()
            ));
        }
        line.push_str("]}");
        line
    }

    /// Parses a wire reply line.
    ///
    /// # Errors
    ///
    /// Rejects non-JSON lines, foreign schema tags, and non-`stats`
    /// statuses with a description.
    pub fn parse(line: &str) -> Result<StatsSnapshot, String> {
        let doc = Json::parse(line).map_err(|e| format!("stats reply: {e}"))?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(STATS_SCHEMA) => {}
            other => return Err(format!("stats reply: schema {other:?}")),
        }
        match doc.get("status").and_then(Json::as_str) {
            Some("stats") => {}
            other => return Err(format!("stats reply: status {other:?}")),
        }
        let num = |key: &str| doc.get(key).and_then(Json::as_u64).unwrap_or(0);
        let rate = |key: &str| doc.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        let mut degrade = [0u64; 4];
        if let Some(values) = doc.get("degrade").and_then(Json::as_array) {
            for (slot, value) in degrade.iter_mut().zip(values) {
                *slot = value.as_u64().unwrap_or(0);
            }
        }
        let rows = |key: &str, tag: &str| -> Vec<(String, QuantileRow)> {
            doc.get(key)
                .and_then(Json::as_array)
                .map(|entries| {
                    entries
                        .iter()
                        .map(|entry| {
                            (
                                entry
                                    .get(tag)
                                    .and_then(Json::as_str)
                                    .unwrap_or("")
                                    .to_owned(),
                                QuantileRow::parse(entry),
                            )
                        })
                        .collect()
                })
                .unwrap_or_default()
        };
        Ok(StatsSnapshot {
            uptime_ms: num("uptime_ms"),
            in_flight: num("in_flight"),
            queue_depth: num("queue_depth"),
            queue_cap: num("queue_cap"),
            conns: num("conns"),
            requests: num("requests"),
            checks: num("checks"),
            hits: num("hits"),
            misses: num("misses"),
            coalesced: num("coalesced"),
            shed: num("shed"),
            errors: num("errors"),
            write_errors: num("write_errors"),
            worker_panics: num("worker_panics"),
            cache_entries: num("cache_entries"),
            hit_rate: rate("hit_rate"),
            shed_rate: rate("shed_rate"),
            degrade,
            latency: doc
                .get("latency")
                .map(QuantileRow::parse)
                .unwrap_or_default(),
            stages: rows("stages", "stage"),
            levels: rows("levels", "level"),
        })
    }
}

/// What the drain observed, returned by [`ServerHandle::wait`].
#[derive(Debug, Clone)]
pub struct DrainSummary {
    /// Total request lines served.
    pub requests: u64,
    /// `check` requests.
    pub checks: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses (explorations led).
    pub misses: u64,
    /// Shed responses.
    pub shed: u64,
    /// Error responses.
    pub errors: u64,
    /// Responses lost to client disconnects.
    pub write_errors: u64,
    /// Contained exploration panics.
    pub worker_panics: u64,
    /// Admissions per degrade level.
    pub degrade: [u64; 4],
    /// Filled cache entries at shutdown.
    pub cache_entries: usize,
    /// `true` when every connection closed and every queued job
    /// drained within the drain timeout.
    pub clean: bool,
}

struct Shared {
    config: ServerConfig,
    ladder: AdmissionLadder,
    queue: Arc<JobQueue>,
    cache: Arc<ReportCache>,
    stats: Arc<ServeStats>,
    sink: Arc<dyn Sink>,
    chaos: Option<FaultPlan>,
    addr: SocketAddr,
    /// Request tracer; its epoch doubles as the server start time.
    tracer: Arc<Tracer>,
    /// `check` requests currently inside a handler.
    in_flight: AtomicU64,
    /// Request sequence numbers (trace `tid`s).
    req_seq: AtomicU64,
    /// Accept loop exit + new-check refusal flag.
    shutting_down: AtomicBool,
    /// Set once a shutdown was *requested* (op or handle), waking
    /// [`ServerHandle::wait`].
    shutdown_requested: Mutex<bool>,
    shutdown_cv: Condvar,
    /// Open connection count, for the drain barrier.
    conns: Mutex<usize>,
    conns_cv: Condvar,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").field("addr", &self.addr).finish()
    }
}

impl Shared {
    /// Assembles the `stats` reply from the live counters.
    fn stats_snapshot(&self) -> StatsSnapshot {
        let stats = &self.stats;
        let cache = &self.cache;
        let checks = stats.checks.get();
        let requests = stats.requests.get();
        let hits = cache.hits.get();
        let shed = stats.shed.get();
        StatsSnapshot {
            uptime_ms: self.tracer.epoch().elapsed().as_millis() as u64,
            in_flight: self.in_flight.load(Ordering::Relaxed),
            queue_depth: self.queue.len() as u64,
            queue_cap: self.queue.cap() as u64,
            conns: *self.conns.lock().unwrap() as u64,
            requests,
            checks,
            hits,
            misses: cache.misses.get(),
            coalesced: cache.coalesced.get(),
            shed,
            errors: stats.errors.get(),
            write_errors: stats.write_errors.get(),
            worker_panics: stats.worker_panics.get(),
            cache_entries: cache.len() as u64,
            hit_rate: if checks == 0 {
                0.0
            } else {
                hits as f64 / checks as f64
            },
            shed_rate: if requests == 0 {
                0.0
            } else {
                shed as f64 / requests as f64
            },
            degrade: stats.degrade_histogram(),
            latency: QuantileRow::of(&stats.latency_us.snapshot()),
            stages: STAGES
                .iter()
                .map(|stage| {
                    (
                        stage.name().to_owned(),
                        QuantileRow::of(&stats.stages[stage.index()].snapshot()),
                    )
                })
                .collect(),
            levels: LEVELS
                .iter()
                .enumerate()
                .map(|(i, level)| {
                    (
                        level.to_string(),
                        QuantileRow::of(&stats.latency_by_level[i].snapshot()),
                    )
                })
                .collect(),
        }
    }

    fn request_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        {
            let mut requested = self.shutdown_requested.lock().unwrap();
            *requested = true;
        }
        self.shutdown_cv.notify_all();
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
    }
}

/// The running server (see [`Server::start`]).
#[derive(Debug)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
}

/// Constructor namespace for the server.
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds, spawns the pool and the accept loop, returns immediately.
    pub fn start(config: ServerConfig, sink: Arc<dyn Sink>) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let queue = Arc::new(JobQueue::new(config.queue_cap));
        let cache = Arc::new(ReportCache::new());
        let stats = Arc::new(ServeStats::new());
        let chaos = config.chaos.map(FaultPlan::new);
        let ladder = AdmissionLadder::for_queue(config.queue_cap);
        let tracer = Arc::new(Tracer::new(
            config.trace,
            config.trace_slow_ms,
            Arc::clone(&sink),
        ));
        let pool = WorkerPool::start(
            config.workers,
            WorkerCtx {
                queue: Arc::clone(&queue),
                cache: Arc::clone(&cache),
                stats: Arc::clone(&stats),
                sink: Arc::clone(&sink),
                chaos,
                caps: config.caps,
                tracer: Arc::clone(&tracer),
            },
        );
        let shared = Arc::new(Shared {
            config,
            ladder,
            queue,
            cache,
            stats,
            sink,
            chaos,
            addr,
            tracer,
            in_flight: AtomicU64::new(0),
            req_seq: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            conns: Mutex::new(0),
            conns_cv: Condvar::new(),
        });
        if shared.sink.enabled() {
            shared.sink.emit(&Event {
                scope: "serve",
                name: "start",
                fields: &[
                    ("addr", Value::Str(&addr.to_string())),
                    ("workers", Value::U64(shared.config.workers as u64)),
                    ("queue_cap", Value::U64(shared.config.queue_cap as u64)),
                ],
            });
        }
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("lfm-serve-accept".to_owned())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawn accept thread");
        Ok(ServerHandle {
            shared,
            accept: Some(accept),
            pool: Some(pool),
        })
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Live counters.
    pub fn stats(&self) -> Arc<ServeStats> {
        Arc::clone(&self.shared.stats)
    }

    /// The report cache (for metrics and tests).
    pub fn cache(&self) -> Arc<ReportCache> {
        Arc::clone(&self.shared.cache)
    }

    /// The request tracer (for `--trace` dumps after the drain).
    pub fn tracer(&self) -> Arc<Tracer> {
        Arc::clone(&self.shared.tracer)
    }

    /// The stats reply a wire `stats` request would get right now.
    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.shared.stats_snapshot()
    }

    /// Renders the full metrics exposition for this server.
    pub fn metrics(&self) -> Registry {
        let mut registry = Registry::new();
        self.shared
            .stats
            .fill_registry(&mut registry, &self.shared.cache);
        registry
    }

    /// Triggers a graceful shutdown (the in-process SIGTERM
    /// equivalent; the wire equivalent is the `shutdown` op).
    pub fn request_shutdown(&self) {
        self.shared.request_shutdown();
    }

    /// Blocks until a shutdown is requested, then drains: joins the
    /// accept loop, waits for open connections, drains the job queue
    /// through the pool, joins the workers, flushes the sink.
    pub fn wait(mut self) -> DrainSummary {
        {
            let mut requested = self.shared.shutdown_requested.lock().unwrap();
            while !*requested {
                requested = self.shared.shutdown_cv.wait(requested).unwrap();
            }
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Open connections finish their in-flight request; the read
        // timeout bounds idle ones, the drain timeout bounds us.
        let mut clean = true;
        {
            let deadline = Instant::now() + DRAIN_TIMEOUT;
            let mut conns = self.shared.conns.lock().unwrap();
            while *conns > 0 {
                let now = Instant::now();
                if now >= deadline {
                    clean = false;
                    break;
                }
                let (guard, _) = self
                    .shared
                    .conns_cv
                    .wait_timeout(conns, deadline - now)
                    .unwrap();
                conns = guard;
            }
        }
        // Queued jobs still drain through the pool before the workers
        // see the close.
        self.shared.queue.close();
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
        let stats = &self.shared.stats;
        let summary = DrainSummary {
            requests: stats.requests.get(),
            checks: stats.checks.get(),
            hits: self.shared.cache.hits.get(),
            misses: self.shared.cache.misses.get(),
            shed: stats.shed.get(),
            errors: stats.errors.get(),
            write_errors: stats.write_errors.get(),
            worker_panics: stats.worker_panics.get(),
            degrade: stats.degrade_histogram(),
            cache_entries: self.shared.cache.len(),
            clean,
        };
        if self.shared.sink.enabled() {
            self.shared.sink.emit(&Event {
                scope: "serve",
                name: "drain",
                fields: &[
                    ("requests", Value::U64(summary.requests)),
                    ("hits", Value::U64(summary.hits)),
                    ("misses", Value::U64(summary.misses)),
                    ("shed", Value::U64(summary.shed)),
                    ("write_errors", Value::U64(summary.write_errors)),
                    ("clean", Value::Bool(summary.clean)),
                ],
            });
        }
        self.shared.sink.flush();
        summary
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failure (e.g. fd exhaustion): back
                // off instead of spinning.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            // The wake-up connection (or a late client); either way we
            // are done accepting.
            return;
        }
        let admit = {
            let mut conns = shared.conns.lock().unwrap();
            if *conns >= shared.config.max_conns {
                false
            } else {
                *conns += 1;
                true
            }
        };
        if !admit {
            shared.stats.conns_rejected.inc();
            shared.stats.shed.inc();
            let mut stream = stream;
            write_line(
                &mut stream,
                &render_shed("connections", crate::admission::RETRY_AFTER_MS, None),
                &shared.stats,
                &shared.sink,
            );
            continue;
        }
        shared.stats.conns_opened.inc();
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("lfm-serve-conn".to_owned())
            .spawn(move || {
                handle_conn(stream, &conn_shared);
                let mut conns = conn_shared.conns.lock().unwrap();
                *conns -= 1;
                conn_shared.conns_cv.notify_all();
            });
        if spawned.is_err() {
            // Thread exhaustion: undo the count and shed implicitly by
            // dropping the connection.
            let mut conns = shared.conns.lock().unwrap();
            *conns -= 1;
            shared.conns_cv.notify_all();
        }
    }
}

fn handle_conn(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let read_start = Instant::now();
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => return,  // EOF: client closed.
            Err(_) => return, // Read timeout or reset.
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // One request timeline: the handler's spans live on track 0,
        // worker spans arrive through the job reply.
        let tracer = &shared.tracer;
        let mut spans: Vec<SpanRec> = Vec::new();
        push_span(
            &shared.stats,
            tracer,
            &mut spans,
            Stage::Accept,
            0,
            read_start,
            Instant::now(),
        );
        let (response, close_after, trace) = respond(line, shared, &mut spans);
        let write_start = Instant::now();
        let wrote = write_line(&mut writer, &response, &shared.stats, &shared.sink);
        push_span(
            &shared.stats,
            tracer,
            &mut spans,
            Stage::ReplyWrite,
            0,
            write_start,
            Instant::now(),
        );
        // The capture decision sees the final end-to-end total, which
        // is what makes "slow requests are always captured" exact.
        if tracer.should_capture(read_start.elapsed()) {
            let seq = shared.req_seq.fetch_add(1, Ordering::Relaxed);
            tracer.record(trace, seq, &spans);
        }
        if !wrote || close_after {
            return;
        }
    }
}

/// Produces the response line for one request line, plus whether the
/// connection should close afterwards and the request's trace context
/// (already echoed into the response; returned for span capture).
fn respond(
    line: &str,
    shared: &Arc<Shared>,
    spans: &mut Vec<SpanRec>,
) -> (String, bool, Option<TraceContext>) {
    shared.stats.requests.inc();
    let parse_start = Instant::now();
    let parsed = parse_request(line);
    push_span(
        &shared.stats,
        &shared.tracer,
        spans,
        Stage::Parse,
        0,
        parse_start,
        Instant::now(),
    );
    match parsed {
        Err(reason) => {
            shared.stats.errors.inc();
            (render_error(&reason, None), false, None)
        }
        Ok(Request::Ping) => (render_pong(), false, None),
        Ok(Request::Stats) => (shared.stats_snapshot().render(), false, None),
        Ok(Request::Shutdown) => {
            shared.request_shutdown();
            (render_bye(), true, None)
        }
        Ok(Request::Check {
            kernel,
            variant,
            deadline_ms,
            trace,
        }) => (
            handle_check(&kernel, &variant, deadline_ms, trace, shared, spans),
            false,
            trace,
        ),
    }
}

/// The cache key: program fingerprint mixed with the chaos seed (the
/// same program under a different fault plan is a different result).
fn cache_key(fp: u64, chaos: Option<FaultPlan>) -> u64 {
    match chaos {
        None => fp,
        Some(plan) => splitmix64(fp ^ splitmix64(plan.seed ^ 0xC4A0_5EED)),
    }
}

/// Decrements the in-flight gauge on scope exit, early returns and
/// all — the gauge must never drift.
struct InFlightGuard<'a>(&'a AtomicU64);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

fn handle_check(
    kernel_id: &str,
    variant_slug: &str,
    deadline_ms: Option<u64>,
    trace: Option<TraceContext>,
    shared: &Arc<Shared>,
    spans: &mut Vec<SpanRec>,
) -> String {
    shared.stats.checks.inc();
    shared.in_flight.fetch_add(1, Ordering::Relaxed);
    let _in_flight = InFlightGuard(&shared.in_flight);
    let started = Instant::now();
    let Some(kernel) = lfm_kernels::registry::by_id(kernel_id) else {
        shared.stats.errors.inc();
        return render_error(&format!("unknown kernel {kernel_id:?}"), trace);
    };
    let Some(variant) = protocol::parse_variant(variant_slug) else {
        shared.stats.errors.inc();
        return render_error(&format!("unknown variant {variant_slug:?}"), trace);
    };
    let Some(program) = kernel.try_build(variant) else {
        shared.stats.errors.inc();
        return render_error(
            &format!("kernel {kernel_id:?} does not implement fix {variant_slug:?}"),
            trace,
        );
    };
    if shared.shutting_down.load(Ordering::SeqCst) {
        shared.stats.shed.inc();
        return render_shed("draining", crate::admission::RETRY_AFTER_MS, trace);
    }
    let fp = fingerprint(&program);
    let key = cache_key(fp, shared.chaos);
    let deadline = deadline_ms
        .map(Duration::from_millis)
        .or(shared.config.default_deadline);
    let wait = deadline.unwrap_or(COALESCE_WAIT);
    let probe_start = Instant::now();
    let (lookup, waited) = shared.cache.lookup_or_claim_observed(key, wait);
    push_span(
        &shared.stats,
        &shared.tracer,
        spans,
        // A probe that parked on another caller's in-flight fill is a
        // coalesce wait, not a lookup — the distinction is exactly
        // what the timeline exists to show.
        if waited {
            Stage::CoalesceWait
        } else {
            Stage::CacheLookup
        },
        0,
        probe_start,
        Instant::now(),
    );
    match lookup {
        Lookup::Hit(body) => {
            record_latency(shared, started);
            render_ok(true, trace, &body)
        }
        Lookup::Busy => {
            shared.stats.shed.inc();
            render_shed("busy", crate::admission::RETRY_AFTER_MS, trace)
        }
        Lookup::Claimed => {
            let admit_start = Instant::now();
            let verdict = shared.ladder.admit(shared.queue.len());
            push_span(
                &shared.stats,
                &shared.tracer,
                spans,
                Stage::Admission,
                0,
                admit_start,
                Instant::now(),
            );
            match verdict {
                Admission::Shed { retry_after_ms } => {
                    shared.cache.abandon(key);
                    shared.stats.shed.inc();
                    emit_shed(shared, kernel_id, "admission");
                    render_shed("admission", retry_after_ms, trace)
                }
                Admission::Accept(level) => {
                    shared.stats.degrade[level_index(level)].inc();
                    let (reply, result) = sync_channel(1);
                    let job = Job {
                        key,
                        kernel: kernel_id.to_owned(),
                        variant: variant_slug.to_owned(),
                        fingerprint: fp,
                        program,
                        level,
                        deadline,
                        accepted_at: Instant::now(),
                        reply,
                    };
                    if shared.queue.push(job).is_err() {
                        shared.cache.abandon(key);
                        shared.stats.shed.inc();
                        emit_shed(shared, kernel_id, "queue-full");
                        return render_shed("queue-full", crate::admission::RETRY_AFTER_MS, trace);
                    }
                    let grace = deadline.unwrap_or(Duration::ZERO) + REPLY_GRACE;
                    match result.recv_timeout(grace) {
                        Ok(job_reply) => {
                            spans.extend(job_reply.spans);
                            match job_reply.result {
                                Ok(body) => {
                                    let us = record_latency(shared, started);
                                    shared.stats.latency_by_level[level_index(level)].record(us);
                                    render_ok(false, trace, &body)
                                }
                                Err(reason) => {
                                    shared.stats.errors.inc();
                                    render_error(&reason, trace)
                                }
                            }
                        }
                        Err(_) => {
                            // The worker outlived even the grace
                            // period; release the claim so the key is
                            // not wedged (a late fill still wins).
                            shared.cache.abandon(key);
                            shared.stats.errors.inc();
                            render_error("exploration timed out past its grace period", trace)
                        }
                    }
                }
            }
        }
    }
}

fn record_latency(shared: &Arc<Shared>, started: Instant) -> u64 {
    let us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    shared.stats.latency_us.record(us);
    us
}

fn emit_shed(shared: &Arc<Shared>, kernel: &str, reason: &str) {
    if shared.sink.enabled() {
        shared.sink.emit(&Event {
            scope: "serve",
            name: "shed",
            fields: &[
                ("kernel", Value::Str(kernel)),
                ("reason", Value::Str(reason)),
            ],
        });
    }
}

/// Writes one response line. A failure (client disconnected
/// mid-response) is counted in `write_errors` and logged — never a
/// panic. Returns `false` when the connection is dead.
fn write_line(
    stream: &mut TcpStream,
    line: &str,
    stats: &ServeStats,
    sink: &Arc<dyn Sink>,
) -> bool {
    let outcome = stream
        .write_all(line.as_bytes())
        .and_then(|()| stream.write_all(b"\n"))
        .and_then(|()| stream.flush());
    match outcome {
        Ok(()) => true,
        Err(err) => {
            stats.write_errors.inc();
            if sink.enabled() {
                sink.emit(&Event {
                    scope: "serve",
                    name: "write_error",
                    fields: &[("reason", Value::Str(&err.to_string()))],
                });
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{Client, RetryPolicy};
    use crate::level::LevelCaps;

    fn test_config() -> ServerConfig {
        ServerConfig {
            workers: 2,
            caps: LevelCaps {
                max_steps: 2_000,
                max_schedules: 4_000,
                explore_jobs: 1,
                dpor: false,
            },
            ..ServerConfig::default()
        }
    }

    fn start() -> ServerHandle {
        Server::start(test_config(), Arc::new(lfm_obs::NoopSink)).expect("server starts")
    }

    #[test]
    fn check_miss_then_hit_are_byte_identical() {
        let handle = start();
        let client = Client::new(handle.addr());
        let first = client
            .check("toctou_flag", "buggy", None)
            .expect("first check");
        assert!(!first.cache_hit);
        let second = client
            .check("toctou_flag", "buggy", None)
            .expect("second check");
        assert!(second.cache_hit);
        assert_eq!(
            first.report, second.report,
            "hit must replay the fill bytes"
        );
        assert!(first.failures > 0, "buggy kernel manifests");
        handle.request_shutdown();
        let summary = handle.wait();
        assert!(summary.clean);
        assert_eq!(summary.misses, 1);
        assert_eq!(summary.hits, 1);
    }

    #[test]
    fn semantic_errors_are_not_retried() {
        let handle = start();
        let client = Client::new(handle.addr());
        let err = client.check("no_such_kernel", "buggy", None).unwrap_err();
        match err {
            crate::client::ClientError::Fatal(reason) => {
                assert!(reason.contains("unknown kernel"), "{reason}")
            }
            other => panic!("expected fatal, got {other:?}"),
        }
        let err = client.check("toctou_flag", "warp-drive", None).unwrap_err();
        assert!(matches!(err, crate::client::ClientError::Fatal(_)));
        handle.request_shutdown();
        assert!(handle.wait().clean);
    }

    #[test]
    fn ping_and_wire_shutdown_drain_cleanly() {
        let handle = start();
        let client = Client::new(handle.addr());
        assert!(client.ping());
        client.shutdown().expect("shutdown acked");
        let summary = handle.wait();
        assert!(summary.clean);
    }

    #[test]
    fn mid_response_disconnect_is_counted_never_fatal() {
        let handle = start();
        // A rude client: send a check, close without reading. The
        // server's response write fails; the error must be counted and
        // the server must keep serving.
        {
            let mut stream = TcpStream::connect(handle.addr()).unwrap();
            let line = protocol::render_request(&Request::Check {
                kernel: "toctou_flag".to_owned(),
                variant: "buggy".to_owned(),
                deadline_ms: None,
                trace: None,
            });
            stream.write_all(line.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
            drop(stream);
        }
        // The server is still healthy for well-behaved clients.
        let client = Client::new(handle.addr());
        let reply = client
            .check("toctou_flag", "buggy", None)
            .expect("still serving");
        assert!(reply.failures > 0);
        handle.request_shutdown();
        let summary = handle.wait();
        assert_eq!(summary.worker_panics, 0);
        // The rude client's write may have failed (counted) or raced
        // the close successfully; either way nothing panicked and the
        // drain is clean.
        assert!(summary.clean);
    }

    #[test]
    fn dead_connection_write_is_counted_not_fatal() {
        // Deterministic version of the disconnect story: a stream
        // whose write half is shut down fails the very first write,
        // and write_line must absorb it into `write_errors` — no
        // panic, no wedge, just accounting (the JsonlSink discipline).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        let (_peer, _) = listener.accept().unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let stats = ServeStats::new();
        let sink: Arc<dyn Sink> = Arc::new(lfm_obs::MemorySink::new());
        assert!(!write_line(&mut stream, "{\"x\":1}", &stats, &sink));
        assert_eq!(stats.write_errors.get(), 1);
    }

    #[test]
    fn draining_server_sheds_new_checks() {
        let handle = start();
        handle.request_shutdown();
        // The accept loop is closed now, but a connection opened
        // before the drain barrier may still sneak a request in; what
        // matters is that no *new* connection is served.
        let client = Client::new(handle.addr()).with_policy(RetryPolicy {
            attempts: 2,
            ..RetryPolicy::default()
        });
        let outcome = client.check("toctou_flag", "buggy", None);
        assert!(
            outcome.is_err(),
            "draining server must not serve: {outcome:?}"
        );
        assert!(handle.wait().clean);
    }

    #[test]
    fn metrics_exposition_is_valid_and_named() {
        let handle = start();
        let client = Client::new(handle.addr());
        client.check("toctou_flag", "buggy", None).expect("check");
        client.check("toctou_flag", "buggy", None).expect("hit");
        let text = handle.metrics().render();
        lfm_obs::check_exposition(&text).expect("valid exposition");
        assert!(text.contains("lfm_serve_requests_total"), "{text}");
        assert!(text.contains("lfm_serve_cache_hits_total"), "{text}");
        assert!(text.contains("lfm_serve_degrade_total"), "{text}");
        assert!(text.contains("lfm_serve_stage_us"), "{text}");
        assert!(text.contains("stage=\"queue_wait\""), "{text}");
        assert!(text.contains("lfm_serve_latency_by_level_us"), "{text}");
        handle.request_shutdown();
        assert!(handle.wait().clean);
    }

    #[test]
    fn histogram_families_exist_before_the_first_check() {
        // A scrape right after startup must already see every
        // histogram family, or dashboards start with holes.
        let handle = start();
        let text = handle.metrics().render();
        lfm_obs::check_exposition(&text).expect("valid exposition");
        assert!(text.contains("lfm_serve_latency_us"), "{text}");
        assert!(text.contains("lfm_serve_stage_us"), "{text}");
        assert!(text.contains("lfm_serve_latency_by_level_us"), "{text}");
        handle.request_shutdown();
        assert!(handle.wait().clean);
    }

    #[test]
    fn stats_snapshot_round_trips_and_counts_requests() {
        let handle = start();
        let client = Client::new(handle.addr());
        client.check("toctou_flag", "buggy", None).expect("miss");
        client.check("toctou_flag", "buggy", None).expect("hit");
        let snapshot = client.stats().expect("stats reply");
        assert_eq!(snapshot.checks, 2);
        assert_eq!(snapshot.hits, 1);
        assert_eq!(snapshot.misses, 1);
        assert!((snapshot.hit_rate - 0.5).abs() < 1e-9, "{snapshot:?}");
        assert_eq!(snapshot.queue_cap, ServerConfig::default().queue_cap as u64);
        assert_eq!(snapshot.stages.len(), STAGES.len());
        assert_eq!(snapshot.levels.len(), LEVELS.len());
        let explore = snapshot
            .stages
            .iter()
            .find(|(name, _)| name == "explore")
            .expect("explore stage row");
        assert!(explore.1.count >= 1, "{snapshot:?}");
        // The wire line round-trips exactly through render/parse.
        let line = snapshot.render();
        assert_eq!(StatsSnapshot::parse(&line).expect("parses"), snapshot);
        handle.request_shutdown();
        assert!(handle.wait().clean);
    }

    #[test]
    fn tracing_captures_timelines_and_slow_gate_filters() {
        let mut config = test_config();
        config.trace = true;
        let handle = Server::start(config, Arc::new(lfm_obs::NoopSink)).expect("server starts");
        let client = Client::new(handle.addr());
        client.check("toctou_flag", "buggy", None).expect("check");
        let tracer = handle.tracer();
        assert!(
            tracer.captured() >= STAGES.len() as u64 - 1,
            "a full miss covers most stages, got {}",
            tracer.captured()
        );
        // An absurd slow threshold with tracing off captures nothing.
        let mut config = test_config();
        config.trace_slow_ms = Some(3_600_000);
        let quiet = Server::start(config, Arc::new(lfm_obs::NoopSink)).expect("server starts");
        let client = Client::new(quiet.addr());
        client.check("toctou_flag", "buggy", None).expect("check");
        assert_eq!(quiet.tracer().captured(), 0, "fast requests not captured");
        handle.request_shutdown();
        assert!(handle.wait().clean);
        quiet.request_shutdown();
        assert!(quiet.wait().clean);
    }
}
