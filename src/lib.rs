//! # learning-from-mistakes
//!
//! Umbrella crate for a full reproduction of *"Learning from Mistakes: A
//! Comprehensive Study on Real World Concurrency Bug Characteristics"*
//! (Lu, Park, Seo, Zhou — ASPLOS 2008) as a Rust workspace.
//!
//! The workspace re-exports, through this crate, everything needed to:
//!
//! - query the 105-bug **corpus** ([`corpus`]),
//! - execute and model-check minimized **bug kernels** ([`kernels`])
//!   on the deterministic interleaving **simulator** ([`sim`]),
//! - run the dynamic **detectors** ([`detect`]),
//! - observe any of the above with metrics, spans and structured run
//!   logs ([`obs`]),
//! - reproduce the bug shapes on **real threads** ([`native`]),
//! - serve model-checking requests over the network with caching,
//!   admission control and chaos fault injection ([`serve`]),
//! - evaluate **transactional-memory** applicability ([`stm`]),
//! - and regenerate every table and figure of the paper ([`study`]).
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.
//!
//! # Quickstart
//!
//! ```rust
//! use learning_from_mistakes::corpus::Corpus;
//!
//! let corpus = Corpus::full();
//! assert_eq!(corpus.len(), 105);
//! ```

pub use lfm_corpus as corpus;
pub use lfm_detect as detect;
pub use lfm_kernels as kernels;
pub use lfm_native as native;
pub use lfm_obs as obs;
pub use lfm_serve as serve;
pub use lfm_sim as sim;
pub use lfm_stm as stm;
pub use lfm_study as study;
