//! Transactional-memory retrofit, both ways the crate offers:
//!
//! 1. the **evaluator**: every kernel is rebuilt with its critical region
//!    as a transaction and model-checked; verdicts reproduce the study's
//!    TM-applicability analysis, including the *measured* duplicated I/O
//!    that makes I/O-in-region the canonical obstacle;
//! 2. the **native TL2 STM**: the same multi-variable invariant that the
//!    `cache_pair_invariant` kernel breaks is run under real threads with
//!    `lfm_stm::TSpace`, and holds.
//!
//! ```text
//! cargo run --example tm_retrofit
//! ```

use std::sync::Arc;

use learning_from_mistakes::stm::{evaluate_all, TSpace};

fn main() {
    // 1. Executable TM verdicts for every kernel.
    println!("TM applicability verdicts (model-checked):\n");
    let verdicts = evaluate_all();
    for v in &verdicts {
        print!("  {v}");
        if v.io_duplicated() {
            print!(
                "   [measured: aborts re-ran I/O — {} effects vs {} intended]",
                v.max_io_observed, v.baseline_io
            );
        }
        println!();
    }
    let helped = verdicts.iter().filter(|v| v.helps).count();
    println!(
        "\nTM removes the bug outright in {helped}/{} kernels; the rest hit \
         the study's obstacles (I/O in region, ordering/locking intent).\n",
        verdicts.len()
    );

    // 2. The native TL2 STM under real threads: the pair invariant that
    //    the buggy kernel breaks cannot break transactionally.
    const WRITERS: usize = 4;
    const OPS: usize = 2_000;
    let space = Arc::new(TSpace::new(2)); // [count, entries]
    let mut handles = Vec::new();
    for _ in 0..WRITERS {
        let space = Arc::clone(&space);
        handles.push(std::thread::spawn(move || {
            for _ in 0..OPS {
                space.atomically(|tx| {
                    let count = tx.read(0)?;
                    let entries = tx.read(1)?;
                    tx.write(0, count + 1);
                    tx.write(1, entries + 1);
                    Ok(())
                });
            }
        }));
    }
    let checker = {
        let space = Arc::clone(&space);
        std::thread::spawn(move || {
            let mut checks = 0u64;
            while checks < 20_000 {
                let (count, entries) = space.atomically(|tx| Ok((tx.read(0)?, tx.read(1)?)));
                assert_eq!(count, entries, "pair invariant broke under TL2!");
                checks += 1;
            }
            checks
        })
    };
    for h in handles {
        h.join().expect("writer panicked");
    }
    let checks = checker.join().expect("checker panicked");
    println!(
        "native TL2 run: {WRITERS} writers x {OPS} transactional pair-updates, \
         {checks} concurrent invariant checks, zero violations"
    );
    println!(
        "final state: count = {}, entries = {}, commits = {}",
        space.read_now(0),
        space.read_now(1),
        space.commit_count()
    );
    assert_eq!(space.read_now(0), (WRITERS * OPS) as i64);
    assert_eq!(space.read_now(1), (WRITERS * OPS) as i64);
}
