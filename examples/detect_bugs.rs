//! Run every dynamic detector over every bug kernel and print the
//! coverage matrix — the executable form of the study's detection
//! implications (single-variable detectors miss multi-variable bugs,
//! race detectors miss atomic-access bugs, lock-order graphs only see
//! lock cycles).
//!
//! ```text
//! cargo run --example detect_bugs
//! ```

use learning_from_mistakes::detect::DetectorKind;
use learning_from_mistakes::kernels::Family;
use learning_from_mistakes::study::experiments::{coverage_table, detector_coverage};

fn main() {
    println!("Running 6 detectors against all 29 kernels (this explores");
    println!("each kernel to a failure witness first)...\n");

    println!("{}", coverage_table());

    // Highlight the blind spots the study predicts.
    let rows = detector_coverage();

    let hb_blind: Vec<_> = rows
        .iter()
        .filter(|r| r.family != Family::Deadlock && !r.flagged(DetectorKind::HappensBefore))
        .map(|r| r.kernel)
        .collect();
    println!("race-detector blind spots (no data race, bug anyway): {hb_blind:?}");

    let order_only: Vec<_> = rows
        .iter()
        .filter(|r| {
            r.flagged(DetectorKind::Order)
                && !r.flagged(DetectorKind::Atomicity)
                && r.family == Family::Order
        })
        .map(|r| r.kernel)
        .collect();
    println!("caught by the order detector but not AVIO:             {order_only:?}");

    let muvi_only: Vec<_> = rows
        .iter()
        .filter(|r| r.flagged(DetectorKind::Muvi) && r.flagged_by.len() == 1)
        .map(|r| r.kernel)
        .collect();
    println!("caught ONLY by the MUVI correlation detector:          {muvi_only:?}");

    let lockorder_hits: Vec<_> = rows
        .iter()
        .filter(|r| r.flagged(DetectorKind::LockOrder))
        .map(|r| r.kernel)
        .collect();
    println!("deadlock cycles predicted from passing runs:           {lockorder_hits:?}");

    let uncaught: Vec<_> = rows
        .iter()
        .filter(|r| r.flagged_by.is_empty())
        .map(|r| r.kernel)
        .collect();
    println!("caught by no detector at all:                          {uncaught:?}");
    println!(
        "\nThe takeaway mirrors the paper: no single detector family covers \
         the real-world bug spectrum."
    );
}
