//! Model-check a bug kernel: enumerate every interleaving of the buggy
//! variant, print the witness schedule for the manifestation, replay it,
//! and prove each fixed variant correct.
//!
//! ```text
//! cargo run --example explore_interleavings [kernel-id]
//! ```

use learning_from_mistakes::kernels::{registry, Variant};
use learning_from_mistakes::sim::{Executor, Explorer};

fn main() {
    let kernel_id = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "bank_withdraw".to_string());
    let kernel = registry::by_id(&kernel_id).unwrap_or_else(|| {
        eprintln!("unknown kernel `{kernel_id}`; available kernels:");
        for k in registry::all() {
            eprintln!("  {k}");
        }
        std::process::exit(2);
    });

    println!("{kernel}");
    println!("  {}\n", kernel.description);

    // Exhaustively explore the buggy variant.
    let buggy = kernel.buggy();
    let report = Explorer::new(&buggy).run();
    println!(
        "buggy variant: {} interleavings explored, {} manifest the bug ({})",
        report.schedules_run,
        report.counts.failures(),
        report.counts,
    );
    println!(
        "  stats: {} branch points, {} snapshots, depth {}, {:.0} schedules/sec, {:?} wall",
        report.stats.branch_points,
        report.stats.snapshots,
        report.stats.max_depth,
        report.schedules_per_sec(),
        report.stats.wall,
    );
    if let Some(reason) = report.truncation {
        println!("  truncated by: {reason}");
    }

    // Replay the witness step by step.
    let (schedule, outcome) = report
        .first_failure
        .expect("kernel contract: the bug manifests");
    println!("\nwitness interleaving: [{schedule}]");
    let mut exec = Executor::new(&buggy);
    for (i, choice) in schedule.iter().enumerate() {
        if !exec.is_enabled(choice) {
            break;
        }
        exec.step(choice).expect("witness choices are enabled");
        println!(
            "  step {:2}: ran {} of {:9} -> vars = {:?}",
            i + 1,
            choice,
            buggy.threads()[choice.index()].name(),
            exec.vars()
        );
        if exec.is_done() {
            break;
        }
    }
    let replayed = exec
        .outcome()
        .cloned()
        .unwrap_or_else(|| exec.replay(&Default::default(), 1000));
    println!("replayed outcome: {replayed}");
    assert_eq!(replayed, outcome, "witness must replay deterministically");

    // Prove every implemented fix.
    println!("\nfix variants (exhaustive proof):");
    for &fix in kernel.fixes {
        let fixed = kernel.build(Variant::Fixed(fix));
        let fixed_report = Explorer::new(&fixed).dedup_states().run();
        println!(
            "  {fix:20} -> {} interleavings, {} failures, {} dedup hits in {:?}{}",
            fixed_report.schedules_run,
            fixed_report.counts.failures(),
            fixed_report.states_deduped,
            fixed_report.stats.wall,
            if fixed_report.counts.failures() == 0 {
                "  (proved correct)"
            } else {
                "  (STILL BUGGY!)"
            }
        );
    }
}
