//! The scheduling laboratory: one kernel, every exploration strategy.
//!
//! Compares full DFS, CHESS-style preemption bounding, state
//! deduplication and the sleep-set partial-order reduction on the same
//! bug; prints the witness as a paper-style interleaving timeline; and
//! measures access-pair coverage growth under random testing.
//!
//! ```text
//! cargo run --example schedule_lab [kernel-id]
//! ```

use learning_from_mistakes::kernels::registry;
use learning_from_mistakes::sim::{
    explore::trace_of, render_timeline, Explorer, PairCoverage, RandomWalker,
};

fn main() {
    let kernel_id = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "cache_pair_invariant".to_string());
    let kernel = registry::by_id(&kernel_id).unwrap_or_else(|| {
        eprintln!("unknown kernel `{kernel_id}`");
        std::process::exit(2);
    });
    let program = kernel.buggy();
    println!("{kernel}\n");

    // --- exploration strategies -------------------------------------
    println!("exploration strategies:");
    let full = Explorer::new(&program).run();
    println!(
        "  full DFS           : {:6} schedules, {:5} failing",
        full.schedules_run,
        full.counts.failures()
    );
    for bound in [0u32, 1, 2] {
        let b = Explorer::new(&program).preemption_bound(bound).run();
        println!(
            "  preemption bound {bound} : {:6} schedules, {:5} failing",
            b.schedules_run,
            b.counts.failures()
        );
    }
    let dedup = Explorer::new(&program).dedup_states().run();
    println!(
        "  state dedup        : {:6} schedules, {:5} failing ({} states deduped)",
        dedup.schedules_run,
        dedup.counts.failures(),
        dedup.states_deduped
    );
    let sleep = Explorer::new(&program).sleep_sets().run();
    println!(
        "  sleep sets         : {:6} schedules, {:5} failing ({} branches pruned)",
        sleep.schedules_run,
        sleep.counts.failures(),
        sleep.sleep_pruned
    );
    assert_eq!(
        full.counts.failures() > 0,
        sleep.counts.failures() > 0,
        "the reduction must preserve the bug"
    );

    // --- the witness as a paper-style timeline -----------------------
    let (schedule, outcome) = full.first_failure.expect("kernel manifests");
    println!("\nwitness interleaving ({outcome}):\n");
    let (witness_trace, _) = trace_of(&program, &schedule, 5_000);
    print!("{}", render_timeline(&witness_trace, Some(&program)));

    // --- access-pair coverage growth ---------------------------------
    println!("\naccess-pair coverage under random testing:");
    let mut universe = PairCoverage::new();
    Explorer::new(&program)
        .record_events()
        .run_with_callback(|exec, _| universe.observe_events(&exec.events()));
    let traces = RandomWalker::new(&program, 0xBEEF).collect_traces(25);
    let mut cov = PairCoverage::new();
    for (i, (trace, _)) in traces.iter().enumerate() {
        cov.observe_events(&trace.events);
        if [0, 4, 9, 24].contains(&i) {
            println!(
                "  after {:2} random trials: {:2}/{} pairs covered",
                i + 1,
                cov.len(),
                universe.len()
            );
        }
    }
    println!(
        "\nPair coverage saturates quickly, yet E-test shows small random \
         budgets still miss bugs: coverage does not force the buggy \
         conjunction — the study's argument for systematic interleaving \
         testing."
    );
}
