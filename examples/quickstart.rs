//! Quickstart: load the 105-bug corpus, check every headline finding,
//! and print the study's core tables.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use learning_from_mistakes::corpus::{App, BugClass, Corpus, Pattern};
use learning_from_mistakes::study::{check_all, tables};

fn main() {
    let corpus = Corpus::full();
    println!("Loaded the study corpus: {} bugs", corpus.len());
    println!(
        "  non-deadlock: {}   deadlock: {}\n",
        corpus.non_deadlock().len(),
        corpus.deadlock().len()
    );

    // Every published finding, recomputed from the dataset.
    println!("Findings (paper vs measured):");
    for finding in check_all(&corpus) {
        println!("  {finding}");
        assert!(finding.holds(), "a finding failed to reproduce!");
    }

    // The tables are generated from the corpus, never hard-coded.
    println!();
    println!("{}", tables::table2(&corpus));
    println!("{}", tables::table3(&corpus));
    println!("{}", tables::table7(&corpus));

    // The query API composes filters.
    let mozilla_atomicity = corpus
        .query()
        .app(App::Mozilla)
        .class(BugClass::NonDeadlock)
        .pattern(Pattern::Atomicity)
        .count();
    println!("Mozilla non-deadlock bugs with an atomicity component: {mozilla_atomicity}");

    // Individual records carry bug-tracker-style context.
    let bug = corpus.get_str("mozilla-61369").expect("known record");
    println!("\nExample record:\n  {bug}");
    println!(
        "  threads: {}, fix: {}, TM: {}",
        bug.threads,
        bug.fix(),
        bug.tm
    );
    if let Some(kernel) = &bug.kernel {
        println!("  executable kernel: {kernel} (see the explore_interleavings example)");
    }
}
