//! Deadlock hunting, three ways:
//!
//! 1. exhaustive exploration manifests each deadlock kernel and reports
//!    the blocked cycle;
//! 2. the lock-order-graph detector *predicts* the lock deadlocks from
//!    passing runs only;
//! 3. each studied fix strategy (acquire-in-order, give-up-resource,
//!    split-resource, transaction) is proved to eliminate the deadlock.
//!
//! ```text
//! cargo run --example deadlock_hunt
//! ```

use learning_from_mistakes::detect::LockOrderDetector;
use learning_from_mistakes::kernels::{registry, Family, Variant};
use learning_from_mistakes::sim::{explore::trace_of, Explorer, Outcome};

fn main() {
    for kernel in registry::by_family(Family::Deadlock) {
        println!("== {kernel}");
        let buggy = kernel.buggy();

        // 1. Manifest by exploration.
        let report = Explorer::new(&buggy).run();
        let (schedule, outcome) = report.first_failure.expect("deadlock manifests");
        if let Outcome::Deadlock { blocked } = &outcome {
            println!(
                "   manifests in {}/{} interleavings; witness [{schedule}]:",
                report.counts.deadlock, report.schedules_run
            );
            for (thread, on) in blocked {
                println!(
                    "     {} ({}) blocked on {on}",
                    thread,
                    buggy.threads()[thread.index()].name()
                );
            }
        }

        // 2. Predict from a PASSING run via the lock-order graph.
        if let Some(ok_schedule) = report.first_ok {
            let (trace, ok_outcome) = trace_of(&buggy, &ok_schedule, 5_000);
            assert!(ok_outcome.is_ok());
            let cycles = LockOrderDetector::analyze([&trace]);
            if cycles.is_empty() {
                println!("   lock-order graph: no mutex cycle (non-lock resources involved)");
            } else {
                for c in cycles {
                    println!(
                        "   lock-order graph PREDICTED the deadlock from a passing run: \
                         cycle over {:?}",
                        c.cycle
                    );
                }
            }
        } else {
            println!("   (no passing interleaving: deterministic self-deadlock)");
        }

        // Exploration cost of the hunt on this kernel.
        println!(
            "   stats: {} | {} branch points, {} snapshots, {:?} wall",
            report.counts, report.stats.branch_points, report.stats.snapshots, report.stats.wall
        );

        // 3. Prove the fixes.
        for &fix in kernel.fixes {
            let fixed = kernel.build(Variant::Fixed(fix));
            let fixed_report = Explorer::new(&fixed).dedup_states().run();
            assert_eq!(
                fixed_report.counts.deadlock, 0,
                "{} fix {fix} must remove the deadlock",
                kernel.id
            );
            println!("   fix `{fix}` proved deadlock-free");
        }
        println!();
    }
    println!(
        "Shapes covered: self-deadlock (1 resource), ABBA (2 resources), a \
         3-lock cycle, wait-holding-lock, rwlock upgrade, join-under-lock, \
         and a semaphore cycle — matching the study's deadlock scope table."
    );
}
