//! The bug kernels on real threads: manifestation rates under the OS
//! scheduler, next to the simulator's exhaustive ground truth.
//!
//! The study's testing implication in numbers: stress testing observes a
//! *rate*; systematic exploration proves *possibility* (and its absence
//! after a fix). Both views of the same bugs, side by side.
//!
//! ```text
//! cargo run --release --example native_stress
//! ```

use learning_from_mistakes::kernels::registry;
use learning_from_mistakes::native::kernels as native;
use learning_from_mistakes::native::stress;
use learning_from_mistakes::sim::Explorer;

fn sim_ground_truth(kernel_id: &str) -> (u64, u64) {
    let kernel = registry::by_id(kernel_id).expect("kernel exists");
    let report = Explorer::new(&kernel.buggy()).run();
    (report.counts.failures(), report.schedules_run)
}

fn main() {
    println!("native stress vs. simulator ground truth\n");

    let trials = 60;

    let (fail, total) = sim_ground_truth("counter_rmw");
    let buggy = stress(trials, || native::racy_counter(4, 5_000, false));
    let fixed = stress(trials, || native::racy_counter(4, 5_000, true));
    println!("racy counter (lost update)");
    println!("  simulator: {fail}/{total} interleavings manifest");
    println!("  native buggy: {buggy}");
    println!("  native fixed: {fixed}");
    assert_eq!(fixed.manifested, 0);

    let (fail, total) = sim_ground_truth("bank_withdraw");
    let buggy = stress(trials, || native::bank_withdraw(4, 50, false));
    let fixed = stress(trials, || native::bank_withdraw(4, 50, true));
    println!("\ncheck-then-act withdrawal (overdraft)");
    println!("  simulator: {fail}/{total} interleavings manifest");
    println!("  native buggy: {buggy}");
    println!("  native fixed: {fixed}");
    assert_eq!(fixed.manifested, 0);

    let (fail, total) = sim_ground_truth("publish_before_init");
    let buggy = stress(trials, || native::publish_before_init(200, false));
    let fixed = stress(trials, || native::publish_before_init(200, true));
    println!("\npublish-before-init (order violation)");
    println!("  simulator: {fail}/{total} interleavings manifest");
    println!("  native buggy: {buggy}");
    println!("  native fixed: {fixed}");
    assert_eq!(fixed.manifested, 0);

    let (fail, total) = sim_ground_truth("missed_signal");
    let buggy = stress(3, || native::missed_signal(false, true));
    let fixed = stress(3, || native::missed_signal(true, true));
    println!("\nmissed signal (lost wakeup; 300 ms watchdog per trial)");
    println!("  simulator: {fail}/{total} interleavings manifest");
    println!("  native buggy (signal first): {buggy}");
    println!("  native fixed (predicate):    {fixed}");
    assert_eq!(fixed.manifested, 0);

    let (fail, total) = sim_ground_truth("abba");
    println!("\nABBA deadlock (1 aligned native trial; deadlocked threads leak)");
    println!("  simulator: {fail}/{total} interleavings manifest");
    let buggy = native::abba_deadlock(false);
    println!(
        "  native buggy: {}",
        if buggy.manifested {
            "deadlocked (watchdog fired)"
        } else {
            "completed (window missed this run)"
        }
    );
    let fixed = native::abba_deadlock(true);
    println!(
        "  native fixed: completed = {}",
        fixed.observed == 2 && !fixed.manifested
    );
    assert!(!fixed.manifested);

    println!(
        "\nTakeaway: every fixed variant is silent natively AND proved by the \
         model checker; the buggy rates vary with hardware and scheduler — \
         which is precisely why the study argues for systematic interleaving \
         coverage over stress testing."
    );
}
