//! Model-based property tests for the TL2 STM: sequences of committed
//! transactions must behave exactly like the same operations applied to
//! a plain `Vec<i64>` model, and concurrent histories must be
//! serializable (equal to *some* sequential order — checked for
//! commutative workloads by final-state equality).

use learning_from_mistakes::stm::TSpace;
use proptest::prelude::*;

/// One transactional operation in a generated script.
#[derive(Debug, Clone)]
enum Op {
    Read(usize),
    Write(usize, i64),
    Add(usize, i64),
}

fn op_strategy(words: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..words).prop_map(Op::Read),
        (0..words, -100i64..100).prop_map(|(i, v)| Op::Write(i, v)),
        (0..words, -10i64..10).prop_map(|(i, v)| Op::Add(i, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-threaded transactions are exactly the sequential model.
    #[test]
    fn sequential_transactions_match_the_model(
        txs in proptest::collection::vec(
            proptest::collection::vec(op_strategy(4), 1..6),
            1..8,
        )
    ) {
        let space = TSpace::new(4);
        let mut model = vec![0i64; 4];
        for tx_ops in &txs {
            let ops = tx_ops.clone();
            // Model application.
            let mut model_next = model.clone();
            let mut model_reads = Vec::new();
            for op in &ops {
                match op {
                    Op::Read(i) => model_reads.push(model_next[*i]),
                    Op::Write(i, v) => model_next[*i] = *v,
                    Op::Add(i, v) => model_next[*i] += *v,
                }
            }
            // STM application.
            let stm_reads = space.atomically(|tx| {
                let mut reads = Vec::new();
                for op in &ops {
                    match op {
                        Op::Read(i) => reads.push(tx.read(*i)?),
                        Op::Write(i, v) => tx.write(*i, *v),
                        Op::Add(i, v) => {
                            let cur = tx.read(*i)?;
                            tx.write(*i, cur + v);
                        }
                    }
                }
                Ok(reads)
            });
            prop_assert_eq!(&stm_reads, &model_reads);
            model = model_next;
            for (i, expected) in model.iter().enumerate() {
                prop_assert_eq!(space.read_now(i), *expected);
            }
        }
    }

    /// Concurrent commutative workloads (per-thread adds) serialize to
    /// the arithmetic sum regardless of scheduling.
    #[test]
    fn concurrent_adds_serialize(
        per_thread in proptest::collection::vec(
            proptest::collection::vec((0usize..3, 1i64..5), 1..20),
            2..4,
        )
    ) {
        let space = std::sync::Arc::new(TSpace::new(3));
        let mut expected = [0i64; 3];
        for ops in &per_thread {
            for (i, v) in ops {
                expected[*i] += v;
            }
        }
        let handles: Vec<_> = per_thread
            .into_iter()
            .map(|ops| {
                let space = std::sync::Arc::clone(&space);
                std::thread::spawn(move || {
                    for (i, v) in ops {
                        space.atomically(|tx| {
                            let cur = tx.read(i)?;
                            tx.write(i, cur + v);
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker ok");
        }
        for (i, e) in expected.iter().enumerate() {
            prop_assert_eq!(space.read_now(i), *e);
        }
    }
}
