//! Fuzz-style invariants over randomly generated programs: the whole
//! stack (executor, explorer, schedulers, trace recording, detectors)
//! must be robust and internally consistent on arbitrary valid inputs,
//! not just the hand-written kernels.

use learning_from_mistakes::detect::{
    AtomicityDetector, HappensBeforeDetector, LockOrderDetector, LocksetDetector, OrderDetector,
};
use learning_from_mistakes::sim::{
    generate, Executor, ExploreLimits, Explorer, GenConfig, Outcome, RandomWalker, RecordMode,
};
use proptest::prelude::*;

fn small_config() -> GenConfig {
    GenConfig {
        threads: 2,
        vars: 3,
        mutexes: 2,
        ops_per_thread: 4,
        locked_pct: 30,
        tx_pct: 15,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any schedule of a generated program replays to identical outcome,
    /// state, and step count.
    #[test]
    fn generated_replay_determinism(seed in 0u64..10_000, walk_seed in 0u64..1_000) {
        let program = generate(&small_config(), seed);
        let mut rng_state = walk_seed;
        let mut first = Executor::new(&program);
        first.run_with(10_000, |enabled| {
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            enabled[(rng_state >> 33) as usize % enabled.len()]
        });
        let schedule = first.schedule_taken().clone();
        let outcome = first.outcome().cloned().expect("finished");

        let mut second = Executor::new(&program);
        prop_assert_eq!(second.replay(&schedule, 10_000), outcome);
        prop_assert_eq!(first.vars(), second.vars());
    }

    /// Exploration classifies every run and never reports misuse or
    /// deadlock on generated (balanced, single-lock-region) programs.
    #[test]
    fn generated_explore_classification(seed in 0u64..2_000) {
        let program = generate(&small_config(), seed);
        let report = Explorer::new(&program)
            .limits(ExploreLimits {
                max_schedules: 3_000,
                dedup_states: true,
                ..Default::default()
            })
            .run();
        prop_assert_eq!(report.counts.total(), report.schedules_run);
        prop_assert_eq!(report.counts.misuse, 0);
        prop_assert_eq!(report.counts.deadlock, 0);
        prop_assert_eq!(report.counts.assert_failed, 0, "no asserts generated");
    }

    /// Every detector consumes arbitrary generated traces without
    /// panicking, and the happens-before detector never reports a race
    /// between two events of the same thread.
    #[test]
    fn detectors_are_robust_on_generated_traces(seed in 0u64..5_000) {
        let program = generate(&small_config(), seed);
        let traces = RandomWalker::new(&program, seed ^ 0xabcdef)
            .collect_traces(3);
        let trace_refs: Vec<_> = traces.iter().map(|(t, _)| t).collect();

        for (trace, _) in &traces {
            for race in HappensBeforeDetector::new().analyze(trace) {
                prop_assert_ne!(race.first_thread, race.second_thread);
                prop_assert!(race.first_seq < race.second_seq);
            }
            LocksetDetector::new().analyze(trace);
            AtomicityDetector::new().analyze(trace);
        }
        let trained = AtomicityDetector::train(trace_refs.iter().copied());
        let order = OrderDetector::train(trace_refs.iter().copied());
        for (trace, _) in &traces {
            trained.analyze(trace);
            order.analyze(trace);
        }
        let mut lockorder = LockOrderDetector::new();
        for t in &trace_refs {
            lockorder.observe(t);
        }
        // Generated programs hold one lock at a time: no held→acquired
        // edges, hence no cycles.
        prop_assert_eq!(lockorder.edge_count(), 0);
        prop_assert!(lockorder.cycles().is_empty());
    }

    /// Recorded traces are well-formed: sequence numbers dense from 0,
    /// per-thread clocks strictly increase on the thread's own component.
    #[test]
    fn generated_traces_are_well_formed(seed in 0u64..5_000) {
        let program = generate(&small_config(), seed);
        let mut exec = Executor::with_record(&program, RecordMode::Full);
        let outcome = exec.run_sequential(10_000);
        prop_assert!(matches!(outcome, Outcome::Ok));
        let trace = exec.into_trace();
        for (i, event) in trace.events.iter().enumerate() {
            prop_assert_eq!(event.seq, i);
        }
        for tid in 0..trace.n_threads {
            let thread = learning_from_mistakes::sim::ThreadId::from_index(tid);
            let mut last = 0u32;
            for event in trace.thread_events(thread) {
                let own = event.clock.get(thread);
                prop_assert!(own >= last, "own component never decreases");
                last = own;
            }
        }
    }

    /// State keys are stable under clone and differ across genuinely
    /// different states.
    #[test]
    fn state_keys_are_consistent(seed in 0u64..5_000) {
        let program = generate(&small_config(), seed);
        let exec = Executor::new(&program);
        let clone = exec.clone();
        prop_assert_eq!(exec.state_key(), clone.state_key());

        let mut stepped = exec.clone();
        let enabled = stepped.enabled();
        if !enabled.is_empty() {
            stepped.step(enabled[0]).expect("enabled");
            // Taking a visible memory/sync step virtually always changes
            // the state (pc moved); equal keys would be a hash collision,
            // astronomically unlikely across the proptest corpus.
            prop_assert_ne!(exec.state_key(), stepped.state_key());
        }
    }
}

#[test]
fn exploration_agrees_with_random_sampling_on_reachability() {
    // Any final variable state seen by random walking must also be seen
    // by exhaustive exploration (the converse need not hold for a
    // sampler).
    let config = small_config();
    for seed in [3u64, 7, 11] {
        let program = generate(&config, seed);
        let mut explored: std::collections::HashSet<Vec<i64>> = std::collections::HashSet::new();
        Explorer::new(&program)
            .limits(ExploreLimits {
                max_schedules: 20_000,
                ..Default::default()
            })
            .run_with_callback(|exec, _| {
                explored.insert(exec.vars().to_vec());
            });
        let walker = RandomWalker::new(&program, 99);
        for (trace, outcome) in walker.collect_traces(20) {
            assert!(outcome.is_ok(), "generated programs cannot fail");
            let _ = trace;
        }
        // Re-run the walker collecting final states via executor replays.
        for trial in 0..20u64 {
            let mut exec = Executor::new(&program);
            let mut state = seed ^ trial.wrapping_mul(0x9e3779b97f4a7c15);
            exec.run_with(10_000, |enabled| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                enabled[(state >> 33) as usize % enabled.len()]
            });
            assert!(
                explored.contains(exec.vars()),
                "random walk reached a state exploration missed: {:?}",
                exec.vars()
            );
        }
    }
}
