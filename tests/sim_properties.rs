//! Property-based tests (proptest) on the simulator's core invariants:
//! deterministic replay, vector-clock consistency, exploration
//! combinatorics, and transactional serializability.

use learning_from_mistakes::sim::{
    generate, Executor, ExploreLimits, Explorer, Expr, GenConfig, Outcome, ParExplorer,
    ProgramBuilder, RandomWalker, RecordMode, Schedule, Stmt,
};
use proptest::prelude::*;

/// n threads × k read-increment-write rounds on one counter.
fn racy_counter(n_threads: usize, rounds: usize) -> learning_from_mistakes::sim::Program {
    static NAMES: [&str; 4] = ["w0", "w1", "w2", "w3"];
    let mut b = ProgramBuilder::new("racy");
    let v = b.var("counter", 0);
    for name in NAMES.iter().take(n_threads) {
        let mut body = Vec::new();
        for _ in 0..rounds {
            body.push(Stmt::read(v, "tmp"));
            body.push(Stmt::write(v, Expr::local("tmp") + Expr::lit(1)));
        }
        b.thread(name, body);
    }
    b.build().expect("builds")
}

fn multinomial(counts: &[usize]) -> u64 {
    // (Σ counts)! / Π counts!  computed incrementally to stay in u64.
    let mut result = 1u64;
    let mut placed = 0usize;
    for &c in counts {
        for i in 1..=c {
            placed += 1;
            result = result * placed as u64 / i as u64;
        }
    }
    result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replaying a recorded schedule reproduces outcome and final state.
    #[test]
    fn replay_is_deterministic(seed in 0u64..1_000, threads in 2usize..=3, rounds in 1usize..=2) {
        let program = racy_counter(threads, rounds);
        let mut first = Executor::new(&program);
        // Drive with a seeded random picker.
        let mut state = seed;
        first.run_with(10_000, |enabled| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            enabled[(state >> 33) as usize % enabled.len()]
        });
        let schedule = first.schedule_taken().clone();
        let outcome = first.outcome().cloned().expect("finished");

        let mut second = Executor::new(&program);
        let replayed = second.replay(&schedule, 10_000);
        prop_assert_eq!(&replayed, &outcome);
        prop_assert_eq!(first.vars(), second.vars());
        prop_assert_eq!(first.steps(), second.steps());
    }

    /// The exhaustive explorer enumerates exactly the multinomial number
    /// of interleavings for straight-line threads.
    #[test]
    fn explorer_counts_are_multinomial(threads in 2usize..=3, rounds in 1usize..=2) {
        let program = racy_counter(threads, rounds);
        let report = Explorer::new(&program).run();
        let ops_per_thread = 2 * rounds;
        let expected = multinomial(&vec![ops_per_thread; threads]);
        prop_assert_eq!(report.schedules_run, expected);
        prop_assert!(!report.truncated);
    }

    /// Vector clocks respect program order: within one thread, event
    /// clocks are monotonically increasing.
    #[test]
    fn clocks_respect_program_order(seed in 0u64..500) {
        let program = racy_counter(3, 2);
        let traces = RandomWalker::new(&program, seed).collect_traces(1);
        let (trace, _) = &traces[0];
        for tid in 0..trace.n_threads {
            let thread = learning_from_mistakes::sim::ThreadId::from_index(tid);
            let events: Vec<_> = trace.thread_events(thread).collect();
            for pair in events.windows(2) {
                prop_assert!(
                    pair[0].clock.le(&pair[1].clock),
                    "program order violated in thread {tid}"
                );
            }
        }
    }

    /// Happens-before is consistent with the execution's total order:
    /// if a HB b then a appears before b in the trace.
    #[test]
    fn happens_before_embeds_in_total_order(seed in 0u64..500) {
        let mut b = ProgramBuilder::new("locked");
        let v = b.var("x", 0);
        let m = b.mutex();
        for name in ["a", "b", "c"] {
            b.thread(name, vec![
                Stmt::lock(m),
                Stmt::read(v, "t"),
                Stmt::write(v, Expr::local("t") + Expr::lit(1)),
                Stmt::unlock(m),
            ]);
        }
        let program = b.build().unwrap();
        let traces = RandomWalker::new(&program, seed).collect_traces(1);
        let (trace, outcome) = &traces[0];
        prop_assert!(outcome.is_ok());
        for (i, e1) in trace.events.iter().enumerate() {
            for e2 in &trace.events[i + 1..] {
                // e1 precedes e2 in the total order, so e2 must not
                // *strictly* happen-before e1. (The initial ThreadStart
                // events all carry the zero clock, which is `le` both
                // ways without expressing an ordering — hence strict.)
                let strictly_before = e2.clock.le(&e1.clock) && e2.clock != e1.clock;
                prop_assert!(
                    !(strictly_before && e1.thread != e2.thread),
                    "total order contradiction at {} vs {}", e1.seq, e2.seq
                );
            }
        }
    }

    /// Counter increments under the in-sim transactions serialize for
    /// every schedule the random walker produces.
    #[test]
    fn transactions_serialize_under_random_schedules(seed in 0u64..300) {
        let mut b = ProgramBuilder::new("tx");
        let v = b.var("x", 0);
        for name in ["a", "b", "c"] {
            b.thread(name, vec![
                Stmt::TxBegin,
                Stmt::read(v, "t"),
                Stmt::write(v, Expr::local("t") + Expr::lit(1)),
                Stmt::TxCommit,
            ]);
        }
        b.final_assert(Expr::shared(v).eq(Expr::lit(3)), "tx increments serialize");
        let program = b.build().unwrap();
        let report = RandomWalker::new(&program, seed).run_trials(20);
        prop_assert_eq!(report.counts.assert_failed, 0);
        prop_assert_eq!(report.counts.deadlock, 0);
    }

    /// A schedule's context switches are bounded by its length.
    #[test]
    fn context_switch_bound(choices in proptest::collection::vec(0usize..3, 0..40)) {
        let schedule: Schedule = choices
            .iter()
            .map(|&i| learning_from_mistakes::sim::ThreadId::from_index(i))
            .collect();
        prop_assert!(schedule.context_switches() <= schedule.len().saturating_sub(1));
    }

    /// Splitting the frontier across workers covers exactly the serial
    /// subtree: with dedup off, the parallel explorer runs the same
    /// number of schedules (nothing explored twice, nothing dropped)
    /// with identical outcome counts and step totals, whatever the
    /// generated program or worker count.
    #[test]
    fn frontier_split_covers_exactly_the_serial_subtree(
        seed in 0u64..2_000,
        threads in 2usize..=3,
        ops in 2usize..=4,
        jobs in 1usize..=4,
    ) {
        let config = GenConfig {
            threads,
            vars: 2,
            mutexes: 1,
            ops_per_thread: ops,
            locked_pct: 40,
            tx_pct: 0,
        };
        let program = generate(&config, seed);
        let limits = ExploreLimits {
            max_schedules: 50_000,
            ..ExploreLimits::default()
        };
        let serial = Explorer::new(&program).limits(limits.clone()).run();
        let par = ParExplorer::new(&program).limits(limits).jobs(jobs).run();
        prop_assert_eq!(par.schedules_run, serial.schedules_run);
        prop_assert_eq!(par.steps_total, serial.steps_total);
        prop_assert_eq!(&par.counts, &serial.counts);
        prop_assert_eq!(par.truncated, serial.truncated);
        prop_assert_eq!(&par.first_failure, &serial.first_failure);
        prop_assert_eq!(par.stats.branch_points, serial.stats.branch_points);
        prop_assert_eq!(par.stats.max_depth, serial.stats.max_depth);
    }

    /// The incrementally maintained state fingerprint equals a
    /// from-scratch recomputation after every step of any generated
    /// program, including across a copy-on-write branch point where
    /// parent and child diverge from shared history.
    #[test]
    fn incremental_state_key_matches_recomputation(
        seed in 0u64..2_000,
        threads in 2usize..=3,
        ops in 2usize..=5,
        locked_pct in 0u8..=100,
        tx_pct in 0u8..=40,
        fork_at in 1usize..=6,
    ) {
        let config = GenConfig {
            threads,
            vars: 2,
            mutexes: 1,
            ops_per_thread: ops,
            locked_pct,
            tx_pct,
        };
        let program = generate(&config, seed);
        let mut exec = Executor::new(&program);
        let mut forked: Option<Executor> = None;
        let mut state = seed;
        let mut next = |len: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize % len
        };
        for step in 0..10_000 {
            prop_assert_eq!(
                exec.state_key(),
                exec.state_key_recomputed(),
                "key drifted at step {}",
                step
            );
            let enabled = exec.enabled();
            if enabled.is_empty() {
                break;
            }
            if step == fork_at {
                // Branch point: the cheap clone shares history with the
                // parent; both must keep exact fingerprints afterwards.
                forked = Some(exec.clone());
            }
            let pick = enabled[next(enabled.len())];
            exec.step(pick).expect("enabled thread steps");
        }
        if let Some(mut child) = forked {
            for step in 0..10_000 {
                prop_assert_eq!(
                    child.state_key(),
                    child.state_key_recomputed(),
                    "forked key drifted at step {}",
                    step
                );
                let enabled = child.enabled();
                if enabled.is_empty() {
                    break;
                }
                // Diverge from the parent's choices: pick the last
                // enabled thread instead of a seeded one.
                let pick = *enabled.last().unwrap();
                child.step(pick).expect("enabled thread steps");
            }
        }
    }

    /// The legacy (pre-COW) snapshot/hash mode must be observationally
    /// identical to the optimized explorer: it exists purely as the
    /// E-perf baseline, so every report field except wall time matches.
    #[test]
    fn legacy_snapshot_mode_is_observationally_identical(
        seed in 0u64..1_000,
        locked_pct in 0u8..=100,
    ) {
        let config = GenConfig {
            threads: 3,
            vars: 2,
            mutexes: 1,
            ops_per_thread: 3,
            locked_pct,
            tx_pct: 20,
        };
        let program = generate(&config, seed);
        let limits = ExploreLimits {
            max_schedules: 50_000,
            dedup_states: true,
            sleep_sets: true,
            ..ExploreLimits::default()
        };
        let cow = Explorer::new(&program).limits(limits.clone()).run();
        let legacy = Explorer::new(&program)
            .limits(limits)
            .legacy_snapshots()
            .run();
        prop_assert_eq!(legacy.schedules_run, cow.schedules_run);
        prop_assert_eq!(legacy.steps_total, cow.steps_total);
        prop_assert_eq!(&legacy.counts, &cow.counts);
        prop_assert_eq!(legacy.states_deduped, cow.states_deduped);
        prop_assert_eq!(legacy.sleep_pruned, cow.sleep_pruned);
        prop_assert_eq!(&legacy.first_failure, &cow.first_failure);
        prop_assert_eq!(&legacy.first_ok, &cow.first_ok);
        prop_assert_eq!(legacy.stats.snapshots, cow.stats.snapshots);
        prop_assert_eq!(
            legacy.stats.snapshot_bytes_saved,
            cow.stats.snapshot_bytes_saved
        );
        prop_assert_eq!(legacy.stats.max_depth, cow.stats.max_depth);
    }

    /// With dedup on, the striped seen-state set must make exactly the
    /// serial dedup decisions: same schedules, same dedup hits, same
    /// first witnesses — at any worker count, locked or transactional.
    #[test]
    fn striped_dedup_matches_serial_decisions(
        seed in 0u64..2_000,
        locked_pct in 0u8..=100,
        jobs in 1usize..=4,
    ) {
        let config = GenConfig {
            threads: 3,
            vars: 2,
            mutexes: 1,
            ops_per_thread: 3,
            locked_pct,
            tx_pct: 20,
        };
        let program = generate(&config, seed);
        let limits = ExploreLimits {
            max_schedules: 50_000,
            dedup_states: true,
            sleep_sets: true,
            ..ExploreLimits::default()
        };
        let serial = Explorer::new(&program).limits(limits.clone()).run();
        let par = ParExplorer::new(&program).limits(limits).jobs(jobs).run();
        prop_assert_eq!(par.schedules_run, serial.schedules_run);
        prop_assert_eq!(par.steps_total, serial.steps_total);
        prop_assert_eq!(&par.counts, &serial.counts);
        prop_assert_eq!(par.states_deduped, serial.states_deduped);
        prop_assert_eq!(par.sleep_pruned, serial.sleep_pruned);
        prop_assert_eq!(&par.first_failure, &serial.first_failure);
        prop_assert_eq!(&par.first_ok, &serial.first_ok);
        prop_assert_eq!(par.stats.snapshots, serial.stats.snapshots);
    }

    /// Source-set DPOR visits at least one representative of every
    /// Mazurkiewicz trace class: on any generated program the outcome
    /// kinds — and, for executions that run to their natural end, the
    /// final states — match full enumeration exactly, while never
    /// running *more* schedules. Aborting outcomes (assert failures)
    /// cut executions mid-class, so only their display form is owed,
    /// not the machine state at the cut.
    #[test]
    fn dpor_outcome_set_equals_full_enumeration(
        seed in 0u64..2_000,
        threads in 2usize..=3,
        ops in 2usize..=4,
        locked_pct in 0u8..=100,
        sleep in any::<bool>(),
    ) {
        let config = GenConfig {
            threads,
            vars: 2,
            mutexes: 1,
            ops_per_thread: ops,
            locked_pct,
            tx_pct: 0,
        };
        let program = generate(&config, seed);
        let limits = |dpor: bool| ExploreLimits {
            max_schedules: 100_000,
            dedup_states: false,
            sleep_sets: dpor && sleep,
            dpor,
            ..ExploreLimits::default()
        };
        let terminals = |limits: ExploreLimits| {
            let mut set = std::collections::BTreeSet::new();
            let report = Explorer::new(&program)
                .limits(limits)
                .run_with_callback(|exec, outcome| {
                    let keyed = matches!(outcome, Outcome::Ok | Outcome::Deadlock { .. });
                    set.insert((outcome.to_string(), if keyed { exec.state_key() } else { 0 }));
                });
            (report, set)
        };
        let (full, full_set) = terminals(limits(false));
        let (reduced, dpor_set) = terminals(limits(true));
        prop_assert!(!full.truncated && full.counts.step_limit == 0,
            "generated straight-line programs explore exhaustively");
        prop_assert!(!reduced.truncated);
        prop_assert_eq!(&dpor_set, &full_set);
        prop_assert!(reduced.schedules_run <= full.schedules_run,
            "DPOR ran {} schedules, full enumeration {}",
            reduced.schedules_run, full.schedules_run);
    }

    /// The parallel DPOR walk commits in serial preorder: whatever the
    /// generated program, worker count, or sleep-set composition, its
    /// merged report equals the serial DPOR explorer's field for field.
    #[test]
    fn parallel_dpor_is_bit_identical_to_serial(
        seed in 0u64..2_000,
        locked_pct in 0u8..=100,
        jobs in 1usize..=4,
        sleep in any::<bool>(),
    ) {
        let config = GenConfig {
            threads: 3,
            vars: 2,
            mutexes: 1,
            ops_per_thread: 3,
            locked_pct,
            tx_pct: 0,
        };
        let program = generate(&config, seed);
        let limits = ExploreLimits {
            max_schedules: 100_000,
            dedup_states: false,
            sleep_sets: sleep,
            dpor: true,
            ..ExploreLimits::default()
        };
        let serial = Explorer::new(&program).limits(limits.clone()).run();
        let par = ParExplorer::new(&program).limits(limits).jobs(jobs).run();
        prop_assert_eq!(par.schedules_run, serial.schedules_run);
        prop_assert_eq!(par.steps_total, serial.steps_total);
        prop_assert_eq!(&par.counts, &serial.counts);
        prop_assert_eq!(par.sleep_pruned, serial.sleep_pruned);
        prop_assert_eq!(par.dpor_pruned, serial.dpor_pruned);
        prop_assert_eq!(&par.first_failure, &serial.first_failure);
        prop_assert_eq!(&par.first_ok, &serial.first_ok);
        prop_assert_eq!(par.truncated, serial.truncated);
        prop_assert_eq!(par.stats.branch_points, serial.stats.branch_points);
        prop_assert_eq!(par.stats.max_depth, serial.stats.max_depth);
    }

    /// Invisible-step fusion never changes what is reachable: on racy
    /// counters interleaved with yields (the invisible op), the fused
    /// search reaches exactly the unfused outcome set — same outcome
    /// kinds, same final states — while running no more (and, with
    /// yields present, strictly fewer) schedules. Holds with and
    /// without DPOR underneath, and the yields guarantee fusion
    /// actually fired, so the property cannot pass vacuously.
    #[test]
    fn fused_outcome_set_equals_unfused(
        threads in 2usize..=3,
        yields in 1usize..=2,
        dpor in any::<bool>(),
    ) {
        static NAMES: [&str; 3] = ["w0", "w1", "w2"];
        let mut b = ProgramBuilder::new("yielding");
        let v = b.var("counter", 0);
        for name in NAMES.iter().take(threads) {
            let mut body = vec![Stmt::read(v, "tmp")];
            for _ in 0..yields {
                body.push(Stmt::Yield);
            }
            body.push(Stmt::write(v, Expr::local("tmp") + Expr::lit(1)));
            b.thread(name, body);
        }
        b.final_assert(
            Expr::shared(v).eq(Expr::lit(threads as i64)),
            "all increments kept",
        );
        let program = b.build().expect("builds");
        let limits = |fuse: bool| ExploreLimits {
            dpor,
            fuse,
            ..ExploreLimits::default()
        };
        let terminals = |limits: ExploreLimits| {
            let mut set = std::collections::BTreeSet::new();
            let report = Explorer::new(&program)
                .limits(limits)
                .run_with_callback(|exec, outcome| {
                    let keyed = matches!(outcome, Outcome::Ok | Outcome::Deadlock { .. });
                    set.insert((outcome.to_string(), if keyed { exec.state_key() } else { 0 }));
                });
            (report, set)
        };
        let (base, base_set) = terminals(limits(false));
        let (fused, fused_set) = terminals(limits(true));
        prop_assert!(!base.truncated && base.counts.step_limit == 0);
        prop_assert!(!fused.truncated && fused.counts.step_limit == 0);
        prop_assert_eq!(&fused_set, &base_set);
        prop_assert!(fused.schedules_run < base.schedules_run,
            "fusion left the schedule count at {} despite {} yields per thread",
            fused.schedules_run, yields);
        prop_assert!(fused.stats.fused_steps > 0, "no steps fused: vacuous run");
    }
}

#[test]
fn parallel_explorer_counts_are_multinomial_too() {
    // The straight-line combinatorics of `explorer_counts_are_multinomial`
    // survive frontier sharding: with dedup off every interleaving is
    // enumerated exactly once, so the closed-form count must match at
    // every worker count.
    for threads in 2..=3usize {
        let program = racy_counter(threads, 1);
        let expected = multinomial(&vec![2; threads]);
        for jobs in [1, 2, 4] {
            let report = ParExplorer::new(&program).jobs(jobs).run();
            assert_eq!(report.schedules_run, expected, "jobs={jobs}");
            assert!(!report.truncated);
        }
    }
}

#[test]
fn lost_update_bound_matches_thread_count() {
    // With n racing single-increment threads, the final counter is
    // between 1 and n across all interleavings — and both bounds are
    // attained.
    for n in 2..=3 {
        let program = racy_counter(n, 1);
        let mut min = i64::MAX;
        let mut max = i64::MIN;
        Explorer::new(&program).run_with_callback(|exec, outcome| {
            assert!(matches!(outcome, Outcome::Ok), "no asserts in this program");
            min = min.min(exec.vars()[0]);
            max = max.max(exec.vars()[0]);
        });
        assert_eq!(min, 1, "maximal loss: everyone reads 0");
        assert_eq!(max, n as i64, "serial execution keeps all increments");
    }
}

#[test]
fn recording_does_not_change_outcomes() {
    let program = racy_counter(2, 2);
    let schedule: Schedule = {
        let mut e = Executor::new(&program);
        e.run_with(1000, |enabled| *enabled.last().unwrap());
        e.schedule_taken().clone()
    };
    let mut plain = Executor::new(&program);
    let out_plain = plain.replay(&schedule, 1000);
    let mut recorded = Executor::with_record(&program, RecordMode::Full);
    let out_recorded = recorded.replay(&schedule, 1000);
    assert_eq!(out_plain, out_recorded);
    assert_eq!(plain.vars(), recorded.vars());
}
