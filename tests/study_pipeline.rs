//! End-to-end pipeline tests spanning all crates: corpus ↔ kernels link
//! integrity, tables ↔ findings consistency, figures, and the full
//! report.

use learning_from_mistakes::corpus::{BugClass, Corpus};
use learning_from_mistakes::kernels::registry;
use learning_from_mistakes::study::{check_all, figures, render_full_report, tables};

#[test]
fn every_corpus_kernel_link_resolves() {
    let corpus = Corpus::full();
    for bug in corpus.iter() {
        if let Some(kernel_id) = &bug.kernel {
            assert!(
                registry::by_id(kernel_id).is_some(),
                "bug {} links to unknown kernel `{kernel_id}`",
                bug.id
            );
        }
    }
}

#[test]
fn every_kernel_source_bug_resolves() {
    let corpus = Corpus::full();
    for kernel in registry::all() {
        if let Some(source) = kernel.source_bug {
            assert!(
                corpus.get_str(source).is_some(),
                "kernel {} names unknown source bug `{source}`",
                kernel.id
            );
        }
    }
}

#[test]
fn kernel_class_matches_linked_bug_class() {
    // A deadlock kernel's source bug must be a deadlock bug, and vice
    // versa — the linkage is semantic, not decorative.
    let corpus = Corpus::full();
    for kernel in registry::all() {
        let Some(source) = kernel.source_bug else {
            continue;
        };
        let bug = corpus.get_str(source).expect("resolves");
        assert_eq!(
            kernel.is_deadlock(),
            bug.class() == BugClass::Deadlock,
            "kernel {} / bug {} class mismatch",
            kernel.id,
            bug.id
        );
    }
}

#[test]
fn a_good_share_of_bugs_have_executable_kernels() {
    let corpus = Corpus::full();
    let with_kernel = corpus.query().with_kernel(true).count();
    assert!(
        with_kernel >= 40,
        "only {with_kernel} bugs link to kernels; the corpus should be \
         substantially executable"
    );
}

#[test]
fn table_totals_agree_with_findings() {
    let corpus = Corpus::full();
    let findings = check_all(&corpus);
    assert!(findings.iter().all(|f| f.holds()));

    // T2's total row and the corpus size must agree.
    let t2 = tables::table2(&corpus);
    let last = t2.rows.last().expect("total row");
    assert_eq!(last[3], corpus.len().to_string());

    // T5's one-variable count is exactly finding F3's numerator.
    let f3 = findings.iter().find(|f| f.id == "F3-variables").unwrap();
    let t5 = tables::table5(&corpus);
    let total = t5.rows.last().unwrap();
    assert_eq!(total[1], f3.measured.0.to_string());
}

#[test]
fn all_nine_tables_are_non_empty_and_render() {
    let corpus = Corpus::full();
    for table in tables::all_tables(&corpus) {
        assert!(!table.is_empty(), "{} has no rows", table.id);
        let text = table.to_string();
        assert!(text.contains(&table.id));
        let md = table.to_markdown();
        assert!(md.starts_with("### "));
    }
}

#[test]
fn figures_match_their_kernels_expected_failure() {
    use learning_from_mistakes::kernels::ExpectedFailure;
    for figure in figures::all_figures() {
        let kernel = registry::by_id(figure.kernel_id).expect("kernel exists");
        let (_, outcome) = figure.witness.as_ref().expect("witness exists");
        match kernel.expected {
            ExpectedFailure::Deadlock => assert!(outcome.is_deadlock(), "{}", figure.id),
            ExpectedFailure::Assert => assert!(!outcome.is_deadlock(), "{}", figure.id),
        }
    }
}

#[test]
fn full_report_is_complete_and_clean() {
    let corpus = Corpus::full();
    let report = render_full_report(&corpus);
    // All nine tables...
    for n in 1..=9 {
        assert!(report.contains(&format!("T{n}:")), "missing table T{n}");
    }
    // ...all five figures...
    for n in 1..=5 {
        assert!(report.contains(&format!("F{n}:")), "missing figure F{n}");
    }
    // ...all three experiments, and no reproduction mismatch.
    for e in ["E-scope", "E-detect", "E-tm"] {
        assert!(report.contains(e), "missing {e}");
    }
    assert!(!report.contains("MISMATCH"));
}
