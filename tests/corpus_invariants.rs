//! Structural invariants of the corpus dataset — every record, every
//! axis. These lock the synthesized dataset to the study's shape so that
//! future edits cannot silently drift the statistics.

use learning_from_mistakes::corpus::{
    App, BugClass, BugDetail, Corpus, ResourceCount, ThreadCount, TmApplicability,
};

fn corpus() -> Corpus {
    Corpus::full()
}

#[test]
fn ids_follow_the_app_prefix_convention() {
    for bug in corpus().iter() {
        let prefix = match bug.app {
            App::MySql => "mysql-",
            App::Apache => "apache-",
            App::Mozilla => "mozilla-",
            App::OpenOffice => "openoffice-",
        };
        assert!(
            bug.id.as_str().starts_with(prefix),
            "{} has wrong prefix for {}",
            bug.id,
            bug.app
        );
    }
}

#[test]
fn deadlock_ids_carry_the_dl_marker() {
    for bug in corpus().iter() {
        let has_marker = bug.id.as_str().contains("-dl-");
        assert_eq!(
            has_marker,
            bug.is_deadlock(),
            "{}: the -dl- id marker must match the class",
            bug.id
        );
    }
}

#[test]
fn every_record_has_title_and_description() {
    for bug in corpus().iter() {
        assert!(!bug.title.is_empty(), "{} missing title", bug.id);
        assert!(
            bug.description.len() >= 80,
            "{} description too thin ({} chars)",
            bug.id,
            bug.description.len()
        );
    }
}

#[test]
fn detail_axes_are_class_consistent() {
    for bug in corpus().iter() {
        match (&bug.detail, bug.class()) {
            (BugDetail::NonDeadlock { .. }, BugClass::NonDeadlock) => {
                assert!(bug.patterns().is_some());
                assert!(bug.variables().is_some());
                assert!(bug.accesses().is_some());
                assert!(bug.resources().is_none());
            }
            (BugDetail::Deadlock { .. }, BugClass::Deadlock) => {
                assert!(bug.patterns().is_none());
                assert!(bug.resources().is_some());
            }
            _ => panic!("{}: detail/class mismatch", bug.id),
        }
    }
}

#[test]
fn non_deadlock_pattern_sets_are_non_empty() {
    for bug in corpus().iter().filter(|b| b.is_non_deadlock()) {
        let p = bug.patterns().unwrap();
        assert!(
            p.atomicity || p.order || p.other,
            "{} has an empty pattern set",
            bug.id
        );
        // `other` is exclusive with atomicity/order in this study.
        if p.other {
            assert!(
                !p.atomicity && !p.order,
                "{}: 'other' must be exclusive",
                bug.id
            );
        }
    }
}

#[test]
fn non_deadlock_bugs_never_involve_one_thread() {
    // A non-deadlock concurrency bug needs at least two threads to
    // interleave; one-thread entries exist only among self-deadlocks.
    for bug in corpus().iter().filter(|b| b.is_non_deadlock()) {
        assert_ne!(bug.threads, ThreadCount::One, "{}", bug.id);
    }
}

#[test]
fn single_resource_deadlocks_are_single_threaded() {
    for bug in corpus().iter().filter(|b| b.is_deadlock()) {
        if bug.resources() == Some(ResourceCount::One) {
            assert_eq!(
                bug.threads,
                ThreadCount::One,
                "{}: a one-resource deadlock is a self-deadlock",
                bug.id
            );
        }
    }
}

#[test]
fn tm_obstacles_only_on_cannot_help() {
    // Corollary of the type structure; assert the distribution is sane.
    let c = corpus();
    let cannot: Vec<_> = c
        .iter()
        .filter(|b| matches!(b.tm, TmApplicability::CannotHelp(_)))
        .collect();
    assert_eq!(cannot.len(), 26);
    use learning_from_mistakes::corpus::TmObstacle;
    let io = cannot
        .iter()
        .filter(|b| b.tm == TmApplicability::CannotHelp(TmObstacle::IoInRegion))
        .count();
    let long = cannot
        .iter()
        .filter(|b| b.tm == TmApplicability::CannotHelp(TmObstacle::LongRegion))
        .count();
    let intent = cannot
        .iter()
        .filter(|b| b.tm == TmApplicability::CannotHelp(TmObstacle::NotAtomicityIntent))
        .count();
    assert_eq!(io + long + intent, 26);
    assert!(io >= 6, "I/O should be the leading obstacle, got {io}");
}

#[test]
fn per_app_totals_match_table_one_metadata() {
    let c = corpus();
    for info in learning_from_mistakes::corpus::all_apps() {
        let nd = c.query().app(info.app).class(BugClass::NonDeadlock).count();
        let d = c.query().app(info.app).class(BugClass::Deadlock).count();
        assert_eq!(nd, info.sampled_non_deadlock, "{}", info.app);
        assert_eq!(d, info.sampled_deadlock, "{}", info.app);
    }
}

#[test]
fn serde_round_trips_the_whole_corpus() {
    // serde_json is not a workspace dependency; round-trip through the
    // derived Serialize/Deserialize impls using a hand-rolled shim is
    // overkill — instead assert the corpus equals a clone pushed through
    // FromIterator, and that Serialize is object-safe enough to call.
    let c = corpus();
    let copied: Corpus = c.iter().cloned().collect();
    assert_eq!(c, copied);
}

mod corpus_props {
    use learning_from_mistakes::corpus::{App, BugClass, Corpus, Pattern};
    use proptest::prelude::*;

    fn app_strategy() -> impl Strategy<Value = Option<App>> {
        prop_oneof![
            Just(None),
            Just(Some(App::MySql)),
            Just(Some(App::Apache)),
            Just(Some(App::Mozilla)),
            Just(Some(App::OpenOffice)),
        ]
    }

    fn class_strategy() -> impl Strategy<Value = Option<BugClass>> {
        prop_oneof![
            Just(None),
            Just(Some(BugClass::NonDeadlock)),
            Just(Some(BugClass::Deadlock)),
        ]
    }

    fn pattern_strategy() -> impl Strategy<Value = Option<Pattern>> {
        prop_oneof![
            Just(None),
            Just(Some(Pattern::Atomicity)),
            Just(Some(Pattern::Order)),
            Just(Some(Pattern::Other)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Every composed query equals the equivalent manual filter, and
        /// count() equals collect().len().
        #[test]
        fn query_matches_manual_filter(
            app in app_strategy(),
            class in class_strategy(),
            pattern in pattern_strategy(),
        ) {
            let corpus = Corpus::full();
            let mut query = corpus.query();
            if let Some(a) = app { query = query.app(a); }
            if let Some(c) = class { query = query.class(c); }
            if let Some(p) = pattern { query = query.pattern(p); }
            let collected = query.clone().collect();
            prop_assert_eq!(query.count(), collected.len());

            let manual = corpus
                .iter()
                .filter(|b| app.is_none_or(|a| b.app == a))
                .filter(|b| class.is_none_or(|c| b.class() == c))
                .filter(|b| {
                    pattern.is_none_or(|p| match b.patterns() {
                        None => false,
                        Some(ps) => match p {
                            Pattern::Atomicity => ps.atomicity,
                            Pattern::Order => ps.order,
                            Pattern::Other => ps.other,
                        },
                    })
                })
                .count();
            prop_assert_eq!(collected.len(), manual);
        }

        /// JSON export stays structurally balanced on arbitrary subsets.
        #[test]
        fn json_export_of_subsets_is_balanced(mask in proptest::collection::vec(any::<bool>(), 105)) {
            let full = Corpus::full();
            let subset: Corpus = full
                .iter()
                .zip(&mask)
                .filter(|(_, keep)| **keep)
                .map(|(b, _)| b.clone())
                .collect();
            let json = learning_from_mistakes::corpus::to_json(&subset);
            let expected = mask.iter().filter(|k| **k).count();
            prop_assert_eq!(json.matches("\"id\":").count(), expected);
            // Balanced braces outside strings.
            let mut depth = 0i64;
            let mut in_string = false;
            let mut escaped = false;
            for c in json.chars() {
                if in_string {
                    if escaped { escaped = false; }
                    else if c == '\\' { escaped = true; }
                    else if c == '"' { in_string = false; }
                    continue;
                }
                match c {
                    '"' => in_string = true,
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
                prop_assert!(depth >= 0);
            }
            prop_assert_eq!(depth, 0);
        }
    }
}
